//! Repo-local task runner (`cargo run -p xtask -- lint`).
//!
//! `lint` enforces two offline rules CI gates on, beyond what clippy
//! covers:
//!
//! 1. **No `.unwrap()` / `.expect(` in the hot dispatch loops** — the
//!    tree interpreter's `exec_body`, and `run_loop` in the flat and
//!    register engines. A panic there is a guest-reachable crash of the
//!    whole runtime, so every use must be individually justified in the
//!    allowlist (`xtask/lint-allow.txt`).
//! 2. **No narrowing `as` casts in the wire-format parsers** — the
//!    attestation protocol codec (`watz-attestation/src/wire.rs`) and
//!    the LEB128 decoder (`watz-wasm/src/leb128.rs`). A silent
//!    truncation of an attacker-controlled length or index is exactly
//!    how wire parsers go wrong; conversions must be `try_from` or
//!    explicitly allowlisted (e.g. masking the low byte).
//!
//! Both scans work on comment- and string-stripped source so matches in
//! docs or literals don't count, and `#[cfg(test)]` modules are out of
//! scope. Findings are compared against `xtask/lint-allow.txt`: lines of
//! `file-suffix|needle`, where a finding is allowed when its file path
//! ends with `file-suffix` and the offending line contains `needle`.
//! Unused allowlist entries are reported as failures too, so the list
//! can only shrink.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// The dispatch-loop scan targets: `(file, function name)`.
const DISPATCH_LOOPS: [(&str, &str); 3] = [
    ("crates/watz-wasm/src/exec.rs", "fn exec_body"),
    ("crates/watz-wasm/src/flat.rs", "fn run_loop"),
    ("crates/watz-wasm/src/reg.rs", "fn run_loop"),
];

/// The wire-parser cast-scan targets.
const WIRE_PARSERS: [&str; 2] = [
    "crates/watz-attestation/src/wire.rs",
    "crates/watz-wasm/src/leb128.rs",
];

/// Narrowing integer casts a wire parser must not perform silently.
const NARROWING: [&str; 6] = ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

struct Finding {
    file: PathBuf,
    line_no: usize,
    line: String,
    what: String,
}

fn lint() -> ExitCode {
    let root = repo_root();
    let allow_path = root.join("xtask/lint-allow.txt");
    let allow = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allowlist: Vec<(String, String)> = allow
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (file, needle) = l.split_once('|')?;
            Some((file.trim().to_string(), needle.trim().to_string()))
        })
        .collect();

    let mut findings = Vec::new();
    for (file, func) in DISPATCH_LOOPS {
        let path = root.join(file);
        let src = read(&path);
        let stripped = strip_comments_and_strings(&src);
        let Some((start, end)) = fn_body_span(&stripped, func) else {
            findings.push(Finding {
                file: path.clone(),
                line_no: 0,
                line: String::new(),
                what: format!("lint target `{func}` not found (did the loop move?)"),
            });
            continue;
        };
        scan_lines(&src, &stripped, start, end, &path, &mut findings, |s| {
            [".unwrap()", ".expect("]
                .iter()
                .find(|n| s.contains(**n))
                .map(|n| format!("`{n}` in a dispatch loop"))
        });
    }
    for file in WIRE_PARSERS {
        let path = root.join(file);
        let src = read(&path);
        let stripped = strip_comments_and_strings(&src);
        // Unit tests at the file tail are out of scope.
        let end = stripped.find("#[cfg(test)]").unwrap_or(stripped.len());
        scan_lines(&src, &stripped, 0, end, &path, &mut findings, |s| {
            NARROWING
                .iter()
                .find(|n| s.contains(**n))
                .map(|n| format!("narrowing `{n}` cast in a wire parser"))
        });
    }

    let mut used = vec![false; allowlist.len()];
    let mut fatal = 0usize;
    for f in &findings {
        let fp = f.file.to_string_lossy();
        let allowed = allowlist.iter().enumerate().any(|(i, (file, needle))| {
            let hit = fp.ends_with(file.as_str()) && f.line.contains(needle.as_str());
            if hit {
                used[i] = true;
            }
            hit
        });
        if !allowed {
            fatal += 1;
            eprintln!(
                "lint: {}:{}: {}\n    {}",
                fp,
                f.line_no,
                f.what,
                f.line.trim()
            );
        }
    }
    for (i, (file, needle)) in allowlist.iter().enumerate() {
        if !used[i] {
            fatal += 1;
            eprintln!("lint: stale allowlist entry `{file}|{needle}` matches nothing — remove it");
        }
    }
    if fatal == 0 {
        println!(
            "lint: ok ({} allowlisted use(s) across {} dispatch loop(s) and {} wire parser(s))",
            findings.len(),
            DISPATCH_LOOPS.len(),
            WIRE_PARSERS.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {fatal} finding(s); justify in xtask/lint-allow.txt or fix");
        ExitCode::FAILURE
    }
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the repo root")
        .to_path_buf()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("lint target {} unreadable: {e}", path.display()))
}

/// Runs `check` over every line intersecting `start..end` of the
/// stripped text, reporting the corresponding raw-source line.
fn scan_lines(
    src: &str,
    stripped: &str,
    start: usize,
    end: usize,
    path: &Path,
    findings: &mut Vec<Finding>,
    check: impl Fn(&str) -> Option<String>,
) {
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut offset = 0usize;
    for (i, line) in stripped.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1;
        if line_start + line.len() < start || line_start >= end {
            continue;
        }
        if let Some(what) = check(line) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line_no: i + 1,
                line: raw_lines.get(i).copied().unwrap_or("").to_string(),
                what,
            });
        }
    }
}

/// Byte span of the brace-matched body of the first `needle` match in
/// comment/string-stripped source.
fn fn_body_span(stripped: &str, needle: &str) -> Option<(usize, usize)> {
    let at = stripped.find(needle)?;
    let open = at + stripped[at..].find('{')?;
    let bytes = stripped.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((at, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Replaces the contents of comments, string literals, and char
/// literals with spaces, preserving byte offsets and line structure so
/// scans can't match inside docs or literals. Handles `//`, nested
/// `/* */`, `"…"` with escapes, raw strings `r"…"`/`r#"…"#`, and char
/// literals (while leaving lifetimes like `'a` alone).
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"…", r#"…"#, r##"…"##, …
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    let close: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let body_start = j + 1;
                    let rel = src.as_bytes()[body_start..]
                        .windows(close.len())
                        .position(|w| w == close.as_slice());
                    let end = rel.map_or(b.len(), |r| body_start + r + close.len());
                    for k in body_start..end.saturating_sub(close.len()) {
                        if b[k] != b'\n' {
                            out[k] = b' ';
                        }
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        out[i] = b' ';
                        i += 1;
                        if i < b.len() && b[i] != b'\n' {
                            out[i] = b' ';
                        }
                    } else if b[i] != b'\n' {
                        out[i] = b' ';
                    }
                    i += 1;
                }
                i += 1;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with a `'`
                // within a few bytes ('x', '\n', '\u{1F600}').
                let lookahead = &b[i + 1..(i + 12).min(b.len())];
                let close = if lookahead.first() == Some(&b'\\') {
                    lookahead
                        .iter()
                        .skip(1)
                        .position(|&c| c == b'\'')
                        .map(|p| p + 1)
                } else {
                    (lookahead.get(1) == Some(&b'\'')).then_some(1)
                };
                if let Some(p) = close {
                    for k in i + 1..=i + 1 + p {
                        if b[k] != b'\n' {
                            out[k] = b' ';
                        }
                    }
                    i += p + 2;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("stripping preserves UTF-8 only when input is ASCII-punctuated")
}

//! In-tree stand-in for the `crossbeam` crate.
//!
//! Only the bounded-channel subset used by `optee-sim`'s loopback network
//! is provided, implemented over `std::sync::mpsc::sync_channel` (which has
//! the same blocking-when-full semantics as `crossbeam::channel::bounded`).

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a bounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] if the receiving half has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`mpsc::RecvError`] if the channel is disconnected.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks for at most `timeout` waiting for a message.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError`] if the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(4);
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn cloned_senders_share_channel() {
        let (tx, rx) = channel::bounded(4);
        let tx2 = tx.clone();
        tx2.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}

//! In-tree stand-in for the `crossbeam` crate.
//!
//! The subset used by `optee-sim`'s loopback network and `watz-fleet`'s
//! event-driven worker scheduling is provided: bounded and unbounded
//! MPSC channels plus a [`channel::Select`] that can block on *many*
//! receivers of different element types at once.
//!
//! The previous revision wrapped `std::sync::mpsc::sync_channel`, which
//! cannot participate in a select; this one owns the channel state
//! (`Mutex<VecDeque>` + condvars) so a receiver can additionally register
//! lightweight wakers. A `Select` waits on one shared [signal] that every
//! registered channel fires on send *and* on sender-disconnect — the two
//! events that make a receive operation ready.

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    /// The sending half was unable to deliver: the receiver is gone.
    /// Carries the undelivered value back, like `mpsc::SendError`.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Why a non-blocking receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty but senders are still alive.
        Empty,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// Why a timed receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// Why a blocking receive returned without a message (disconnect is
    /// the only possibility).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why [`Select::ready_timeout`] returned without a ready operation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReadyTimeoutError;

    /// A one-bit wake signal a [`Select`] sleeps on; registered channels
    /// fire it whenever a receive operation may have become ready.
    /// (Public only because [`SelectHandle::watch`] mentions it; there is
    /// nothing callers can do with one directly.)
    #[derive(Default)]
    pub struct Signal {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl Signal {
        fn notify(&self) {
            let mut fired = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            *fired = true;
            self.cv.notify_all();
        }

        /// Waits until fired (consuming the signal) or the deadline.
        /// Returns whether the signal fired.
        fn wait(&self, deadline: Option<Instant>) -> bool {
            let mut fired = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if *fired {
                    *fired = false;
                    return true;
                }
                match deadline {
                    None => {
                        fired = self.cv.wait(fired).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return false;
                        }
                        let (guard, timeout) = self
                            .cv
                            .wait_timeout(fired, d - now)
                            .unwrap_or_else(|e| e.into_inner());
                        fired = guard;
                        if timeout.timed_out() && !*fired {
                            return false;
                        }
                    }
                }
            }
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receiver_alive: bool,
        /// Select signals watching this channel for recv readiness.
        watchers: Vec<Weak<Signal>>,
    }

    impl<T> Inner<T> {
        /// A receive operation would not block: a message is buffered, or
        /// no sender is left (so a receive resolves to `Disconnected`).
        fn recv_ready(&self) -> bool {
            !self.queue.is_empty() || self.senders == 0
        }

        /// Fires (and prunes) every registered select watcher.
        fn wake_watchers(&mut self) {
            self.watchers.retain(|w| {
                w.upgrade().is_some_and(|signal| {
                    signal.notify();
                    true
                })
            });
        }
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        /// Message buffered or all senders gone.
        recv_ready: Condvar,
        /// Space freed or the receiver gone.
        send_ready: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.senders -= 1;
            if inner.senders == 0 {
                // Disconnect makes every pending/future receive ready.
                inner.wake_watchers();
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] if the receiving half has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.lock();
            loop {
                if !inner.receiver_alive {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|cap| inner.queue.len() >= cap);
                if !full {
                    inner.queue.push_back(value);
                    inner.wake_watchers();
                    self.0.recv_ready.notify_one();
                    return Ok(());
                }
                inner = self
                    .0
                    .send_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// The receiving half of a channel (single consumer by convention).
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.lock();
            inner.receiver_alive = false;
            inner.queue.clear();
            self.0.send_ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, inner: &mut Inner<T>) -> Option<T> {
            let value = inner.queue.pop_front()?;
            self.0.send_ready.notify_one();
            Some(value)
        }

        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is disconnected and
        /// drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.lock();
            loop {
                if let Some(value) = self.pop(&mut inner) {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .recv_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks for at most `timeout` waiting for a message. Buffered
        /// messages are delivered before a disconnect is reported.
        ///
        /// # Errors
        ///
        /// Returns [`RecvTimeoutError`] on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.lock();
            loop {
                if let Some(value) = self.pop(&mut inner) {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .recv_ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Returns a pending message without blocking. Buffered messages
        /// are delivered before a disconnect is reported.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError`] if the channel is empty or
        /// disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.lock();
            if let Some(value) = self.pop(&mut inner) {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receiver_alive: true,
                watchers: Vec::new(),
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Creates a bounded channel with capacity `cap` (> 0; the shim does
    /// not model crossbeam's zero-capacity rendezvous channels, which
    /// nothing in this workspace uses).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "rendezvous (capacity-0) channels are not modelled");
        channel(Some(cap))
    }

    /// Creates an unbounded channel: `send` never blocks.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A receiver a [`Select`] can wait on, independent of element type.
    pub trait SelectHandle {
        /// Registers a wake signal to fire when a receive becomes ready.
        fn watch(&self, signal: &Arc<Signal>);
        /// Whether a receive operation would complete without blocking
        /// (message buffered, or channel disconnected).
        fn is_ready(&self) -> bool;
    }

    impl<T> SelectHandle for Receiver<T> {
        fn watch(&self, signal: &Arc<Signal>) {
            let mut inner = self.0.lock();
            // Prune stale watchers from selects that already returned, so
            // long-lived channels do not accumulate dead registrations.
            inner.watchers.retain(|w| w.strong_count() > 0);
            inner.watchers.push(Arc::downgrade(signal));
        }

        fn is_ready(&self) -> bool {
            self.0.lock().recv_ready()
        }
    }

    /// Waits for any of several receive operations to become ready
    /// (the `crossbeam::channel::Select` "ready" API).
    ///
    /// ```
    /// # use crossbeam::channel::{unbounded, Select};
    /// let (tx, rx) = unbounded();
    /// tx.send(7u32).unwrap();
    /// let mut sel = Select::new();
    /// let idx = sel.recv(&rx);
    /// assert_eq!(sel.ready(), idx);
    /// assert_eq!(rx.try_recv().unwrap(), 7);
    /// ```
    pub struct Select<'a> {
        handles: Vec<&'a dyn SelectHandle>,
        signal: Arc<Signal>,
        registered: bool,
        /// Rotates the readiness scan so one always-busy channel cannot
        /// starve the others.
        next_start: usize,
    }

    impl fmt::Debug for Select<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Select {{ handles: {} }}", self.handles.len())
        }
    }

    impl Default for Select<'_> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<'a> Select<'a> {
        /// An empty select.
        #[must_use]
        pub fn new() -> Self {
            Select {
                handles: Vec::new(),
                signal: Arc::new(Signal::default()),
                registered: false,
                next_start: 0,
            }
        }

        /// Adds a receive operation; returns its index as later reported
        /// by [`Select::ready`] / [`Select::ready_timeout`].
        pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
            assert!(
                !self.registered,
                "cannot add operations to a Select after waiting on it"
            );
            self.handles.push(receiver);
            self.handles.len() - 1
        }

        fn poll_ready(&mut self) -> Option<usize> {
            let n = self.handles.len();
            for k in 0..n {
                let i = (self.next_start + k) % n;
                if self.handles[i].is_ready() {
                    self.next_start = i + 1;
                    return Some(i);
                }
            }
            None
        }

        fn wait_deadline(&mut self, deadline: Option<Instant>) -> Result<usize, ReadyTimeoutError> {
            if self.handles.is_empty() {
                // Nothing can ever become ready; sleeping forever would be
                // a caller bug, so only the timed form is allowed.
                let d = deadline.expect("Select::ready() on an empty select would block forever");
                self.signal.wait(Some(d));
                return Err(ReadyTimeoutError);
            }
            // Register before the first readiness check so a message that
            // lands in between still fires the signal (no lost wakeup).
            if !self.registered {
                for handle in &self.handles {
                    handle.watch(&self.signal);
                }
                self.registered = true;
            }
            loop {
                if let Some(i) = self.poll_ready() {
                    return Ok(i);
                }
                if !self.signal.wait(deadline) {
                    return Err(ReadyTimeoutError);
                }
            }
        }

        /// Blocks until some registered operation is ready and returns its
        /// index. The operation is *not* performed — follow up with
        /// `try_recv` on the corresponding receiver.
        ///
        /// # Panics
        ///
        /// Panics if no operation was registered (it would block forever).
        pub fn ready(&mut self) -> usize {
            self.wait_deadline(None)
                .expect("untimed ready() only returns on readiness")
        }

        /// Like [`Select::ready`], bounded by `timeout`.
        ///
        /// # Errors
        ///
        /// Returns [`ReadyTimeoutError`] if nothing became ready in time.
        pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
            self.wait_deadline(Some(Instant::now() + timeout))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, Select, TryRecvError};
    use std::time::{Duration, Instant};

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(4);
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
    }

    #[test]
    fn cloned_senders_share_channel() {
        let (tx, rx) = channel::bounded(4);
        let tx2 = tx.clone();
        tx2.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1u8).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2u8).unwrap(); // blocks until the first recv
            drop(tx);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err(), "disconnected after sender drop");
        handle.join().unwrap();
    }

    #[test]
    fn unbounded_send_never_blocks() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10_000u32 {
            tx.send(i).unwrap();
        }
        for i in 0..10_000u32 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn disconnect_drains_buffer_first() {
        let (tx, rx) = channel::bounded(4);
        tx.send(9u8).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 9);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }

    #[test]
    fn select_times_out_when_nothing_ready() {
        let (_tx, rx) = channel::bounded::<u8>(1);
        let mut sel = Select::new();
        sel.recv(&rx);
        let start = Instant::now();
        assert!(sel.ready_timeout(Duration::from_millis(30)).is_err());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn select_wakes_on_cross_thread_send() {
        let (tx, rx) = channel::bounded(1);
        let (tx2, rx2) = channel::bounded::<u8>(1);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(42u32).unwrap();
        });
        let mut sel = Select::new();
        let first = sel.recv(&rx2);
        let second = sel.recv(&rx);
        let idx = sel.ready_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(idx, second);
        assert_ne!(idx, first);
        assert_eq!(rx.try_recv().unwrap(), 42);
        handle.join().unwrap();
        drop(tx2);
    }

    #[test]
    fn select_reports_disconnect_as_ready() {
        let (tx, rx) = channel::bounded::<u8>(1);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let mut sel = Select::new();
        let idx = sel.recv(&rx);
        assert_eq!(sel.ready_timeout(Duration::from_secs(5)).unwrap(), idx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
        handle.join().unwrap();
    }

    #[test]
    fn select_sees_message_sent_before_wait() {
        // Readiness present before the first wait: no wakeup needed at all.
        let (tx, rx) = channel::unbounded();
        tx.send(1u8).unwrap();
        let mut sel = Select::new();
        let idx = sel.recv(&rx);
        assert_eq!(sel.ready(), idx);
    }

    #[test]
    fn select_rotation_does_not_starve() {
        // Both channels stay ready; repeated waits must visit both.
        let (tx_a, rx_a) = channel::unbounded();
        let (tx_b, rx_b) = channel::unbounded();
        for _ in 0..4 {
            tx_a.send(0u8).unwrap();
            tx_b.send(1u8).unwrap();
        }
        let mut sel = Select::new();
        let a = sel.recv(&rx_a);
        let b = sel.recv(&rx_b);
        let mut seen = [false, false];
        for _ in 0..4 {
            let idx = sel.ready();
            seen[idx] = true;
            if idx == a {
                rx_a.try_recv().unwrap();
            } else {
                assert_eq!(idx, b);
                rx_b.try_recv().unwrap();
            }
        }
        assert!(seen[a] && seen[b], "rotation visits every ready channel");
    }
}

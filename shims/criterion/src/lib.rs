//! In-tree stand-in for the `criterion` benchmarking crate.
//!
//! Provides the subset of the criterion API used by `crates/bench`
//! (`Criterion`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros) with a simple
//! median-of-samples timer so `cargo bench` runs without network access.
//! Results are printed in a criterion-like `name  time: [median]` format.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine`, recording `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: batch enough iterations that one sample is >= ~1ms,
        // so very fast routines still time meaningfully.
        let t = Instant::now();
        black_box(routine());
        let one = t.elapsed();
        if one < Duration::from_millis(1) {
            let nanos = one.as_nanos().max(1);
            self.iters_per_sample = (1_000_000 / nanos).max(1) as u64;
        }
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(id: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_count);
    f(&mut b);
    match b.median() {
        Some(median) => println!("{id:<40} time: [{}]", fmt_duration(median)),
        None => println!("{id:<40} time: [no samples]"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(2u64 + 2));
        assert!(b.median().is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_function("f", |b| {
            b.iter(|| 1);
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}

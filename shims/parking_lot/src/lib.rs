//! In-tree stand-in for the `parking_lot` crate.
//!
//! The workspace builds without network access, so the subset of the
//! `parking_lot` API the codebase uses (an infallible `Mutex`) is provided
//! here over `std::sync`. Poisoning is deliberately ignored — like the real
//! `parking_lot`, `lock()` always succeeds and returns the guard directly.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion primitive with `parking_lot`'s infallible `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex::lock`, never fails: a poisoned lock is
    /// recovered, matching `parking_lot` semantics (no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

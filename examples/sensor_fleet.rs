//! A fleet of attested IoT devices — at scale. Two hundred simulated
//! devices across four shards attest concurrently against per-shard
//! relying parties; only endorsed devices running the reference bytecode
//! receive the configuration secret. Rogue devices (unendorsed keys) and
//! stale devices (outdated WaTZ version) are rejected.
//!
//! Run with: `cargo run --release --example sensor_fleet`

use std::time::Duration;

use watz::fleet::sim::{FleetSim, FleetSimConfig};
use watz::fleet::DeviceKind;

fn main() {
    let config = FleetSimConfig {
        shards: 4,
        endorsed: 180,
        rogue: 10,
        stale: 10,
        workers_per_shard: 4,
        session_timeout: Duration::from_secs(5),
        ..FleetSimConfig::default()
    };
    let total = config.endorsed + config.rogue + config.stale;
    println!(
        "booting {total} devices across {} shards ({} endorsed, {} rogue, {} stale)...",
        config.shards, config.endorsed, config.rogue, config.stale
    );
    let sim = FleetSim::boot(config).expect("fleet boot");

    let registry = sim.registry();
    let per_kind = |kind| registry.iter().filter(|d| d.kind == kind).count();
    println!(
        "registry: {} devices ({} endorsed / {} rogue / {} stale), measurement {:02x}{:02x}..",
        registry.len(),
        per_kind(DeviceKind::Endorsed),
        per_kind(DeviceKind::Rogue),
        per_kind(DeviceKind::Stale),
        sim.measurement()[0],
        sim.measurement()[1],
    );

    let report = sim.run();
    println!("{report}");

    // The fleet-wide invariants this example demonstrates.
    assert_eq!(report.provisioned, 180, "all endorsed devices provisioned");
    assert_eq!(report.rejected, 20, "all rogue and stale devices rejected");
    assert_eq!(report.failed, 0, "no session died without a verdict");
    assert_eq!(report.stats.completed(), 200);
    println!("fleet OK: 180 provisioned, 20 rejected, stats add up");
}

//! A fleet of attested IoT devices: three devices, one relying party.
//! Only endorsed devices running the reference bytecode receive the
//! configuration secret; a rogue device is rejected.
//!
//! Run with: `cargo run --example sensor_fleet`

use watz::crypto::{ecdsa::SigningKey, fortuna::Fortuna, sha256::Sha256};
use watz::runtime::{AppConfig, RaVerifierConfig, VerifierServer, WatzRuntime};
use watz::wasm::exec::Value;

const SENSOR_APP: &str = r#"
    extern int ra_handshake(int port, int key_ptr);
    extern int ra_collect_quote(int ctx);
    extern int ra_send_quote(int ctx, int q);
    extern int ra_receive_data(int ctx, int buf, int len);
    int key_addr = 0;
    int set_key_buf() { key_addr = (int)alloc(64); return key_addr; }
    int provision(int port) {
        int ctx = ra_handshake(port, key_addr);
        if (ctx < 0) { return ctx; }
        int q = ra_collect_quote(ctx);
        ra_send_quote(ctx, q);
        int buf = (int)alloc(4096);
        return ra_receive_data(ctx, buf, 4096);
    }
"#;

fn main() {
    let wasm = watz::compiler::compile(SENSOR_APP).expect("compile");
    let measurement = Sha256::digest(&wasm);

    // Three devices; only the first two are endorsed by the fleet owner.
    let devices: Vec<WatzRuntime> = [b"sensor-01".as_slice(), b"sensor-02", b"rogue-99"]
        .iter()
        .map(|seed| WatzRuntime::new_device(seed).expect("boot"))
        .collect();

    let mut rng = Fortuna::from_seed(b"fleet-owner");
    let identity = SigningKey::generate(&mut rng);
    let base_config = RaVerifierConfig::new(identity)
        .endorse_device(devices[0].device_public_key())
        .endorse_device(devices[1].device_public_key())
        .trust_measurement(measurement)
        .with_secret(b"wifi-psk: hunter2".to_vec());
    let pinned = base_config.identity_public_key();

    for (i, device) in devices.iter().enumerate() {
        let server = VerifierServer::spawn(device.os(), base_config.clone(), 7200).expect("server");
        let mut app = device.load(&wasm, &AppConfig::default()).expect("load");
        let key_addr = app.invoke("set_key_buf", &[]).unwrap()[0].as_u32();
        app.write_memory(key_addr, &pinned).unwrap();
        let out = app.invoke("provision", &[Value::I32(7200)]).unwrap();
        let served = server.shutdown();
        match out[0] {
            Value::I32(n) if n > 0 => {
                println!("device {i}: provisioned ({n} bytes of config), sessions served {served}")
            }
            other => println!("device {i}: REJECTED ({other:?}), sessions served {served}"),
        }
    }
}

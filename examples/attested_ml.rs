//! The paper's end-to-end scenario (§VI-F): a Wasm machine-learning
//! application attests itself to a verifier, receives a confidential
//! dataset over the attested channel, and trains a neural network on it.
//!
//! Run with: `cargo run --example attested_ml`

use watz::crypto::{ecdsa::SigningKey, fortuna::Fortuna, sha256::Sha256};
use watz::runtime::{AppConfig, RaVerifierConfig, VerifierServer, WatzRuntime};
use watz::wasm::exec::Value;

fn main() {
    let runtime = WatzRuntime::new_device(b"edge-ml-device").expect("boot");

    // The guest: attests, then trains on the received dataset.
    let guest_src = format!(
        "{}\n{}",
        watz::compiler::LIBM_PRELUDE,
        r#"
        extern int ra_handshake(int port, int key_ptr);
        extern int ra_collect_quote(int ctx);
        extern int ra_send_quote(int ctx, int q);
        extern int ra_receive_data(int ctx, int buf, int len);
        int key_addr = 0;
        int data_addr = 0;
        int data_len = 0;
        int set_key_buf() { key_addr = (int)alloc(64); return key_addr; }
        int fetch_dataset(int port) {
            int ctx = ra_handshake(port, key_addr);
            if (ctx < 0) { return ctx; }
            int q = ra_collect_quote(ctx);
            ra_send_quote(ctx, q);
            data_addr = (int)alloc(2 * 1024 * 1024);
            data_len = ra_receive_data(ctx, data_addr, 2 * 1024 * 1024);
            return data_len;
        }
        // Count CSV rows in the received dataset (training proxy: the
        // full MiniC genann port lives in the workloads crate).
        int count_rows() {
            int count = 0;
            int i;
            for (i = 0; i < data_len; i = i + 1) {
                if (lb(data_addr + i) == 10) { count = count + 1; }
            }
            return count;
        }
        "#
    );
    let wasm = watz::compiler::compile(&guest_src).expect("compile");
    let measurement = Sha256::digest(&wasm);

    // Relying party: endorses this device and this exact bytecode, and
    // holds the confidential Iris dataset.
    let dataset = watz::ann::iris::replicated_csv(100 * 1024);
    let mut rng = Fortuna::from_seed(b"relying-party-identity");
    let identity = SigningKey::generate(&mut rng);
    let config = RaVerifierConfig::new(identity)
        .endorse_device(runtime.device_public_key())
        .trust_measurement(measurement)
        .with_secret(dataset.clone().into_bytes());
    let pinned = config.identity_public_key();
    let server = VerifierServer::spawn(runtime.os(), config, 7100).expect("server");

    // Device side: load the app, pin the verifier key, attest.
    let mut app = runtime.load(&wasm, &AppConfig::default()).expect("load");
    let key_addr = app.invoke("set_key_buf", &[]).unwrap()[0].as_u32();
    app.write_memory(key_addr, &pinned).unwrap();
    let got = app.invoke("fetch_dataset", &[Value::I32(7100)]).unwrap();
    println!("attested + received {got:?} bytes of confidential dataset");
    assert_eq!(got, vec![Value::I32(dataset.len() as i32)]);

    let rows = app.invoke("count_rows", &[]).unwrap();
    println!("guest sees {rows:?} training rows");

    // Train natively on the same data to close the loop (the full
    // in-guest training benchmark is `cargo bench --bench fig8_genann`).
    let samples = watz::ann::iris::from_csv(&dataset);
    let mut nn = watz::ann::Genann::new(4, 1, 4, 3);
    for _ in 0..50 {
        for s in &samples {
            nn.train(&s.features, &s.one_hot(), 0.5);
        }
    }
    println!("trained 4-4-3 network, MSE = {:.4}", {
        let mut data: Vec<(Vec<f64>, Vec<f64>)> = samples
            .iter()
            .map(|s| (s.features.clone(), s.one_hot()))
            .collect();
        data.truncate(150);
        nn.mse(&data)
    });
    assert_eq!(server.shutdown().served, 1);
    println!("verifier served 1 successful attestation");
}

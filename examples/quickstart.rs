//! Quickstart: boot a device, load a Wasm application into the secure
//! world, run it, and inspect its measurement.
//!
//! Run with: `cargo run --example quickstart`

use watz::runtime::{AppConfig, WatzRuntime};
use watz::wasm::exec::Value;

fn main() {
    // 1. "Manufacture" a device: fuse an OTPMK, run the secure boot chain,
    //    boot the trusted OS and install the WaTZ runtime.
    let runtime = WatzRuntime::new_device(b"quickstart-device").expect("boot");
    println!(
        "device attestation key: {:02x?}...",
        &runtime.device_public_key()[..8]
    );

    // 2. Compile a guest. The paper compiles C with WASI-SDK; this
    //    reproduction ships MiniC, a small C-like language.
    let wasm = watz::compiler::compile(
        r#"
        extern void print_str(int s);
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { print_str("hello from the secure world\n"); return fib(25); }
        "#,
    )
    .expect("compile");

    // 3. Load: the bytecode crosses the world boundary through shared
    //    memory, is measured (SHA-256) and instantiated.
    let mut app = runtime.load(&wasm, &AppConfig::default()).expect("load");
    println!("measurement: {:02x?}...", &app.measurement()[..8]);

    // 4. Run.
    let result = app.invoke("main", &[]).expect("run");
    print!("{}", String::from_utf8_lossy(app.stdout()));
    println!("fib(25) = {:?}", result);
    assert_eq!(result, vec![Value::I32(75025)]);

    // 5. The Fig 4-style startup breakdown comes for free.
    let b = app.startup_breakdown();
    println!(
        "startup: loading {:?}, hashing {:?}, instantiate {:?}",
        b.loading, b.hashing, b.instantiate
    );
}

//! A trusted in-memory database: the microdb engine running as a Wasm
//! workload inside WaTZ (the Fig 6 scenario, interactively).
//!
//! Run with: `cargo run --example trusted_db`

use watz::bench_workloads::speedtest;
use watz::runtime::{AppConfig, WatzRuntime};
use watz::wasm::exec::Value;

fn main() {
    let runtime = WatzRuntime::new_device(b"db-device").expect("boot");

    // Native side: the SQL engine.
    let mut db = watz::db::Database::new();
    db.execute("CREATE TABLE sensors(id INT, reading INT, site TEXT)")
        .unwrap();
    db.execute("CREATE INDEX by_reading ON sensors(reading)")
        .unwrap();
    for i in 0..1000 {
        db.execute(&format!(
            "INSERT INTO sensors VALUES ({i}, {}, 'site {}')",
            (i * 37) % 500,
            i % 7
        ))
        .unwrap();
    }
    let r = db
        .execute("SELECT COUNT(*) FROM sensors WHERE reading BETWEEN 100 AND 200")
        .unwrap();
    println!("native microdb: readings in [100,200] = {:?}", r.rows[0][0]);

    // Wasm side: the minisql guest inside the TEE.
    let wasm = watz::compiler::compile_with_options(
        speedtest::MINISQL_GUEST,
        &watz::compiler::Options {
            min_pages: 256,
            max_pages: None,
        },
    )
    .expect("compile minisql");
    let mut app = runtime
        .load(
            &wasm,
            &AppConfig {
                heap_bytes: 25 << 20,
                mode: watz::wasm::ExecMode::Aot,
            },
        )
        .expect("load");
    app.invoke("setup", &[Value::I32(1000)]).unwrap();
    println!(
        "minisql guest measurement: {:02x?}...",
        &app.measurement()[..8]
    );

    for exp in speedtest::experiments().iter().take(6) {
        let t = std::time::Instant::now();
        let check = app
            .invoke("run_exp", &[Value::I32(exp.id as i32), Value::I32(1000)])
            .unwrap();
        println!(
            "  experiment {:>3} ({:<40}) check={:?} in {:?}",
            exp.id,
            exp.description,
            check[0],
            t.elapsed()
        );
    }
}

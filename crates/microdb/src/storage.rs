//! Storage layer: tables, rows, values and secondary indexes.

use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// NULL.
    Null,
}

impl Value {
    /// SQL-style comparison: numerics compare numerically across Int/Real,
    /// NULL compares less than everything, text compares lexicographically.
    #[must_use]
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::{Int, Null, Real, Text};
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Real(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            // Mixed text/number: numbers sort first (SQLite's type order).
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
        }
    }

    /// True for exact SQL equality (used by predicates).
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> bool {
        !matches!(self, Value::Null)
            && !matches!(other, Value::Null)
            && self.compare(other) == Ordering::Equal
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Total-ordered wrapper so values can key a `BTreeMap` index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Value);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.compare(&other.0)
    }
}

/// Declared column types (affinity only; storage is dynamically typed,
/// like SQLite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Integer affinity.
    Int,
    /// Real affinity.
    Real,
    /// Text affinity.
    Text,
}

/// A secondary index on a single column.
#[derive(Debug)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    /// Key -> row ids.
    pub map: BTreeMap<IndexKey, Vec<usize>>,
}

impl Index {
    fn insert(&mut self, key: Value, row_id: usize) {
        self.map.entry(IndexKey(key)).or_default().push(row_id);
    }

    fn remove(&mut self, key: &Value, row_id: usize) {
        if let Some(ids) = self.map.get_mut(&IndexKey(key.clone())) {
            ids.retain(|id| *id != row_id);
            if ids.is_empty() {
                self.map.remove(&IndexKey(key.clone()));
            }
        }
    }
}

/// A table: schema, row storage with tombstones, and indexes.
#[derive(Debug)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Column affinities.
    pub types: Vec<ColumnType>,
    /// Row storage; `None` marks deleted rows (tombstones).
    pub rows: Vec<Option<Vec<Value>>>,
    /// Secondary indexes.
    pub indexes: Vec<Index>,
    live: usize,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(name: String, columns: Vec<String>, types: Vec<ColumnType>) -> Self {
        Table {
            name,
            columns,
            types,
            rows: Vec::new(),
            indexes: Vec::new(),
            live: 0,
        }
    }

    /// Resolves a column name to its position.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Number of live (non-deleted) rows.
    #[must_use]
    pub fn live_rows(&self) -> usize {
        self.live
    }

    /// Appends a row, updating all indexes. Returns the row id.
    pub fn insert(&mut self, row: Vec<Value>) -> usize {
        let row_id = self.rows.len();
        for index in &mut self.indexes {
            index.insert(row[index.column].clone(), row_id);
        }
        self.rows.push(Some(row));
        self.live += 1;
        row_id
    }

    /// Deletes a row by id (idempotent).
    pub fn delete(&mut self, row_id: usize) {
        if let Some(slot) = self.rows.get_mut(row_id) {
            if let Some(row) = slot.take() {
                self.live -= 1;
                for index in &mut self.indexes {
                    index.remove(&row[index.column], row_id);
                }
            }
        }
    }

    /// Replaces a column value in a row, keeping indexes consistent.
    pub fn update_cell(&mut self, row_id: usize, column: usize, value: Value) {
        // Collect index maintenance first to appease the borrow checker.
        let old = match self.rows.get(row_id).and_then(Option::as_ref) {
            Some(row) => row[column].clone(),
            None => return,
        };
        for index in &mut self.indexes {
            if index.column == column {
                index.remove(&old, row_id);
                index.insert(value.clone(), row_id);
            }
        }
        if let Some(Some(row)) = self.rows.get_mut(row_id) {
            row[column] = value;
        }
    }

    /// Builds an index over `column`, covering existing rows.
    pub fn create_index(&mut self, name: String, column: usize) {
        let mut index = Index {
            name,
            column,
            map: BTreeMap::new(),
        };
        for (row_id, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                index.insert(row[column].clone(), row_id);
            }
        }
        self.indexes.push(index);
    }

    /// Finds an index on `column`, if any.
    #[must_use]
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// Iterates live rows as `(row_id, row)`.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, &Vec<Value>)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(id, row)| row.as_ref().map(|r| (id, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t".into(),
            vec!["a".into(), "b".into()],
            vec![ColumnType::Int, ColumnType::Text],
        )
    }

    #[test]
    fn insert_delete_live_count() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Text("x".into())]);
        t.insert(vec![Value::Int(2), Value::Text("y".into())]);
        assert_eq!(t.live_rows(), 2);
        t.delete(id);
        assert_eq!(t.live_rows(), 1);
        t.delete(id); // idempotent
        assert_eq!(t.live_rows(), 1);
    }

    #[test]
    fn index_tracks_updates() {
        let mut t = table();
        t.create_index("ia".into(), 0);
        let id = t.insert(vec![Value::Int(5), Value::Text("x".into())]);
        assert_eq!(t.index_on(0).unwrap().map.len(), 1);
        t.update_cell(id, 0, Value::Int(9));
        let idx = t.index_on(0).unwrap();
        assert!(idx.map.contains_key(&IndexKey(Value::Int(9))));
        assert!(!idx.map.contains_key(&IndexKey(Value::Int(5))));
        t.delete(id);
        assert!(t.index_on(0).unwrap().map.is_empty());
    }

    #[test]
    fn value_comparison_cross_type() {
        assert_eq!(Value::Int(2).compare(&Value::Real(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).compare(&Value::Real(2.5)), Ordering::Less);
        assert_eq!(Value::Null.compare(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Int(999)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_never_sql_equal() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(0)));
        assert!(Value::Int(3).sql_eq(&Value::Real(3.0)));
    }
}

//! SQL tokenizer and parser (the Speedtest1-relevant subset).

use crate::storage::{ColumnType, Value};
use crate::DbError;

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A WHERE predicate (conjunction of simple terms).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col <op> literal`
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `col BETWEEN lo AND hi`
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `col LIKE 'prefix%'` (prefix matching only).
    LikePrefix {
        /// Column name.
        column: String,
        /// Literal prefix before the `%`.
        prefix: String,
    },
    /// `a AND b`
    And(Box<Predicate>, Box<Predicate>),
}

/// A selected output column.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain column reference.
    Column(String),
    /// `COUNT(*)`
    CountStar,
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

impl SelectItem {
    /// True for aggregate items.
    #[must_use]
    pub fn is_aggregate(&self) -> bool {
        !matches!(self, SelectItem::Column(_))
    }
}

/// A value expression in `SET col = expr` (column, literal, or
/// `col <op> literal` arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// Literal value.
    Literal(Value),
    /// Copy of another column.
    Column(String),
    /// `col + n`, `col - n`, `col * n` style arithmetic.
    Arith {
        /// Source column.
        column: String,
        /// One of `+ - * /`.
        op: char,
        /// Literal operand.
        value: Value,
    },
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column names.
        columns: Vec<String>,
        /// Column affinities.
        types: Vec<ColumnType>,
    },
    /// `CREATE INDEX name ON table(col)`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DROP TABLE name`
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO t VALUES (...), (...)`
    Insert {
        /// Table name.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT items FROM t [WHERE p] [ORDER BY col [DESC]] [LIMIT n]`
    Select {
        /// Output items.
        items: Vec<SelectItem>,
        /// Table name.
        table: String,
        /// Optional predicate.
        predicate: Option<Predicate>,
        /// Optional ordering column (+ descending flag).
        order_by: Option<(String, bool)>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// `UPDATE t SET col = expr, ... [WHERE p]`
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        sets: Vec<(String, SetExpr)>,
        /// Optional predicate.
        predicate: Option<Predicate>,
    },
    /// `DELETE FROM t [WHERE p]`
    Delete {
        /// Table name.
        table: String,
        /// Optional predicate.
        predicate: Option<Predicate>,
    },
    /// `BEGIN` / `COMMIT` / `ROLLBACK` (no-ops for the in-memory engine).
    Transaction,
}

// ---- Tokenizer -------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Int(i64),
    Real(f64),
    Str(String),
    Punct(char),
    Le,
    Ge,
    Ne,
}

fn tokenize(sql: &str) -> Result<Vec<Tok>, DbError> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '*' | '=' | '+' | '-' | '/' | ';' => {
                // Negative number literal?
                if c == '-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (tok, next) = lex_number(sql, i)?;
                    toks.push(tok);
                    i = next;
                } else {
                    toks.push(Tok::Punct(c));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Punct('<'));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Punct('>'));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Syntax("stray '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Syntax("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(b) => {
                            s.push(*b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '0'..='9' => {
                let (tok, next) = lex_number(sql, i)?;
                toks.push(tok);
                i = next;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Word(sql[start..i].to_string()));
            }
            other => return Err(DbError::Syntax(format!("unexpected character '{other}'"))),
        }
    }
    Ok(toks)
}

fn lex_number(sql: &str, start: usize) -> Result<(Tok, usize), DbError> {
    let bytes = sql.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut is_real = false;
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
        if bytes[i] == b'.' {
            is_real = true;
        }
        i += 1;
    }
    let text = &sql[start..i];
    let tok = if is_real {
        Tok::Real(
            text.parse()
                .map_err(|_| DbError::Syntax(format!("bad number '{text}'")))?,
        )
    } else {
        Tok::Int(
            text.parse()
                .map_err(|_| DbError::Syntax(format!("bad number '{text}'")))?,
        )
    };
    Ok((tok, i))
}

// ---- Parser ----------------------------------------------------------------

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Syntax(format!("expected {kw}")))
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), DbError> {
        match self.next() {
            Some(Tok::Punct(c)) if c == p => Ok(()),
            other => Err(DbError::Syntax(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(DbError::Syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Value::Int(v)),
            Some(Tok::Real(v)) => Ok(Value::Real(v)),
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(DbError::Syntax(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, DbError> {
        let mut lhs = self.predicate_term()?;
        while self.keyword("AND") {
            let rhs = self.predicate_term()?;
            lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn predicate_term(&mut self) -> Result<Predicate, DbError> {
        let column = self.ident()?;
        if self.keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(Predicate::Between { column, lo, hi });
        }
        if self.keyword("LIKE") {
            let Value::Text(pattern) = self.literal()? else {
                return Err(DbError::Syntax("LIKE needs a string".into()));
            };
            let Some(prefix) = pattern.strip_suffix('%') else {
                return Err(DbError::Syntax(
                    "only prefix LIKE ('abc%') is supported".into(),
                ));
            };
            if prefix.contains('%') || prefix.contains('_') {
                return Err(DbError::Syntax(
                    "only prefix LIKE ('abc%') is supported".into(),
                ));
            }
            return Ok(Predicate::LikePrefix {
                column,
                prefix: prefix.to_string(),
            });
        }
        let op = match self.next() {
            Some(Tok::Punct('=')) => CmpOp::Eq,
            Some(Tok::Punct('<')) => CmpOp::Lt,
            Some(Tok::Punct('>')) => CmpOp::Gt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Ne) => CmpOp::Ne,
            other => {
                return Err(DbError::Syntax(format!(
                    "expected operator, found {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Compare { column, op, value })
    }
}

/// Parses one SQL statement.
///
/// # Errors
///
/// Returns [`DbError::Syntax`] on malformed SQL.
#[allow(clippy::too_many_lines)]
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let mut p = P {
        toks: tokenize(sql)?,
        pos: 0,
    };

    if p.keyword("BEGIN") || p.keyword("COMMIT") || p.keyword("ROLLBACK") {
        return Ok(Statement::Transaction);
    }

    if p.keyword("CREATE") {
        if p.keyword("TABLE") {
            let name = p.ident()?;
            p.expect_punct('(')?;
            let mut columns = Vec::new();
            let mut types = Vec::new();
            loop {
                columns.push(p.ident()?);
                let ty = p.ident()?;
                types.push(match ty.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" => ColumnType::Int,
                    "REAL" | "FLOAT" | "DOUBLE" => ColumnType::Real,
                    "TEXT" | "VARCHAR" | "CHAR" => ColumnType::Text,
                    other => return Err(DbError::Syntax(format!("unknown type {other}"))),
                });
                match p.next() {
                    Some(Tok::Punct(',')) => continue,
                    Some(Tok::Punct(')')) => break,
                    other => {
                        return Err(DbError::Syntax(format!("expected , or ), found {other:?}")))
                    }
                }
            }
            return Ok(Statement::CreateTable {
                name,
                columns,
                types,
            });
        }
        if p.keyword("INDEX") {
            let name = p.ident()?;
            p.expect_keyword("ON")?;
            let table = p.ident()?;
            p.expect_punct('(')?;
            let column = p.ident()?;
            p.expect_punct(')')?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
            });
        }
        return Err(DbError::Syntax(
            "expected TABLE or INDEX after CREATE".into(),
        ));
    }

    if p.keyword("DROP") {
        p.expect_keyword("TABLE")?;
        let name = p.ident()?;
        return Ok(Statement::DropTable { name });
    }

    if p.keyword("INSERT") {
        p.expect_keyword("INTO")?;
        let table = p.ident()?;
        p.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            p.expect_punct('(')?;
            let mut row = Vec::new();
            loop {
                row.push(p.literal()?);
                match p.next() {
                    Some(Tok::Punct(',')) => continue,
                    Some(Tok::Punct(')')) => break,
                    other => {
                        return Err(DbError::Syntax(format!("expected , or ), found {other:?}")))
                    }
                }
            }
            rows.push(row);
            if matches!(p.peek(), Some(Tok::Punct(','))) {
                p.pos += 1;
                continue;
            }
            break;
        }
        return Ok(Statement::Insert { table, rows });
    }

    if p.keyword("SELECT") {
        let mut items = Vec::new();
        loop {
            let item = if matches!(p.peek(), Some(Tok::Punct('*'))) {
                p.pos += 1;
                // Bare '*' means all columns: encode as Column("*").
                SelectItem::Column("*".into())
            } else {
                let word = p.ident()?;
                let agg = word.to_ascii_uppercase();
                if matches!(agg.as_str(), "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
                    && matches!(p.peek(), Some(Tok::Punct('(')))
                {
                    p.pos += 1;
                    let inner = if matches!(p.peek(), Some(Tok::Punct('*'))) {
                        p.pos += 1;
                        "*".to_string()
                    } else {
                        p.ident()?
                    };
                    p.expect_punct(')')?;
                    match agg.as_str() {
                        "COUNT" => SelectItem::CountStar,
                        "SUM" => SelectItem::Sum(inner),
                        "AVG" => SelectItem::Avg(inner),
                        "MIN" => SelectItem::Min(inner),
                        _ => SelectItem::Max(inner),
                    }
                } else {
                    SelectItem::Column(word)
                }
            };
            items.push(item);
            if matches!(p.peek(), Some(Tok::Punct(','))) {
                p.pos += 1;
                continue;
            }
            break;
        }
        p.expect_keyword("FROM")?;
        let table = p.ident()?;
        let predicate = if p.keyword("WHERE") {
            Some(p.predicate()?)
        } else {
            None
        };
        let order_by = if p.keyword("ORDER") {
            p.expect_keyword("BY")?;
            let col = p.ident()?;
            let desc = p.keyword("DESC");
            if !desc {
                let _ = p.keyword("ASC");
            }
            Some((col, desc))
        } else {
            None
        };
        let limit = if p.keyword("LIMIT") {
            match p.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Syntax(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        return Ok(Statement::Select {
            items,
            table,
            predicate,
            order_by,
            limit,
        });
    }

    if p.keyword("UPDATE") {
        let table = p.ident()?;
        p.expect_keyword("SET")?;
        let mut sets = Vec::new();
        loop {
            let column = p.ident()?;
            p.expect_punct('=')?;
            // Expression: literal | column | column op literal.
            let expr = match p.next() {
                Some(Tok::Int(v)) => SetExpr::Literal(Value::Int(v)),
                Some(Tok::Real(v)) => SetExpr::Literal(Value::Real(v)),
                Some(Tok::Str(s)) => SetExpr::Literal(Value::Text(s)),
                Some(Tok::Word(w)) if w.eq_ignore_ascii_case("null") => {
                    SetExpr::Literal(Value::Null)
                }
                Some(Tok::Word(src)) => {
                    if let Some(Tok::Punct(op @ ('+' | '-' | '*' | '/'))) = p.peek().cloned() {
                        p.pos += 1;
                        let value = p.literal()?;
                        SetExpr::Arith {
                            column: src,
                            op,
                            value,
                        }
                    } else {
                        SetExpr::Column(src)
                    }
                }
                other => return Err(DbError::Syntax(format!("bad SET expression {other:?}"))),
            };
            sets.push((column, expr));
            if matches!(p.peek(), Some(Tok::Punct(','))) {
                p.pos += 1;
                continue;
            }
            break;
        }
        let predicate = if p.keyword("WHERE") {
            Some(p.predicate()?)
        } else {
            None
        };
        return Ok(Statement::Update {
            table,
            sets,
            predicate,
        });
    }

    if p.keyword("DELETE") {
        p.expect_keyword("FROM")?;
        let table = p.ident()?;
        let predicate = if p.keyword("WHERE") {
            Some(p.predicate()?)
        } else {
            None
        };
        return Ok(Statement::Delete { table, predicate });
    }

    Err(DbError::Syntax(format!(
        "unrecognised statement: {}",
        sql.chars().take(40).collect::<String>()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse("CREATE TABLE t1(a INT, b REAL, c TEXT)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t1".into(),
                columns: vec!["a".into(), "b".into(), "c".into()],
                types: vec![ColumnType::Int, ColumnType::Real, ColumnType::Text],
            }
        );
    }

    #[test]
    fn parses_multi_row_insert() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Value::Text("b".into()));
    }

    #[test]
    fn parses_negative_and_real_literals() {
        let s = parse("INSERT INTO t VALUES (-5, 2.75)").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows[0], vec![Value::Int(-5), Value::Real(2.75)]);
    }

    #[test]
    fn parses_select_with_everything() {
        let s = parse(
            "SELECT a, COUNT(*) FROM t WHERE b >= 3 AND c LIKE 'ab%' ORDER BY a DESC LIMIT 10",
        )
        .unwrap();
        let Statement::Select {
            items,
            predicate,
            order_by,
            limit,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(predicate, Some(Predicate::And(_, _))));
        assert_eq!(order_by, Some(("a".into(), true)));
        assert_eq!(limit, Some(10));
    }

    #[test]
    fn parses_between() {
        let s = parse("SELECT a FROM t WHERE b BETWEEN 1 AND 5").unwrap();
        let Statement::Select { predicate, .. } = s else {
            panic!()
        };
        assert_eq!(
            predicate,
            Some(Predicate::Between {
                column: "b".into(),
                lo: Value::Int(1),
                hi: Value::Int(5)
            })
        );
    }

    #[test]
    fn parses_update_arith() {
        let s = parse("UPDATE t SET b = b + 10, c = 'x' WHERE a = 1").unwrap();
        let Statement::Update { sets, .. } = s else {
            panic!()
        };
        assert_eq!(
            sets[0].1,
            SetExpr::Arith {
                column: "b".into(),
                op: '+',
                value: Value::Int(10)
            }
        );
        assert_eq!(sets[1].1, SetExpr::Literal(Value::Text("x".into())));
    }

    #[test]
    fn quoted_quote() {
        let s = parse("INSERT INTO t VALUES ('it''s')").unwrap();
        let Statement::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(rows[0][0], Value::Text("it's".into()));
    }

    #[test]
    fn rejects_full_like() {
        assert!(parse("SELECT a FROM t WHERE c LIKE '%mid%'").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("EXPLAIN QUANTUM JOIN").is_err());
        assert!(parse("SELECT FROM").is_err());
    }
}

//! microdb: an embeddable, in-memory SQL database engine.
//!
//! The paper's macro-benchmark (Fig 6) runs SQLite's Speedtest1 suite with
//! in-memory databases inside and outside the TEE. SQLite itself cannot be
//! compiled here, so microdb fills the role: a compact SQL engine with the
//! feature set Speedtest1 exercises — tables, secondary indexes, `INSERT`,
//! point/range/`LIKE` `SELECT`s with `ORDER BY`/`LIMIT`, aggregate
//! `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, `UPDATE`, `DELETE`, and transactions as
//! no-ops (everything is in memory, like the paper's configuration).
//!
//! The same workloads run as a MiniC guest (`workloads::minisql`) on the
//! Wasm side of the experiment.
//!
//! # Example
//!
//! ```
//! use microdb::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t1(a INT, b INT, c TEXT)").unwrap();
//! db.execute("CREATE INDEX i1 ON t1(b)").unwrap();
//! db.execute("INSERT INTO t1 VALUES (1, 100, 'one hundred')").unwrap();
//! db.execute("INSERT INTO t1 VALUES (2, 200, 'two hundred')").unwrap();
//! let r = db.execute("SELECT a, c FROM t1 WHERE b >= 150").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! assert_eq!(r.rows[0][0], microdb::Value::Int(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod parser;
mod storage;

pub use executor::QueryResult;
pub use parser::{parse, Statement};
pub use storage::{ColumnType, Table, Value};

use std::collections::HashMap;

/// Errors from SQL execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL syntax error.
    Syntax(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// A table/index with that name already exists.
    AlreadyExists(String),
    /// Wrong number of values in an INSERT.
    ArityMismatch {
        /// Columns in the table.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Type error in an expression or comparison.
    TypeError(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// An in-memory database.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Returns a [`DbError`] for syntax or execution failures.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = parse(sql)?;
        executor::execute(self, &stmt)
    }

    /// Executes a pre-parsed statement (skips re-parsing in hot loops).
    ///
    /// # Errors
    ///
    /// Returns a [`DbError`] for execution failures.
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult, DbError> {
        executor::execute(self, stmt)
    }

    /// Names of all tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of live rows in a table.
    #[must_use]
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(Table::live_rows)
    }

    pub(crate) fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub(crate) fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub(crate) fn insert_table(&mut self, table: Table) -> Result<(), DbError> {
        if self.tables.contains_key(&table.name) {
            return Err(DbError::AlreadyExists(table.name));
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    pub(crate) fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(a INT, b INT, c TEXT)").unwrap();
        for i in 0..100 {
            db.execute(&format!(
                "INSERT INTO t VALUES ({i}, {}, 'row {i}')",
                i * 10
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn create_insert_select() {
        let mut db = db_with_data();
        let r = db.execute("SELECT a FROM t WHERE b = 500").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(50)]]);
    }

    #[test]
    fn count_star() {
        let mut db = db_with_data();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
    }

    #[test]
    fn range_scan_with_order_and_limit() {
        let mut db = db_with_data();
        let r = db
            .execute("SELECT a FROM t WHERE b BETWEEN 100 AND 300 ORDER BY a DESC LIMIT 3")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(30)],
                vec![Value::Int(29)],
                vec![Value::Int(28)]
            ]
        );
    }

    #[test]
    fn update_and_delete() {
        let mut db = db_with_data();
        let r = db.execute("UPDATE t SET b = 0 WHERE a < 10").unwrap();
        assert_eq!(r.affected, 10);
        let r = db.execute("SELECT COUNT(*) FROM t WHERE b = 0").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(10)]]);
        let r = db.execute("DELETE FROM t WHERE a >= 50").unwrap();
        assert_eq!(r.affected, 50);
        assert_eq!(db.row_count("t"), Some(50));
    }

    #[test]
    fn like_prefix() {
        let mut db = db_with_data();
        let r = db
            .execute("SELECT COUNT(*) FROM t WHERE c LIKE 'row 1%'")
            .unwrap();
        // 'row 1', 'row 10'..'row 19' -> 11 rows.
        assert_eq!(r.rows, vec![vec![Value::Int(11)]]);
    }

    #[test]
    fn sum_and_avg() {
        let mut db = db_with_data();
        let r = db.execute("SELECT SUM(a) FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(4950)]]);
        let r = db.execute("SELECT MIN(b), MAX(b) FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0), Value::Int(990)]]);
    }

    #[test]
    fn index_used_for_point_query() {
        let mut db = db_with_data();
        db.execute("CREATE INDEX ib ON t(b)").unwrap();
        let r = db.execute("SELECT a FROM t WHERE b = 990").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
        // Index stays consistent across updates.
        db.execute("UPDATE t SET b = 991 WHERE a = 99").unwrap();
        let r = db.execute("SELECT a FROM t WHERE b = 991").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(99)]]);
        let r = db.execute("SELECT a FROM t WHERE b = 990").unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn transactions_are_accepted() {
        let mut db = Database::new();
        db.execute("BEGIN").unwrap();
        db.execute("CREATE TABLE x(a INT)").unwrap();
        db.execute("COMMIT").unwrap();
    }

    #[test]
    fn drop_table() {
        let mut db = db_with_data();
        db.execute("DROP TABLE t").unwrap();
        assert!(matches!(
            db.execute("SELECT a FROM t"),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn errors_are_reported() {
        let mut db = Database::new();
        assert!(matches!(
            db.execute("SELECT x FROM missing"),
            Err(DbError::NoSuchTable(_))
        ));
        db.execute("CREATE TABLE t(a INT)").unwrap();
        assert!(matches!(
            db.execute("SELECT nope FROM t"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            db.execute("INSERT INTO t VALUES (1, 2)"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.execute("FLY ME TO THE MOON"),
            Err(DbError::Syntax(_))
        ));
    }

    #[test]
    fn text_ordering() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(c TEXT)").unwrap();
        for name in ["banana", "apple", "cherry"] {
            db.execute(&format!("INSERT INTO t VALUES ('{name}')"))
                .unwrap();
        }
        let r = db.execute("SELECT c FROM t ORDER BY c").unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Text("apple".into())],
                vec![Value::Text("banana".into())],
                vec![Value::Text("cherry".into())]
            ]
        );
    }

    #[test]
    fn prepared_statement_reuse() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t(a INT)").unwrap();
        let stmt = parse("INSERT INTO t VALUES (7)").unwrap();
        for _ in 0..10 {
            db.execute_statement(&stmt).unwrap();
        }
        assert_eq!(db.row_count("t"), Some(10));
    }
}

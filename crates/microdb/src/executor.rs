//! Statement execution: planning (index selection) and evaluation.

use std::cmp::Ordering;
use std::ops::Bound;

use crate::parser::{CmpOp, Predicate, SelectItem, SetExpr, Statement};
use crate::storage::{IndexKey, Table, Value};
use crate::{Database, DbError};

/// The result of executing a statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected (INSERT/UPDATE/DELETE).
    pub affected: usize,
}

pub(crate) fn execute(db: &mut Database, stmt: &Statement) -> Result<QueryResult, DbError> {
    match stmt {
        Statement::Transaction => Ok(QueryResult::default()),
        Statement::CreateTable {
            name,
            columns,
            types,
        } => {
            db.insert_table(Table::new(name.clone(), columns.clone(), types.clone()))?;
            Ok(QueryResult::default())
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            let t = db.table_mut(table)?;
            let col = t
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
            if t.indexes.iter().any(|i| i.name == *name) {
                return Err(DbError::AlreadyExists(name.clone()));
            }
            t.create_index(name.clone(), col);
            Ok(QueryResult::default())
        }
        Statement::DropTable { name } => {
            db.drop_table(name)?;
            Ok(QueryResult::default())
        }
        Statement::Insert { table, rows } => {
            let t = db.table_mut(table)?;
            for row in rows {
                if row.len() != t.columns.len() {
                    return Err(DbError::ArityMismatch {
                        expected: t.columns.len(),
                        got: row.len(),
                    });
                }
                t.insert(row.clone());
            }
            Ok(QueryResult {
                rows: Vec::new(),
                affected: rows.len(),
            })
        }
        Statement::Select {
            items,
            table,
            predicate,
            order_by,
            limit,
        } => select(
            db,
            items,
            table,
            predicate.as_ref(),
            order_by.as_ref(),
            *limit,
        ),
        Statement::Update {
            table,
            sets,
            predicate,
        } => {
            let t = db.table_mut(table)?;
            let matching = matching_rows(t, predicate.as_ref())?;
            // Resolve assignments to column positions first.
            let resolved: Vec<(usize, &SetExpr)> = sets
                .iter()
                .map(|(col, expr)| {
                    t.column_index(col)
                        .map(|i| (i, expr))
                        .ok_or_else(|| DbError::NoSuchColumn(col.clone()))
                })
                .collect::<Result<_, _>>()?;
            for row_id in &matching {
                for (col, expr) in &resolved {
                    let new_value = eval_set_expr(t, *row_id, expr)?;
                    t.update_cell(*row_id, *col, new_value);
                }
            }
            Ok(QueryResult {
                rows: Vec::new(),
                affected: matching.len(),
            })
        }
        Statement::Delete { table, predicate } => {
            let t = db.table_mut(table)?;
            let matching = matching_rows(t, predicate.as_ref())?;
            for row_id in &matching {
                t.delete(*row_id);
            }
            Ok(QueryResult {
                rows: Vec::new(),
                affected: matching.len(),
            })
        }
    }
}

fn eval_set_expr(t: &Table, row_id: usize, expr: &SetExpr) -> Result<Value, DbError> {
    let row = t.rows[row_id].as_ref().expect("matched rows are live");
    Ok(match expr {
        SetExpr::Literal(v) => v.clone(),
        SetExpr::Column(name) => {
            let i = t
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            row[i].clone()
        }
        SetExpr::Arith { column, op, value } => {
            let i = t
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
            arith(&row[i], *op, value)?
        }
    })
}

fn arith(a: &Value, op: char, b: &Value) -> Result<Value, DbError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(match op {
            '+' => x.wrapping_add(*y),
            '-' => x.wrapping_sub(*y),
            '*' => x.wrapping_mul(*y),
            '/' => {
                if *y == 0 {
                    return Ok(Value::Null);
                }
                x / y
            }
            _ => unreachable!("parser restricts ops"),
        })),
        (Value::Real(_) | Value::Int(_), Value::Real(_) | Value::Int(_)) => {
            let x = as_f64(a);
            let y = as_f64(b);
            Ok(Value::Real(match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '/' => x / y,
                _ => unreachable!("parser restricts ops"),
            }))
        }
        _ => Err(DbError::TypeError(format!(
            "cannot apply '{op}' to {a} and {b}"
        ))),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(x) => *x as f64,
        Value::Real(x) => *x,
        _ => f64::NAN,
    }
}

/// Collects the row ids matching a predicate, using an index when one
/// covers the (single) equality/range/prefix term on an indexed column.
fn matching_rows(t: &Table, predicate: Option<&Predicate>) -> Result<Vec<usize>, DbError> {
    let Some(pred) = predicate else {
        return Ok(t.iter_live().map(|(id, _)| id).collect());
    };

    // Try an index for the outermost term.
    if let Some(candidates) = index_candidates(t, pred)? {
        let mut out = Vec::with_capacity(candidates.len());
        for id in candidates {
            if let Some(row) = t.rows[id].as_ref() {
                if eval_predicate(t, row, pred)? {
                    out.push(id);
                }
            }
        }
        return Ok(out);
    }

    let mut out = Vec::new();
    for (id, row) in t.iter_live() {
        if eval_predicate(t, row, pred)? {
            out.push(id);
        }
    }
    Ok(out)
}

/// If some term of the predicate can be answered by an index, return the
/// candidate row ids from it (a superset filter).
fn index_candidates(t: &Table, pred: &Predicate) -> Result<Option<Vec<usize>>, DbError> {
    match pred {
        Predicate::Compare { column, op, value } => {
            let Some(col) = t.column_index(column) else {
                return Err(DbError::NoSuchColumn(column.clone()));
            };
            let Some(index) = t.index_on(col) else {
                return Ok(None);
            };
            let key = IndexKey(value.clone());
            let ids: Vec<usize> = match op {
                CmpOp::Eq => index.map.get(&key).cloned().unwrap_or_default(),
                CmpOp::Lt => index
                    .map
                    .range((Bound::Unbounded, Bound::Excluded(key)))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect(),
                CmpOp::Le => index
                    .map
                    .range((Bound::Unbounded, Bound::Included(key)))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect(),
                CmpOp::Gt => index
                    .map
                    .range((Bound::Excluded(key), Bound::Unbounded))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect(),
                CmpOp::Ge => index
                    .map
                    .range((Bound::Included(key), Bound::Unbounded))
                    .flat_map(|(_, v)| v.iter().copied())
                    .collect(),
                CmpOp::Ne => return Ok(None),
            };
            Ok(Some(ids))
        }
        Predicate::Between { column, lo, hi } => {
            let Some(col) = t.column_index(column) else {
                return Err(DbError::NoSuchColumn(column.clone()));
            };
            let Some(index) = t.index_on(col) else {
                return Ok(None);
            };
            let ids = index
                .map
                .range((
                    Bound::Included(IndexKey(lo.clone())),
                    Bound::Included(IndexKey(hi.clone())),
                ))
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            Ok(Some(ids))
        }
        Predicate::And(a, b) => {
            if let Some(ids) = index_candidates(t, a)? {
                return Ok(Some(ids));
            }
            index_candidates(t, b)
        }
        Predicate::LikePrefix { .. } => Ok(None),
    }
}

fn eval_predicate(t: &Table, row: &[Value], pred: &Predicate) -> Result<bool, DbError> {
    match pred {
        Predicate::Compare { column, op, value } => {
            let col = t
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
            let cell = &row[col];
            if matches!(cell, Value::Null) || matches!(value, Value::Null) {
                return Ok(false);
            }
            let ord = cell.compare(value);
            Ok(match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            })
        }
        Predicate::Between { column, lo, hi } => {
            let col = t
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
            let cell = &row[col];
            if matches!(cell, Value::Null) {
                return Ok(false);
            }
            Ok(cell.compare(lo) != Ordering::Less && cell.compare(hi) != Ordering::Greater)
        }
        Predicate::LikePrefix { column, prefix } => {
            let col = t
                .column_index(column)
                .ok_or_else(|| DbError::NoSuchColumn(column.clone()))?;
            match &row[col] {
                Value::Text(s) => Ok(s.starts_with(prefix)),
                _ => Ok(false),
            }
        }
        Predicate::And(a, b) => Ok(eval_predicate(t, row, a)? && eval_predicate(t, row, b)?),
    }
}

#[allow(clippy::too_many_arguments)]
fn select(
    db: &Database,
    items: &[SelectItem],
    table: &str,
    predicate: Option<&Predicate>,
    order_by: Option<&(String, bool)>,
    limit: Option<usize>,
) -> Result<QueryResult, DbError> {
    let t = db.table(table)?;
    let mut row_ids = matching_rows(t, predicate)?;

    let is_aggregate = items.iter().any(SelectItem::is_aggregate);
    if is_aggregate {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(aggregate(t, &row_ids, item)?);
        }
        return Ok(QueryResult {
            rows: vec![out],
            affected: 0,
        });
    }

    if let Some((col, desc)) = order_by {
        let c = t
            .column_index(col)
            .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
        row_ids.sort_by(|a, b| {
            let ra = t.rows[*a].as_ref().expect("live");
            let rb = t.rows[*b].as_ref().expect("live");
            let ord = ra[c].compare(&rb[c]);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    } else {
        row_ids.sort_unstable(); // deterministic scan order
    }

    if let Some(n) = limit {
        row_ids.truncate(n);
    }

    // Resolve output columns.
    let mut cols = Vec::new();
    for item in items {
        let SelectItem::Column(name) = item else {
            unreachable!("aggregates handled above")
        };
        if name == "*" {
            cols.extend(0..t.columns.len());
        } else {
            cols.push(
                t.column_index(name)
                    .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?,
            );
        }
    }

    let rows = row_ids
        .iter()
        .map(|id| {
            let row = t.rows[*id].as_ref().expect("live");
            cols.iter().map(|c| row[*c].clone()).collect()
        })
        .collect();
    Ok(QueryResult { rows, affected: 0 })
}

fn aggregate(t: &Table, row_ids: &[usize], item: &SelectItem) -> Result<Value, DbError> {
    let col_of = |name: &str| {
        t.column_index(name)
            .ok_or_else(|| DbError::NoSuchColumn(name.to_string()))
    };
    Ok(match item {
        SelectItem::CountStar => Value::Int(row_ids.len() as i64),
        SelectItem::Column(name) => {
            // Mixed aggregate/plain select: take the first row's value
            // (SQLite's bare-column behaviour).
            let c = col_of(name)?;
            row_ids
                .first()
                .and_then(|id| t.rows[*id].as_ref())
                .map_or(Value::Null, |r| r[c].clone())
        }
        SelectItem::Sum(name) => {
            let c = col_of(name)?;
            let mut int_sum = 0i64;
            let mut real_sum = 0.0f64;
            let mut any_real = false;
            let mut any = false;
            for id in row_ids {
                match &t.rows[*id].as_ref().expect("live")[c] {
                    Value::Int(v) => {
                        int_sum = int_sum.wrapping_add(*v);
                        any = true;
                    }
                    Value::Real(v) => {
                        real_sum += v;
                        any_real = true;
                        any = true;
                    }
                    _ => {}
                }
            }
            if !any {
                Value::Null
            } else if any_real {
                Value::Real(real_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            }
        }
        SelectItem::Avg(name) => {
            let c = col_of(name)?;
            let vals: Vec<f64> = row_ids
                .iter()
                .filter_map(|id| match &t.rows[*id].as_ref().expect("live")[c] {
                    Value::Int(v) => Some(*v as f64),
                    Value::Real(v) => Some(*v),
                    _ => None,
                })
                .collect();
            if vals.is_empty() {
                Value::Null
            } else {
                Value::Real(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        }
        SelectItem::Min(name) => extremum(t, row_ids, col_of(name)?, Ordering::Less),
        SelectItem::Max(name) => extremum(t, row_ids, col_of(name)?, Ordering::Greater),
    })
}

fn extremum(t: &Table, row_ids: &[usize], col: usize, want: Ordering) -> Value {
    let mut best: Option<Value> = None;
    for id in row_ids {
        let v = &t.rows[*id].as_ref().expect("live")[col];
        if matches!(v, Value::Null) {
            continue;
        }
        match &best {
            None => best = Some(v.clone()),
            Some(b) if v.compare(b) == want => best = Some(v.clone()),
            _ => {}
        }
    }
    best.unwrap_or(Value::Null)
}

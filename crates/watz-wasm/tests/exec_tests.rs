//! Execution tests: semantics of the interpreter and AOT modes, traps,
//! host imports, and interp/AOT differential checks.

use watz_wasm::builder::ModuleBuilder;
use watz_wasm::exec::{ExecMode, HostEnv, Instance, Memory, NoHost, Trap, Value};
use watz_wasm::instr::{Instr, MemArg};
use watz_wasm::types::{BlockType, ValType};
use watz_wasm::Module;

fn build(f: impl FnOnce(&mut ModuleBuilder)) -> Module {
    let mut b = ModuleBuilder::new();
    f(&mut b);
    let bytes = b.build();
    watz_wasm::load(&bytes).expect("module must load")
}

/// Bit-exact value comparison (NaN == NaN when the bits match).
fn values_bit_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::F32(x), Value::F32(y)) => x.to_bits() == y.to_bits(),
            (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        })
}

fn run_both(module: &Module, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
    let mut aot = Instance::instantiate(module, ExecMode::Aot, &mut NoHost)?;
    let mut interp = Instance::instantiate(module, ExecMode::Interpreted, &mut NoHost)?;
    let r_aot = aot.invoke(&mut NoHost, name, args);
    let r_interp = interp.invoke(&mut NoHost, name, args);
    match (&r_aot, &r_interp) {
        (Ok(a), Ok(b)) => assert!(values_bit_eq(a, b), "mode divergence on '{name}'"),
        (a, b) => assert_eq!(a, b, "mode divergence on '{name}'"),
    }
    r_aot
}

#[test]
fn constant_function() {
    let m = build(|b| {
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(ty, &[], vec![Instr::I32Const(42), Instr::End]);
        b.export_func("f", f);
    });
    assert_eq!(run_both(&m, "f", &[]).unwrap(), vec![Value::I32(42)]);
}

#[test]
fn arithmetic_expression() {
    // (a + b) * (a - b) over i64.
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I64, ValType::I64], &[ValType::I64]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Add,
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Sub,
                Instr::I64Mul,
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[Value::I64(10), Value::I64(3)]).unwrap(),
        vec![Value::I64(91)]
    );
}

#[test]
fn loop_sums_to_n() {
    // for (i = 0, acc = 0; i < n; i++) acc += i; return acc.
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32, ValType::I32], // locals: i, acc
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Loop(BlockType::Empty),
                // if i >= n break
                Instr::LocalGet(1),
                Instr::LocalGet(0),
                Instr::I32GeS,
                Instr::BrIf(1),
                // acc += i
                Instr::LocalGet(2),
                Instr::LocalGet(1),
                Instr::I32Add,
                Instr::LocalSet(2),
                // i += 1
                Instr::LocalGet(1),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalSet(1),
                Instr::Br(0),
                Instr::End,
                Instr::End,
                Instr::LocalGet(2),
                Instr::End,
            ],
        );
        b.export_func("sum", f);
    });
    assert_eq!(
        run_both(&m, "sum", &[Value::I32(100)]).unwrap(),
        vec![Value::I32(4950)]
    );
    assert_eq!(
        run_both(&m, "sum", &[Value::I32(0)]).unwrap(),
        vec![Value::I32(0)]
    );
}

#[test]
fn recursive_fibonacci() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32LtS,
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::LocalGet(0),
                Instr::Else,
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Sub,
                Instr::Call(0),
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32Sub,
                Instr::Call(0),
                Instr::I32Add,
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("fib", f);
    });
    assert_eq!(
        run_both(&m, "fib", &[Value::I32(15)]).unwrap(),
        vec![Value::I32(610)]
    );
}

#[test]
fn if_without_else() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                Instr::I32Const(10),
                Instr::LocalSet(1),
                Instr::LocalGet(0),
                Instr::If(BlockType::Empty),
                Instr::I32Const(20),
                Instr::LocalSet(1),
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[Value::I32(1)]).unwrap(),
        vec![Value::I32(20)]
    );
    assert_eq!(
        run_both(&m, "f", &[Value::I32(0)]).unwrap(),
        vec![Value::I32(10)]
    );
}

#[test]
fn br_table_dispatch() {
    // switch(x) { case 0: 100; case 1: 200; default: 300 }
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::Block(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::BrTable {
                    targets: vec![0, 1],
                    default: 2,
                },
                Instr::End,
                Instr::I32Const(100),
                Instr::LocalSet(1),
                Instr::Br(1),
                Instr::End,
                Instr::I32Const(200),
                Instr::LocalSet(1),
                Instr::Br(0),
                Instr::End,
                Instr::LocalGet(1),
                Instr::If(BlockType::Empty),
                Instr::Else,
                Instr::I32Const(300),
                Instr::LocalSet(1),
                Instr::End,
                Instr::LocalGet(1),
                Instr::End,
            ],
        );
        b.export_func("switch", f);
    });
    assert_eq!(
        run_both(&m, "switch", &[Value::I32(0)]).unwrap(),
        vec![Value::I32(100)]
    );
    assert_eq!(
        run_both(&m, "switch", &[Value::I32(1)]).unwrap(),
        vec![Value::I32(200)]
    );
    assert_eq!(
        run_both(&m, "switch", &[Value::I32(9)]).unwrap(),
        vec![Value::I32(300)]
    );
}

#[test]
fn memory_load_store_roundtrip() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32, ValType::I64], &[ValType::I64]);
        b.add_memory(1, None);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I64Store(MemArg::align(3)),
                Instr::LocalGet(0),
                Instr::I64Load(MemArg::align(3)),
                Instr::End,
            ],
        );
        b.export_func("rt", f);
    });
    assert_eq!(
        run_both(&m, "rt", &[Value::I32(128), Value::I64(-12345678901234)]).unwrap(),
        vec![Value::I64(-12345678901234)]
    );
}

#[test]
fn narrow_loads_sign_and_zero_extend() {
    let m = build(|b| {
        b.add_memory(1, None);
        let ty = b.add_type(&[], &[ValType::I32, ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                // store 0xFF at address 0
                Instr::I32Const(0),
                Instr::I32Const(0xff),
                Instr::I32Store8(MemArg::align(0)),
                Instr::I32Const(0),
                Instr::I32Load8S(MemArg::align(0)),
                Instr::I32Const(0),
                Instr::I32Load8U(MemArg::align(0)),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[]).unwrap(),
        vec![Value::I32(-1), Value::I32(255)]
    );
}

#[test]
fn oob_load_traps() {
    let m = build(|b| {
        b.add_memory(1, Some(1));
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32Load(MemArg::align(2)),
                Instr::End,
            ],
        );
        b.export_func("peek", f);
    });
    assert_eq!(
        run_both(&m, "peek", &[Value::I32(65533)]),
        Err(Trap::MemoryOutOfBounds)
    );
    assert_eq!(
        run_both(&m, "peek", &[Value::I32(-4)]),
        Err(Trap::MemoryOutOfBounds)
    );
    // Last valid word.
    assert!(run_both(&m, "peek", &[Value::I32(65532)]).is_ok());
}

#[test]
fn division_traps() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32DivS,
                Instr::End,
            ],
        );
        b.export_func("div", f);
    });
    assert_eq!(
        run_both(&m, "div", &[Value::I32(1), Value::I32(0)]),
        Err(Trap::DivisionByZero)
    );
    assert_eq!(
        run_both(&m, "div", &[Value::I32(i32::MIN), Value::I32(-1)]),
        Err(Trap::IntegerOverflow)
    );
    assert_eq!(
        run_both(&m, "div", &[Value::I32(-7), Value::I32(2)]).unwrap(),
        vec![Value::I32(-3)]
    );
}

#[test]
fn rem_min_by_minus_one_is_zero() {
    let m = build(|b| {
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::I32Const(i32::MIN),
                Instr::I32Const(-1),
                Instr::I32RemS,
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(run_both(&m, "f", &[]).unwrap(), vec![Value::I32(0)]);
}

#[test]
fn unreachable_traps() {
    let m = build(|b| {
        let ty = b.add_type(&[], &[]);
        let f = b.add_func(ty, &[], vec![Instr::Unreachable, Instr::End]);
        b.export_func("boom", f);
    });
    assert_eq!(run_both(&m, "boom", &[]), Err(Trap::Unreachable));
}

#[test]
fn float_trunc_traps_on_nan_and_range() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::F64], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![Instr::LocalGet(0), Instr::I32TruncF64S, Instr::End],
        );
        b.export_func("t", f);
    });
    assert_eq!(
        run_both(&m, "t", &[Value::F64(f64::NAN)]),
        Err(Trap::BadConversion)
    );
    assert_eq!(
        run_both(&m, "t", &[Value::F64(3e10)]),
        Err(Trap::BadConversion)
    );
    assert_eq!(
        run_both(&m, "t", &[Value::F64(-3.99)]).unwrap(),
        vec![Value::I32(-3)]
    );
}

#[test]
fn float_min_max_nan_semantics() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::F64, ValType::F64], &[ValType::F64]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::F64Min,
                Instr::End,
            ],
        );
        b.export_func("min", f);
    });
    let r = run_both(&m, "min", &[Value::F64(1.0), Value::F64(f64::NAN)]).unwrap();
    match r[0] {
        Value::F64(v) => assert!(v.is_nan()),
        _ => panic!("expected f64"),
    }
    // min(-0.0, 0.0) == -0.0
    let r = run_both(&m, "min", &[Value::F64(-0.0), Value::F64(0.0)]).unwrap();
    match r[0] {
        Value::F64(v) => assert!(v.is_sign_negative() && v == 0.0),
        _ => panic!("expected f64"),
    }
}

#[test]
fn call_indirect_dispatch() {
    let m = build(|b| {
        let ty_i2i = b.add_type(&[ValType::I32], &[ValType::I32]);
        let ty_sel = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let double = b.add_func(
            ty_i2i,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32Const(2),
                Instr::I32Mul,
                Instr::End,
            ],
        );
        let square = b.add_func(
            ty_i2i,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(0),
                Instr::I32Mul,
                Instr::End,
            ],
        );
        let dispatch = b.add_func(
            ty_sel,
            &[],
            vec![
                Instr::LocalGet(1), // argument
                Instr::LocalGet(0), // table index
                Instr::CallIndirect {
                    type_idx: ty_i2i,
                    table: 0,
                },
                Instr::End,
            ],
        );
        b.add_table(4, Some(4));
        b.add_elems(0, &[double, square]);
        b.export_func("dispatch", dispatch);
    });
    assert_eq!(
        run_both(&m, "dispatch", &[Value::I32(0), Value::I32(21)]).unwrap(),
        vec![Value::I32(42)]
    );
    assert_eq!(
        run_both(&m, "dispatch", &[Value::I32(1), Value::I32(7)]).unwrap(),
        vec![Value::I32(49)]
    );
    // Null slot.
    assert_eq!(
        run_both(&m, "dispatch", &[Value::I32(3), Value::I32(7)]),
        Err(Trap::UndefinedTableElement)
    );
    // Out of table bounds.
    assert_eq!(
        run_both(&m, "dispatch", &[Value::I32(100), Value::I32(7)]),
        Err(Trap::TableOutOfBounds)
    );
}

#[test]
fn call_indirect_type_mismatch() {
    let m = build(|b| {
        let ty_v = b.add_type(&[], &[]);
        let ty_i = b.add_type(&[], &[ValType::I32]);
        let nothing = b.add_func(ty_v, &[], vec![Instr::End]);
        let call = b.add_func(
            ty_i,
            &[],
            vec![
                Instr::I32Const(0),
                Instr::CallIndirect {
                    type_idx: ty_i,
                    table: 0,
                },
                Instr::End,
            ],
        );
        b.add_table(1, Some(1));
        b.add_elems(0, &[nothing]);
        b.export_func("call", call);
    });
    assert_eq!(run_both(&m, "call", &[]), Err(Trap::IndirectTypeMismatch));
}

#[test]
fn infinite_recursion_exhausts_stack() {
    let m = build(|b| {
        let ty = b.add_type(&[], &[]);
        let f = b.add_func(ty, &[], vec![Instr::Call(0), Instr::End]);
        b.export_func("loop", f);
    });
    assert_eq!(run_both(&m, "loop", &[]), Err(Trap::CallStackExhausted));
}

#[test]
fn memory_grow_and_size() {
    let m = build(|b| {
        b.add_memory(1, Some(3));
        let ty = b.add_type(&[], &[ValType::I32, ValType::I32, ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::MemorySize, // 1
                Instr::I32Const(1),
                Instr::MemoryGrow, // returns old size 1
                Instr::I32Const(5),
                Instr::MemoryGrow, // exceeds max -> -1
                Instr::End,
            ],
        );
        b.export_func("grow", f);
    });
    assert_eq!(
        run_both(&m, "grow", &[]).unwrap(),
        vec![Value::I32(1), Value::I32(1), Value::I32(-1)]
    );
}

#[test]
fn bulk_memory_ops() {
    let m = build(|b| {
        b.add_memory(1, None);
        b.add_data(0, b"0123456789");
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                // copy "0123456789" to offset 100
                Instr::I32Const(100),
                Instr::I32Const(0),
                Instr::I32Const(10),
                Instr::MemoryCopy,
                // fill offset 100..105 with 'x'
                Instr::I32Const(100),
                Instr::I32Const(i32::from(b'x')),
                Instr::I32Const(5),
                Instr::MemoryFill,
                // read byte at 105 (should be '5')
                Instr::I32Const(105),
                Instr::I32Load8U(MemArg::align(0)),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[]).unwrap(),
        vec![Value::I32(i32::from(b'5'))]
    );
}

#[test]
fn globals_mutate() {
    let m = build(|b| {
        b.add_global(ValType::I64, true, Instr::I64Const(5));
        let ty = b.add_type(&[], &[ValType::I64]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::GlobalGet(0),
                Instr::I64Const(10),
                Instr::I64Mul,
                Instr::GlobalSet(0),
                Instr::GlobalGet(0),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut NoHost).unwrap();
    assert_eq!(
        inst.invoke(&mut NoHost, "f", &[]).unwrap(),
        vec![Value::I64(50)]
    );
    // Second call sees the mutated global.
    assert_eq!(
        inst.invoke(&mut NoHost, "f", &[]).unwrap(),
        vec![Value::I64(500)]
    );
}

#[test]
fn start_function_runs_at_instantiation() {
    let m = build(|b| {
        b.add_global(ValType::I32, true, Instr::I32Const(0));
        let ty_v = b.add_type(&[], &[]);
        let ty_i = b.add_type(&[], &[ValType::I32]);
        let start = b.add_func(
            ty_v,
            &[],
            vec![Instr::I32Const(99), Instr::GlobalSet(0), Instr::End],
        );
        let get = b.add_func(ty_i, &[], vec![Instr::GlobalGet(0), Instr::End]);
        b.set_start(start);
        b.export_func("get", get);
    });
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut NoHost).unwrap();
    assert_eq!(
        inst.invoke(&mut NoHost, "get", &[]).unwrap(),
        vec![Value::I32(99)]
    );
}

/// Host environment recording calls and returning canned values.
struct Recorder {
    log: Vec<(String, Vec<Value>)>,
}

impl HostEnv for Recorder {
    fn call(
        &mut self,
        module: &str,
        name: &str,
        memory: &mut Memory,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        self.log.push((format!("{module}.{name}"), args.to_vec()));
        match name {
            "magic" => Ok(vec![Value::I32(1234)]),
            "poke" => {
                memory.write_bytes(args[0].as_u32(), b"host was here")?;
                Ok(vec![])
            }
            _ => Err(Trap::Host(format!("unknown host fn {name}"))),
        }
    }
}

#[test]
fn host_import_called_with_args() {
    let m = build(|b| {
        let ty_magic = b.add_type(&[], &[ValType::I32]);
        let ty_main = b.add_type(&[], &[ValType::I32]);
        let magic = b.import_func("env", "magic", ty_magic);
        let f = b.add_func(ty_main, &[], vec![Instr::Call(magic), Instr::End]);
        b.export_func("main", f);
    });
    let mut host = Recorder { log: vec![] };
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut host).unwrap();
    let out = inst.invoke(&mut host, "main", &[]).unwrap();
    assert_eq!(out, vec![Value::I32(1234)]);
    assert_eq!(host.log.len(), 1);
    assert_eq!(host.log[0].0, "env.magic");
}

#[test]
fn host_import_writes_guest_memory() {
    let m = build(|b| {
        let ty_poke = b.add_type(&[ValType::I32], &[]);
        let ty_main = b.add_type(&[], &[ValType::I32]);
        let poke = b.import_func("env", "poke", ty_poke);
        b.add_memory(1, None);
        let f = b.add_func(
            ty_main,
            &[],
            vec![
                Instr::I32Const(64),
                Instr::Call(poke),
                Instr::I32Const(64),
                Instr::I32Load8U(MemArg::align(0)),
                Instr::End,
            ],
        );
        b.export_func("main", f);
    });
    let mut host = Recorder { log: vec![] };
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut host).unwrap();
    let out = inst.invoke(&mut host, "main", &[]).unwrap();
    assert_eq!(out, vec![Value::I32(i32::from(b'h'))]);
}

#[test]
fn unresolved_import_traps() {
    let m = build(|b| {
        let ty = b.add_type(&[], &[]);
        let imp = b.import_func("env", "missing", ty);
        let f = b.add_func(ty, &[], vec![Instr::Call(imp), Instr::End]);
        b.export_func("main", f);
    });
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut NoHost).unwrap();
    assert!(matches!(
        inst.invoke(&mut NoHost, "main", &[]),
        Err(Trap::UnresolvedImport { .. })
    ));
}

#[test]
fn invoke_argument_validation() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(ty, &[], vec![Instr::LocalGet(0), Instr::End]);
        b.export_func("id", f);
    });
    let mut inst = Instance::instantiate(&m, ExecMode::Aot, &mut NoHost).unwrap();
    assert!(inst.invoke(&mut NoHost, "id", &[]).is_err());
    assert!(inst.invoke(&mut NoHost, "id", &[Value::I64(3)]).is_err());
    assert!(inst.invoke(&mut NoHost, "nope", &[]).is_err());
    assert!(inst.invoke(&mut NoHost, "id", &[Value::I32(3)]).is_ok());
}

#[test]
fn nested_blocks_with_values() {
    // block (result i32) { 1 + block (result i32) { 2 + block { br 1 } ... } }
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::Block(BlockType::Value(ValType::I32)),
                Instr::LocalGet(0),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(11),
                Instr::Br(1), // carries 11 out of the outer block
                Instr::Else,
                Instr::I32Const(22),
                Instr::End,
                Instr::I32Const(100),
                Instr::I32Add,
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[Value::I32(1)]).unwrap(),
        vec![Value::I32(11)]
    );
    assert_eq!(
        run_both(&m, "f", &[Value::I32(0)]).unwrap(),
        vec![Value::I32(122)]
    );
}

#[test]
fn select_picks_correctly() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::F64]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::F64Const(1.25),
                Instr::F64Const(-9.5),
                Instr::LocalGet(0),
                Instr::Select,
                Instr::End,
            ],
        );
        b.export_func("sel", f);
    });
    assert_eq!(
        run_both(&m, "sel", &[Value::I32(1)]).unwrap(),
        vec![Value::F64(1.25)]
    );
    assert_eq!(
        run_both(&m, "sel", &[Value::I32(0)]).unwrap(),
        vec![Value::F64(-9.5)]
    );
}

#[test]
fn shift_masking() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32Shl,
                Instr::End,
            ],
        );
        b.export_func("shl", f);
    });
    // Shift amounts are taken mod 32.
    assert_eq!(
        run_both(&m, "shl", &[Value::I32(1), Value::I32(33)]).unwrap(),
        vec![Value::I32(2)]
    );
}

#[test]
fn sign_extension_ops() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![Instr::LocalGet(0), Instr::I32Extend8S, Instr::End],
        );
        b.export_func("ext8", f);
    });
    assert_eq!(
        run_both(&m, "ext8", &[Value::I32(0x80)]).unwrap(),
        vec![Value::I32(-128)]
    );
    assert_eq!(
        run_both(&m, "ext8", &[Value::I32(0x7f)]).unwrap(),
        vec![Value::I32(127)]
    );
}

#[test]
fn reinterpret_bit_patterns() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::F64], &[ValType::I64]);
        let f = b.add_func(
            ty,
            &[],
            vec![Instr::LocalGet(0), Instr::I64ReinterpretF64, Instr::End],
        );
        b.export_func("bits", f);
    });
    assert_eq!(
        run_both(&m, "bits", &[Value::F64(1.0)]).unwrap(),
        vec![Value::I64(0x3ff0000000000000)]
    );
}

#[test]
fn multi_return_function() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32, ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Add,
                Instr::LocalGet(0),
                Instr::I32Const(1),
                Instr::I32Sub,
                Instr::End,
            ],
        );
        b.export_func("pm", f);
    });
    assert_eq!(
        run_both(&m, "pm", &[Value::I32(10)]).unwrap(),
        vec![Value::I32(11), Value::I32(9)]
    );
}

#[test]
fn early_return_from_nested_control() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::If(BlockType::Empty),
                Instr::I32Const(77),
                Instr::Return,
                Instr::End,
                Instr::Br(1),
                Instr::End,
                Instr::End,
                Instr::I32Const(-1),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[Value::I32(1)]).unwrap(),
        vec![Value::I32(77)]
    );
}

#[test]
fn data_segments_initialize_memory() {
    let m = build(|b| {
        b.add_memory(1, None);
        b.add_data(16, b"\x2a\x00\x00\x00");
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::I32Const(16),
                Instr::I32Load(MemArg::align(2)),
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(run_both(&m, "f", &[]).unwrap(), vec![Value::I32(42)]);
}

#[test]
fn oob_data_segment_fails_instantiation() {
    let m = build(|b| {
        b.add_memory(1, Some(1));
        b.add_data(65534, b"overruns");
        let ty = b.add_type(&[], &[]);
        let f = b.add_func(ty, &[], vec![Instr::End]);
        b.export_func("f", f);
    });
    assert!(matches!(
        Instance::instantiate(&m, ExecMode::Aot, &mut NoHost),
        Err(Trap::Instantiation(_))
    ));
}

#[test]
fn rotate_ops() {
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::I32Rotl,
                Instr::End,
            ],
        );
        b.export_func("rotl", f);
    });
    assert_eq!(
        run_both(
            &m,
            "rotl",
            &[Value::I32(0x8000_0001u32 as i32), Value::I32(1)]
        )
        .unwrap(),
        vec![Value::I32(3)]
    );
}

#[test]
fn loop_with_result_via_block_param_style() {
    // A loop that accumulates and exits with br_if carrying a block value.
    let m = build(|b| {
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                Instr::Block(BlockType::Value(ValType::I32)),
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(1),
                Instr::I32Const(2),
                Instr::I32Add,
                Instr::LocalTee(1),
                Instr::LocalGet(0),
                Instr::I32GeS,
                Instr::If(BlockType::Empty),
                Instr::LocalGet(1),
                Instr::Br(2),
                Instr::End,
                Instr::Br(0),
                Instr::End,
                Instr::Unreachable,
                Instr::End,
                Instr::End,
            ],
        );
        b.export_func("f", f);
    });
    assert_eq!(
        run_both(&m, "f", &[Value::I32(7)]).unwrap(),
        vec![Value::I32(8)]
    );
}

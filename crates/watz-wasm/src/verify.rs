//! Independent verifier for the lowered IRs.
//!
//! Every compiled module can be re-checked, opcode by opcode, against the
//! invariants the engines rely on — **without reusing any lowering
//! code**. The verifier keeps its own stack-effect table for the flat IR
//! and its own read/write model for the register IR, so a bug in the
//! lowering (or a hostile mutation of a lowered body) is caught by a
//! second, structurally different derivation of the same facts.
//!
//! # Flat-form invariants
//!
//! An abstract interpretation over [`crate::flat::FlatOp`] computes the
//! operand-stack height at every reachable pc (a worklist fixpoint, since
//! branches can join):
//!
//! - every jump target is in bounds and every edge into a pc agrees on
//!   the entry height;
//! - `Br`/`BrIf`/`br_table` `keep`/`height` immediates fit the abstract
//!   stack (`keep <= h`, `height + keep <= h`);
//! - `br_table` entry lists are non-empty (the dispatch loops index
//!   `entries[i.min(len - 1)]`);
//! - no opcode pops below an empty stack; `Return` finds `n_results`
//!   values; the body cannot fall off the end past a non-terminator;
//! - every local, global, function, and type index is in range —
//!   including the packed fields of the fused superinstructions.
//!
//! # Register-form invariants
//!
//! - every frame-slot operand is `< frame_size`, every jump target in
//!   bounds, `br_table` lists non-empty;
//! - `Return{src}` and call frame bases leave room for the values they
//!   move (`src + n_results <= frame_size`, `base + max(params,
//!   results) <= frame_size`);
//! - a definite-assignment dataflow (bitset per pc, intersection at
//!   joins) proves no op reads a frame slot that some path never wrote;
//!   calls clobber every slot from the callee's frame base up.
//!
//! # Check-free proof obligations
//!
//! The bounds-check elision pass ([`crate::analysis`]) rewrites proven
//! accesses to check-free opcodes. The verifier re-runs the same
//! deterministic analysis over the *rewritten* body and rejects any
//! check-free opcode whose in-bounds proof it cannot reproduce
//! ([`VerifyError::UnprovenCheckFree`]) — the optimizer cannot outrun
//! the analysis.
//!
//! Set `WATZ_VERIFY_IR=1` to verify every module at instantiation time
//! (and to promote the lowering's internal `debug_assert!`s into release
//! checks); verification is also forced across the differential corpus
//! in CI.

use crate::analysis;
use crate::flat::{FlatFunc, FlatFuncDef, FlatModule, FlatOp};
use crate::reg::{RegFunc, RegOp};
use crate::types::{FuncType, ValType};

/// A well-formedness violation found in a lowered body.
///
/// `func` is the function index (flat index space, imports included) and
/// `pc` the opcode index inside the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A jump target is outside the body.
    JumpOutOfBounds {
        /// Function index.
        func: u32,
        /// Opcode index of the branching op.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// Two edges into the same pc disagree on the operand-stack height.
    HeightMismatch {
        /// Function index.
        func: u32,
        /// Opcode index whose entry height conflicts.
        pc: u32,
        /// Height established by the first edge seen.
        expected: u32,
        /// Height implied by the conflicting edge.
        found: u32,
    },
    /// An opcode pops more values than the abstract stack holds.
    StackUnderflow {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
    /// A branch `keep`/`height` fix-up does not fit the abstract stack.
    BadKeep {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
    /// A `br_table` has no entries (the dispatch loops index
    /// `entries[i.min(len - 1)]`, so an empty list cannot execute).
    TruncatedBrTable {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
    /// Per-function arrays disagree in length (code vs. retirement
    /// metadata, or an inconsistent frame layout).
    LengthMismatch {
        /// Function index.
        func: u32,
    },
    /// Execution can fall off the end of the body past a non-terminator.
    MissingTerminator {
        /// Function index.
        func: u32,
        /// Opcode index of the last op.
        pc: u32,
    },
    /// A local index (including fused-field immediates) is out of range.
    BadLocalIndex {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The out-of-range local index.
        index: u32,
    },
    /// A global index is out of range.
    BadGlobalIndex {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The out-of-range global index.
        index: u32,
    },
    /// A call targets a missing function, or the wrong kind (a
    /// `CallLocal` to an import / `CallImport` to a local function).
    BadFuncIndex {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The bad callee index.
        index: u32,
    },
    /// A `call_indirect` type index is out of range.
    BadTypeIndex {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The bad type index.
        index: u32,
    },
    /// A register-form operand names a slot outside the frame.
    SlotOutOfFrame {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The out-of-frame slot.
        slot: u32,
    },
    /// A register-form op reads a frame slot that some path to it never
    /// wrote.
    ReadBeforeWrite {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
        /// The never-written slot.
        slot: u32,
    },
    /// `Return{src}` does not leave room for the result values.
    BadReturnSrc {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
    /// A call frame base does not leave room for arguments or results.
    BadCallBase {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
    /// A check-free memory opcode whose in-bounds proof the analysis
    /// cannot reproduce.
    UnprovenCheckFree {
        /// Function index.
        func: u32,
        /// Opcode index.
        pc: u32,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use VerifyError as E;
        match *self {
            E::JumpOutOfBounds { func, pc, target } => {
                write!(f, "func {func} pc {pc}: jump target {target} out of bounds")
            }
            E::HeightMismatch {
                func,
                pc,
                expected,
                found,
            } => write!(
                f,
                "func {func} pc {pc}: entry height mismatch (expected {expected}, found {found})"
            ),
            E::StackUnderflow { func, pc } => {
                write!(f, "func {func} pc {pc}: operand stack underflow")
            }
            E::BadKeep { func, pc } => {
                write!(
                    f,
                    "func {func} pc {pc}: branch keep/height fix-up exceeds stack"
                )
            }
            E::TruncatedBrTable { func, pc } => {
                write!(f, "func {func} pc {pc}: br_table with no entries")
            }
            E::LengthMismatch { func } => {
                write!(f, "func {func}: code/metadata length mismatch")
            }
            E::MissingTerminator { func, pc } => {
                write!(f, "func {func} pc {pc}: body can fall off the end")
            }
            E::BadLocalIndex { func, pc, index } => {
                write!(f, "func {func} pc {pc}: local index {index} out of range")
            }
            E::BadGlobalIndex { func, pc, index } => {
                write!(f, "func {func} pc {pc}: global index {index} out of range")
            }
            E::BadFuncIndex { func, pc, index } => {
                write!(f, "func {func} pc {pc}: bad callee index {index}")
            }
            E::BadTypeIndex { func, pc, index } => {
                write!(f, "func {func} pc {pc}: type index {index} out of range")
            }
            E::SlotOutOfFrame { func, pc, slot } => {
                write!(f, "func {func} pc {pc}: frame slot {slot} out of range")
            }
            E::ReadBeforeWrite { func, pc, slot } => {
                write!(
                    f,
                    "func {func} pc {pc}: frame slot {slot} read before any write"
                )
            }
            E::BadReturnSrc { func, pc } => {
                write!(f, "func {func} pc {pc}: return source exceeds frame")
            }
            E::BadCallBase { func, pc } => {
                write!(f, "func {func} pc {pc}: call frame base exceeds frame")
            }
            E::UnprovenCheckFree { func, pc } => {
                write!(
                    f,
                    "func {func} pc {pc}: check-free access without a provable bound"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Counters from one verification run, exposed like
/// [`crate::FusionStats`] via
/// [`Instance::verify_stats`](crate::exec::Instance::verify_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Function bodies verified (flat and register forms counted
    /// separately).
    pub funcs: u64,
    /// Flat opcodes checked.
    pub flat_ops: u64,
    /// Register opcodes checked.
    pub reg_ops: u64,
    /// Branch edges whose targets and entry states were validated.
    pub branch_targets: u64,
    /// Check-free memory opcodes whose in-bounds proof was re-derived.
    pub obligations: u64,
}

impl VerifyStats {
    /// Per-counter `(name, count)` pairs, for coverage assertions and
    /// logs.
    #[must_use]
    pub fn counts(&self) -> [(&'static str, u64); 5] {
        [
            ("funcs", self.funcs),
            ("flat_ops", self.flat_ops),
            ("reg_ops", self.reg_ops),
            ("branch_targets", self.branch_targets),
            ("obligations", self.obligations),
        ]
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &VerifyStats) {
        self.funcs += other.funcs;
        self.flat_ops += other.flat_ops;
        self.reg_ops += other.reg_ops;
        self.branch_targets += other.branch_targets;
        self.obligations += other.obligations;
    }
}

/// True when the `WATZ_VERIFY_IR` environment switch (any non-empty
/// value other than `0`) asks for IR verification at instantiation time.
/// The same switch promotes the lowering's internal `debug_assert!`s
/// (length parity, profiling-residue checks) into release-mode errors.
pub(crate) fn strict() -> bool {
    std::env::var_os("WATZ_VERIFY_IR").is_some_and(|v| !v.is_empty() && v.to_str() != Some("0"))
}

/// The module-level facts a body is verified against.
pub(crate) struct ModuleCtx<'a> {
    /// The function index space (imports and locals).
    pub(crate) funcs: &'a [FlatFuncDef],
    /// The module's type section.
    pub(crate) types: &'a [FuncType],
    /// Declared globals.
    pub(crate) global_types: &'a [ValType],
    /// The memory's minimum size in bytes — the floor `mem.len()` never
    /// goes below, which anchors every in-bounds proof.
    pub(crate) min_mem: u64,
}

impl ModuleCtx<'_> {
    /// `(params, results)` of a function index, `None` if out of range.
    pub(crate) fn call_arity(&self, func: u32) -> Option<(u32, u32)> {
        Some(match self.funcs.get(func as usize)? {
            FlatFuncDef::Import(imp) => (imp.params.len() as u32, imp.n_results as u32),
            FlatFuncDef::Local(f) => (f.n_params, f.n_results),
        })
    }

    /// Whether a function index is an import, `None` if out of range.
    pub(crate) fn is_import(&self, func: u32) -> Option<bool> {
        Some(matches!(
            self.funcs.get(func as usize)?,
            FlatFuncDef::Import(_)
        ))
    }

    /// `(params, results)` of a type index, `None` if out of range.
    pub(crate) fn type_arity(&self, ti: u32) -> Option<(u32, u32)> {
        let t = self.types.get(ti as usize)?;
        Some((t.params.len() as u32, t.results.len() as u32))
    }
}

/// Stack effect `(pops, pushes)` of a non-control flat opcode. This
/// table is the verifier's own — it deliberately does not reuse the
/// lowering's opcode classification, so the two derivations check each
/// other.
#[allow(clippy::too_many_lines)]
fn flat_effect(op: &FlatOp) -> (u32, u32) {
    use FlatOp as F;
    match op {
        F::Drop => (1, 0),
        F::Select => (3, 1),
        F::LocalGet(_) => (0, 1),
        F::LocalSet(_) => (1, 0),
        F::LocalTee(_) => (1, 1),
        F::GlobalGet(_) => (0, 1),
        F::GlobalSet(_) => (1, 0),

        F::I32Load(_)
        | F::I64Load(_)
        | F::F32Load(_)
        | F::F64Load(_)
        | F::I32Load8S(_)
        | F::I32Load8U(_)
        | F::I32Load16S(_)
        | F::I32Load16U(_)
        | F::I64Load8S(_)
        | F::I64Load8U(_)
        | F::I64Load16S(_)
        | F::I64Load16U(_)
        | F::I64Load32S(_)
        | F::I64Load32U(_)
        | F::LoadNC { .. } => (1, 1),
        F::I32Store(_)
        | F::I64Store(_)
        | F::F32Store(_)
        | F::F64Store(_)
        | F::I32Store8(_)
        | F::I32Store16(_)
        | F::I64Store8(_)
        | F::I64Store16(_)
        | F::I64Store32(_)
        | F::StoreNC { .. } => (2, 0),

        F::MemorySize => (0, 1),
        F::MemoryGrow => (1, 1),
        F::MemoryCopy | F::MemoryFill => (3, 0),
        F::Const(_) => (0, 1),

        F::FusedBinopLL { .. } | F::FusedBinopLK { .. } => (0, 1),
        F::FusedBinopLLSet { .. } | F::FusedBinopLKSet { .. } | F::LocalCopy { .. } => (0, 0),
        F::FusedBinopSL { .. } | F::FusedBinopKS { .. } => (1, 1),
        F::FusedBinopSLSet { .. } => (1, 0),
        F::FusedBinopSLStore { .. } => (2, 0),
        F::FusedBinopLLStore { .. } => (1, 0),
        F::FusedBinopSet { .. } => (2, 0),
        F::FusedLoadL { .. } => (0, 1),
        F::FusedStoreL { .. } => (1, 0),
        F::FusedAddLoad { .. } => (2, 1),
        F::FusedScaleAdd { .. } | F::FusedScaleAddLoad { .. } => (2, 1),
        F::FusedIdxLAdd { .. } | F::FusedIdxLAddLoad { .. } => (2, 1),
        F::FusedBinopStore { .. } => (3, 0),

        F::I32Eqz | F::I64Eqz => (1, 1),
        F::I32Eq
        | F::I32Ne
        | F::I32LtS
        | F::I32LtU
        | F::I32GtS
        | F::I32GtU
        | F::I32LeS
        | F::I32LeU
        | F::I32GeS
        | F::I32GeU
        | F::I64Eq
        | F::I64Ne
        | F::I64LtS
        | F::I64LtU
        | F::I64GtS
        | F::I64GtU
        | F::I64LeS
        | F::I64LeU
        | F::I64GeS
        | F::I64GeU
        | F::F32Eq
        | F::F32Ne
        | F::F32Lt
        | F::F32Gt
        | F::F32Le
        | F::F32Ge
        | F::F64Eq
        | F::F64Ne
        | F::F64Lt
        | F::F64Gt
        | F::F64Le
        | F::F64Ge => (2, 1),

        F::I32Add
        | F::I32Sub
        | F::I32Mul
        | F::I32DivS
        | F::I32DivU
        | F::I32RemS
        | F::I32RemU
        | F::I32And
        | F::I32Or
        | F::I32Xor
        | F::I32Shl
        | F::I32ShrS
        | F::I32ShrU
        | F::I32Rotl
        | F::I32Rotr
        | F::I64Add
        | F::I64Sub
        | F::I64Mul
        | F::I64DivS
        | F::I64DivU
        | F::I64RemS
        | F::I64RemU
        | F::I64And
        | F::I64Or
        | F::I64Xor
        | F::I64Shl
        | F::I64ShrS
        | F::I64ShrU
        | F::I64Rotl
        | F::I64Rotr
        | F::F32Add
        | F::F32Sub
        | F::F32Mul
        | F::F32Div
        | F::F32Min
        | F::F32Max
        | F::F32Copysign
        | F::F64Add
        | F::F64Sub
        | F::F64Mul
        | F::F64Div
        | F::F64Min
        | F::F64Max
        | F::F64Copysign => (2, 1),

        F::I32Clz
        | F::I32Ctz
        | F::I32Popcnt
        | F::I64Clz
        | F::I64Ctz
        | F::I64Popcnt
        | F::F32Abs
        | F::F32Neg
        | F::F32Ceil
        | F::F32Floor
        | F::F32Trunc
        | F::F32Nearest
        | F::F32Sqrt
        | F::F64Abs
        | F::F64Neg
        | F::F64Ceil
        | F::F64Floor
        | F::F64Trunc
        | F::F64Nearest
        | F::F64Sqrt
        | F::I32WrapI64
        | F::I32TruncF32S
        | F::I32TruncF32U
        | F::I32TruncF64S
        | F::I32TruncF64U
        | F::I64ExtendI32S
        | F::I64ExtendI32U
        | F::I64TruncF32S
        | F::I64TruncF32U
        | F::I64TruncF64S
        | F::I64TruncF64U
        | F::F32ConvertI32S
        | F::F32ConvertI32U
        | F::F32ConvertI64S
        | F::F32ConvertI64U
        | F::F32DemoteF64
        | F::F64ConvertI32S
        | F::F64ConvertI32U
        | F::F64ConvertI64S
        | F::F64ConvertI64U
        | F::F64PromoteF32
        | F::I32ReinterpretF32
        | F::I64ReinterpretF64
        | F::F32ReinterpretI32
        | F::F64ReinterpretI64
        | F::I32Extend8S
        | F::I32Extend16S
        | F::I64Extend8S
        | F::I64Extend16S
        | F::I64Extend32S => (1, 1),

        // Control ops never reach the effect table (handled inline by
        // the walker); treat them as no-ops if they do.
        F::Unreachable
        | F::Jump { .. }
        | F::JumpIfZero { .. }
        | F::JumpIfNonZero { .. }
        | F::Br { .. }
        | F::BrIf { .. }
        | F::BrTable { .. }
        | F::Return
        | F::CallLocal { .. }
        | F::CallImport { .. }
        | F::CallIndirect { .. }
        | F::FusedCmpBrZ { .. }
        | F::FusedCmpBrNZ { .. }
        | F::FusedCmpBrLLZ { .. }
        | F::FusedCmpBrLLNZ { .. }
        | F::FusedCmpBrLKZ { .. }
        | F::FusedCmpBrLKNZ { .. }
        | F::FusedCmpBrSLZ { .. }
        | F::FusedCmpBrSLNZ { .. } => (0, 0),
    }
}

/// Linear index/bounds checks over every flat opcode, reachable or not
/// (garbage in dead code is still rejected). Returns the number of
/// branch edges seen, for [`VerifyStats`].
#[allow(clippy::too_many_lines)]
fn check_flat_indices(f: &FlatFunc, ctx: &ModuleCtx<'_>, fidx: u32) -> Result<u64, VerifyError> {
    use FlatOp as F;
    let n = f.code.len() as u32;
    let nl = f.n_locals;
    let mut edges = 0u64;
    for (pc, op) in f.code.iter().enumerate() {
        let pc = pc as u32;
        let target_ok = |edges: &mut u64, t: u32| {
            *edges += 1;
            if t < n {
                Ok(())
            } else {
                Err(VerifyError::JumpOutOfBounds {
                    func: fidx,
                    pc,
                    target: t,
                })
            }
        };
        let local_ok = |i: u32| {
            if i < nl {
                Ok(())
            } else {
                Err(VerifyError::BadLocalIndex {
                    func: fidx,
                    pc,
                    index: i,
                })
            }
        };
        match op {
            F::Jump { target }
            | F::JumpIfZero { target }
            | F::JumpIfNonZero { target }
            | F::Br { target, .. }
            | F::BrIf { target, .. }
            | F::FusedCmpBrZ { target, .. }
            | F::FusedCmpBrNZ { target, .. } => target_ok(&mut edges, *target)?,
            F::BrTable { entries } => {
                if entries.is_empty() {
                    return Err(VerifyError::TruncatedBrTable { func: fidx, pc });
                }
                for e in entries.iter() {
                    target_ok(&mut edges, e.target)?;
                }
            }
            F::CallLocal { func } if ctx.is_import(*func) != Some(false) => {
                return Err(VerifyError::BadFuncIndex {
                    func: fidx,
                    pc,
                    index: *func,
                });
            }
            F::CallImport { func } if ctx.is_import(*func) != Some(true) => {
                return Err(VerifyError::BadFuncIndex {
                    func: fidx,
                    pc,
                    index: *func,
                });
            }
            F::CallIndirect { type_idx } if ctx.type_arity(*type_idx).is_none() => {
                return Err(VerifyError::BadTypeIndex {
                    func: fidx,
                    pc,
                    index: *type_idx,
                });
            }
            F::LocalGet(i) | F::LocalSet(i) | F::LocalTee(i) => local_ok(*i)?,
            F::GlobalGet(i) | F::GlobalSet(i) if (*i as usize) >= ctx.global_types.len() => {
                return Err(VerifyError::BadGlobalIndex {
                    func: fidx,
                    pc,
                    index: *i,
                });
            }
            F::FusedBinopLL { a, b, .. } | F::FusedBinopLLStore { a, b, .. } => {
                local_ok(*a)?;
                local_ok(*b)?;
            }
            F::FusedBinopLK { a, .. } => local_ok(*a)?,
            F::FusedBinopLLSet { a, b, dst, .. } => {
                local_ok(*a)?;
                local_ok(*b)?;
                local_ok(*dst)?;
            }
            F::FusedBinopLKSet { a, dst, .. } => {
                local_ok(*a)?;
                local_ok(*dst)?;
            }
            F::FusedBinopSL { b, .. } | F::FusedBinopSLStore { b, .. } => local_ok(*b)?,
            F::FusedBinopSLSet { b, dst, .. } => {
                local_ok(*b)?;
                local_ok(*dst)?;
            }
            F::FusedBinopSet { dst, .. } => local_ok(*dst)?,
            F::LocalCopy { src, dst } => {
                local_ok(*src)?;
                local_ok(*dst)?;
            }
            F::FusedLoadL { addr, .. } => local_ok(*addr)?,
            F::FusedStoreL { val, .. } => local_ok(*val)?,
            F::FusedIdxLAdd { z, .. } | F::FusedIdxLAddLoad { z, .. } => local_ok(*z)?,
            F::FusedCmpBrLLZ { a, b, target, .. } | F::FusedCmpBrLLNZ { a, b, target, .. } => {
                local_ok(*a)?;
                local_ok(*b)?;
                target_ok(&mut edges, *target)?;
            }
            F::FusedCmpBrLKZ { a, target, .. } | F::FusedCmpBrLKNZ { a, target, .. } => {
                local_ok(*a)?;
                target_ok(&mut edges, *target)?;
            }
            F::FusedCmpBrSLZ { b, target, .. } | F::FusedCmpBrSLNZ { b, target, .. } => {
                local_ok(*b)?;
                target_ok(&mut edges, *target)?;
            }
            _ => {}
        }
    }
    Ok(edges)
}

/// Worklist fixpoint over one flat body: computes the operand-stack
/// entry height of every reachable pc (`None` = unreachable) while
/// checking underflow, branch fix-ups, and height consistency at joins.
///
/// This is the verifier's height derivation *and* the reachability
/// source the elision pass uses, so the two always agree on which ops
/// can execute.
#[allow(clippy::too_many_lines)]
pub(crate) fn flat_entry_heights(
    f: &FlatFunc,
    ctx: &ModuleCtx<'_>,
    fidx: u32,
) -> Result<Vec<Option<u32>>, VerifyError> {
    use FlatOp as F;
    let n = f.code.len();
    let mut entry: Vec<Option<u32>> = vec![None; n];
    let mut work: Vec<usize> = Vec::new();
    if n > 0 {
        entry[0] = Some(0);
        work.push(0);
    }
    while let Some(pc) = work.pop() {
        let h = entry[pc].expect("worklist pcs have a height");
        let err_pc = pc as u32;
        let underflow = || VerifyError::StackUnderflow {
            func: fidx,
            pc: err_pc,
        };
        // Records an edge `pc -> t` entering at height `th`; targets are
        // already bounds-checked by the linear pass.
        let flow = |entry: &mut Vec<Option<u32>>, work: &mut Vec<usize>, t: u32, th: u32| {
            let t = t as usize;
            match entry[t] {
                None => {
                    entry[t] = Some(th);
                    work.push(t);
                    Ok(())
                }
                Some(prev) if prev == th => Ok(()),
                Some(prev) => Err(VerifyError::HeightMismatch {
                    func: fidx,
                    pc: t as u32,
                    expected: prev,
                    found: th,
                }),
            }
        };
        // `keep`/`height` fix-up legality against stack height `h`.
        let fixup = |h: u32, keep: u32, height: u32| {
            if keep > h {
                return Err(underflow());
            }
            if height.checked_add(keep).is_none_or(|hk| hk > h) {
                return Err(VerifyError::BadKeep {
                    func: fidx,
                    pc: err_pc,
                });
            }
            Ok(height + keep)
        };
        // Fallthrough to `pc + 1` at height `th`; off the end means the
        // body is missing a terminator.
        macro_rules! fall {
            ($th:expr) => {{
                if pc + 1 >= n {
                    return Err(VerifyError::MissingTerminator {
                        func: fidx,
                        pc: err_pc,
                    });
                }
                flow(&mut entry, &mut work, (pc + 1) as u32, $th)?;
            }};
        }
        match &f.code[pc] {
            F::Unreachable => {}
            F::Jump { target } => flow(&mut entry, &mut work, *target, h)?,
            F::JumpIfZero { target } | F::JumpIfNonZero { target } => {
                let h1 = h.checked_sub(1).ok_or_else(underflow)?;
                flow(&mut entry, &mut work, *target, h1)?;
                fall!(h1);
            }
            F::Br {
                target,
                keep,
                height,
            } => {
                let th = fixup(h, *keep, *height)?;
                flow(&mut entry, &mut work, *target, th)?;
            }
            F::BrIf {
                target,
                keep,
                height,
            } => {
                let h1 = h.checked_sub(1).ok_or_else(underflow)?;
                let th = fixup(h1, *keep, *height)?;
                flow(&mut entry, &mut work, *target, th)?;
                fall!(h1);
            }
            F::BrTable { entries } => {
                let h1 = h.checked_sub(1).ok_or_else(underflow)?;
                for e in entries.iter() {
                    let th = fixup(h1, e.keep, e.height)?;
                    flow(&mut entry, &mut work, e.target, th)?;
                }
            }
            F::Return => {
                if h < f.n_results {
                    return Err(underflow());
                }
            }
            F::CallLocal { func } | F::CallImport { func } => {
                let (np, nr) = ctx.call_arity(*func).ok_or(VerifyError::BadFuncIndex {
                    func: fidx,
                    pc: err_pc,
                    index: *func,
                })?;
                let h1 = h.checked_sub(np).ok_or_else(underflow)?;
                fall!(h1 + nr);
            }
            F::CallIndirect { type_idx } => {
                let (np, nr) = ctx.type_arity(*type_idx).ok_or(VerifyError::BadTypeIndex {
                    func: fidx,
                    pc: err_pc,
                    index: *type_idx,
                })?;
                let h1 = h.checked_sub(np + 1).ok_or_else(underflow)?;
                fall!(h1 + nr);
            }
            F::FusedCmpBrZ { target, .. } | F::FusedCmpBrNZ { target, .. } => {
                let h1 = h.checked_sub(2).ok_or_else(underflow)?;
                flow(&mut entry, &mut work, *target, h1)?;
                fall!(h1);
            }
            F::FusedCmpBrLLZ { target, .. }
            | F::FusedCmpBrLLNZ { target, .. }
            | F::FusedCmpBrLKZ { target, .. }
            | F::FusedCmpBrLKNZ { target, .. } => {
                flow(&mut entry, &mut work, *target, h)?;
                fall!(h);
            }
            F::FusedCmpBrSLZ { target, .. } | F::FusedCmpBrSLNZ { target, .. } => {
                let h1 = h.checked_sub(1).ok_or_else(underflow)?;
                flow(&mut entry, &mut work, *target, h1)?;
                fall!(h1);
            }
            op => {
                let (pops, pushes) = flat_effect(op);
                let h1 = h.checked_sub(pops).ok_or_else(underflow)?;
                fall!(h1 + pushes);
            }
        }
    }
    Ok(entry)
}

/// Whether a flat opcode is a check-free memory access (an elision
/// output carrying a proof obligation).
fn flat_is_nc(op: &FlatOp) -> bool {
    matches!(op, FlatOp::LoadNC { .. } | FlatOp::StoreNC { .. })
}

/// Whether a register opcode is a check-free memory access.
fn reg_is_nc(op: &RegOp) -> bool {
    matches!(
        op,
        RegOp::LoadI32N { .. }
            | RegOp::LoadF64N { .. }
            | RegOp::StoreI32N { .. }
            | RegOp::StoreF64N { .. }
            | RegOp::ScaleAddLoadI32N { .. }
            | RegOp::ScaleAddLoadF64N { .. }
            | RegOp::IdxLAddLoadI32N { .. }
            | RegOp::IdxLAddLoadF64N { .. }
            | RegOp::AddStoreF64N { .. }
            | RegOp::MulStoreF64N { .. }
    )
}

/// Dense bitset over frame slots, one per pc in the dataflow.
type Bits = Box<[u64]>;

fn bit_get(b: &[u64], i: u32) -> bool {
    b[(i / 64) as usize] & (1u64 << (i % 64)) != 0
}

fn bit_set(b: &mut [u64], i: u32) {
    b[(i / 64) as usize] |= 1u64 << (i % 64);
}

fn bit_clear_from(b: &mut [u64], from: u32, fs: u32) {
    for i in from..fs {
        b[(i / 64) as usize] &= !(1u64 << (i % 64));
    }
}

/// Intersects `src` into `dst`; true when `dst` changed.
fn bit_meet(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let nv = *d & *s;
        if nv != *d {
            *d = nv;
            changed = true;
        }
    }
    changed
}

/// Verifies one register body: frame-slot bounds, jump targets, call
/// frame bases, and the definite-assignment dataflow (no read of a
/// frame slot some path never wrote). Returns the branch-edge count.
#[allow(clippy::too_many_lines)]
pub(crate) fn verify_reg_func(
    f: &RegFunc,
    ctx: &ModuleCtx<'_>,
    fidx: u32,
) -> Result<u64, VerifyError> {
    use RegOp as R;
    let n = f.code.len();
    let fs = f.frame_size;
    if f.code.len() != f.prof.len() || f.n_params > f.n_locals || f.n_locals > fs {
        return Err(VerifyError::LengthMismatch { func: fidx });
    }

    // Pass A: linear bounds checks over every op, reachable or not.
    let mut edges = 0u64;
    for (pc, op) in f.code.iter().enumerate() {
        let pc = pc as u32;
        let slot_ok = |s: u32| {
            if s < fs {
                Ok(())
            } else {
                Err(VerifyError::SlotOutOfFrame {
                    func: fidx,
                    pc,
                    slot: s,
                })
            }
        };
        // A block of `len` slots starting at `start` must fit the frame.
        let span_ok = |start: u32, len: u32| {
            if len == 0 {
                return Ok(());
            }
            slot_ok(start + len - 1)
        };
        let target_ok = |edges: &mut u64, t: u32| {
            *edges += 1;
            if (t as usize) < n {
                Ok(())
            } else {
                Err(VerifyError::JumpOutOfBounds {
                    func: fidx,
                    pc,
                    target: t,
                })
            }
        };
        match op {
            R::Unreachable => {}
            R::Jump { target } => target_ok(&mut edges, *target)?,
            R::BrIf { cond, target, .. } => {
                slot_ok(u32::from(*cond))?;
                target_ok(&mut edges, *target)?;
            }
            R::BrMoves {
                target,
                src,
                dst,
                keep,
            } => {
                span_ok(u32::from(*src), u32::from(*keep))?;
                span_ok(u32::from(*dst), u32::from(*keep))?;
                target_ok(&mut edges, *target)?;
            }
            R::BrIfMoves {
                cond,
                target,
                src,
                dst,
                keep,
                ..
            } => {
                slot_ok(u32::from(*cond))?;
                span_ok(u32::from(*src), u32::from(*keep))?;
                span_ok(u32::from(*dst), u32::from(*keep))?;
                target_ok(&mut edges, *target)?;
            }
            R::BrTable { idx, entries } => {
                slot_ok(u32::from(*idx))?;
                if entries.is_empty() {
                    return Err(VerifyError::TruncatedBrTable { func: fidx, pc });
                }
                for e in entries.iter() {
                    span_ok(u32::from(e.src), u32::from(e.keep))?;
                    span_ok(u32::from(e.dst), u32::from(e.keep))?;
                    target_ok(&mut edges, e.target)?;
                }
            }
            R::Return { src } => {
                if u32::from(*src) + f.n_results > fs {
                    return Err(VerifyError::BadReturnSrc { func: fidx, pc });
                }
            }
            R::CallLocal { func, base } => {
                if ctx.is_import(*func) != Some(false) {
                    return Err(VerifyError::BadFuncIndex {
                        func: fidx,
                        pc,
                        index: *func,
                    });
                }
                let (np, nr) = ctx.call_arity(*func).unwrap_or((0, 0));
                if u32::from(*base) + np.max(nr) > fs {
                    return Err(VerifyError::BadCallBase { func: fidx, pc });
                }
            }
            R::CallImport { func, base } => {
                if ctx.is_import(*func) != Some(true) {
                    return Err(VerifyError::BadFuncIndex {
                        func: fidx,
                        pc,
                        index: *func,
                    });
                }
                let (np, nr) = ctx.call_arity(*func).unwrap_or((0, 0));
                if u32::from(*base) + np.max(nr) > fs {
                    return Err(VerifyError::BadCallBase { func: fidx, pc });
                }
            }
            R::CallIndirect {
                type_idx,
                idx,
                base,
            } => {
                slot_ok(u32::from(*idx))?;
                let (np, nr) = ctx.type_arity(*type_idx).ok_or(VerifyError::BadTypeIndex {
                    func: fidx,
                    pc,
                    index: *type_idx,
                })?;
                if u32::from(*base) + np.max(nr) > fs {
                    return Err(VerifyError::BadCallBase { func: fidx, pc });
                }
            }
            R::Select { cond, a, b, dst } => {
                for s in [cond, a, b, dst] {
                    slot_ok(u32::from(*s))?;
                }
            }
            R::Move { src, dst } => {
                slot_ok(u32::from(*src))?;
                slot_ok(u32::from(*dst))?;
            }
            R::Const { dst, .. } | R::GlobalGet { dst, .. } | R::MemorySize { dst } => {
                slot_ok(u32::from(*dst))?
            }
            R::GlobalSet { src, .. } => slot_ok(u32::from(*src))?,
            R::Load { addr, dst, .. }
            | R::LoadI32R { addr, dst, .. }
            | R::LoadF64R { addr, dst, .. }
            | R::LoadI32N { addr, dst, .. }
            | R::LoadF64N { addr, dst, .. } => {
                slot_ok(u32::from(*addr))?;
                slot_ok(u32::from(*dst))?;
            }
            R::Store { addr, val, .. }
            | R::StoreI32R { addr, val, .. }
            | R::StoreF64R { addr, val, .. }
            | R::StoreI32N { addr, val, .. }
            | R::StoreF64N { addr, val, .. } => {
                slot_ok(u32::from(*addr))?;
                slot_ok(u32::from(*val))?;
            }
            R::MemoryGrow { src, dst } => {
                slot_ok(u32::from(*src))?;
                slot_ok(u32::from(*dst))?;
            }
            R::MemoryCopy { args } | R::MemoryFill { args } => span_ok(u32::from(*args), 3)?,
            R::Unop { src, dst, .. } => {
                slot_ok(u32::from(*src))?;
                slot_ok(u32::from(*dst))?;
            }
            R::Binop { a, b, dst, .. }
            | R::AddI32 { a, b, dst }
            | R::SubI32 { a, b, dst }
            | R::MulI32 { a, b, dst }
            | R::AddF64 { a, b, dst }
            | R::SubF64 { a, b, dst }
            | R::MulF64 { a, b, dst }
            | R::DivF64 { a, b, dst } => {
                for s in [a, b, dst] {
                    slot_ok(u32::from(*s))?;
                }
            }
            R::BinopK { a, dst, .. } | R::AddI32K { a, dst, .. } => {
                slot_ok(u32::from(*a))?;
                slot_ok(u32::from(*dst))?;
            }
            R::ScaleAdd { base, idx, dst, .. }
            | R::ScaleAddLoad { base, idx, dst, .. }
            | R::ScaleAddLoadI32 { base, idx, dst, .. }
            | R::ScaleAddLoadF64 { base, idx, dst, .. }
            | R::ScaleAddLoadI32N { base, idx, dst, .. }
            | R::ScaleAddLoadF64N { base, idx, dst, .. } => {
                for s in [base, idx, dst] {
                    slot_ok(u32::from(*s))?;
                }
            }
            R::IdxLAdd {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoad {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadI32 {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadF64 {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadI32N {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadF64N {
                base, part, z, dst, ..
            } => {
                for s in [base, part, z, dst] {
                    slot_ok(u32::from(*s))?;
                }
            }
            R::AddStoreF64 { a, b, addr, .. }
            | R::MulStoreF64 { a, b, addr, .. }
            | R::AddStoreF64N { a, b, addr, .. }
            | R::MulStoreF64N { a, b, addr, .. }
            | R::BinopStore { a, b, addr, .. } => {
                for s in [a, b, addr] {
                    slot_ok(u32::from(*s))?;
                }
            }
            R::CmpBrLtSZ { a, b, target } | R::CmpBrLtSNZ { a, b, target } => {
                slot_ok(u32::from(*a))?;
                slot_ok(u32::from(*b))?;
                target_ok(&mut edges, *target)?;
            }
            R::CmpBr { a, b, target, .. } => {
                slot_ok(u32::from(*a))?;
                slot_ok(u32::from(*b))?;
                target_ok(&mut edges, *target)?;
            }
            R::CmpBrK { a, target, .. } => {
                slot_ok(u32::from(*a))?;
                target_ok(&mut edges, *target)?;
            }
        }
    }

    // Pass B: definite assignment. A bitset per pc holds the slots
    // guaranteed written on every path; the meet at joins is
    // intersection, so the fixpoint is reached monotonically.
    let words = fs.div_ceil(64) as usize;
    let mut states: Vec<Option<Bits>> = vec![None; n];
    if n > 0 {
        let mut s0 = vec![0u64; words].into_boxed_slice();
        for i in 0..f.n_locals {
            bit_set(&mut s0, i);
        }
        states[0] = Some(s0);
    }
    let mut work: Vec<usize> = if n > 0 { vec![0] } else { Vec::new() };
    while let Some(pc) = work.pop() {
        let mut st = states[pc].clone().expect("worklist pcs have a state");
        let err_pc = pc as u32;
        macro_rules! rd {
            ($s:expr) => {{
                let s = u32::from($s);
                if !bit_get(&st, s) {
                    return Err(VerifyError::ReadBeforeWrite {
                        func: fidx,
                        pc: err_pc,
                        slot: s,
                    });
                }
            }};
        }
        macro_rules! rds {
            ($start:expr, $len:expr) => {{
                let (start, len): (u32, u32) = ($start, $len);
                for i in start..start + len {
                    if !bit_get(&st, i) {
                        return Err(VerifyError::ReadBeforeWrite {
                            func: fidx,
                            pc: err_pc,
                            slot: i,
                        });
                    }
                }
            }};
        }
        macro_rules! wr {
            ($s:expr) => {
                bit_set(&mut st, u32::from($s))
            };
        }
        // Propagates `state` into `t`, meeting at joins.
        let flow = |states: &mut Vec<Option<Bits>>, work: &mut Vec<usize>, t: u32, state: &Bits| {
            let t = t as usize;
            match &mut states[t] {
                None => {
                    states[t] = Some(state.clone());
                    work.push(t);
                }
                Some(prev) => {
                    if bit_meet(prev, state) {
                        work.push(t);
                    }
                }
            }
        };
        macro_rules! fall {
            () => {{
                if pc + 1 >= n {
                    return Err(VerifyError::MissingTerminator {
                        func: fidx,
                        pc: err_pc,
                    });
                }
                flow(&mut states, &mut work, (pc + 1) as u32, &st)
            }};
        }
        match &f.code[pc] {
            R::Unreachable => {}
            R::Jump { target } => flow(&mut states, &mut work, *target, &st),
            R::BrIf { cond, target, .. } => {
                rd!(*cond);
                flow(&mut states, &mut work, *target, &st);
                fall!();
            }
            R::BrMoves {
                target,
                src,
                dst,
                keep,
            } => {
                // The dispatch loop copies unconditionally before the
                // jump, so the reads happen on the (only) edge.
                rds!(u32::from(*src), u32::from(*keep));
                let mut taken = st.clone();
                for i in 0..u32::from(*keep) {
                    bit_set(&mut taken, u32::from(*dst) + i);
                }
                flow(&mut states, &mut work, *target, &taken);
            }
            R::BrIfMoves {
                cond,
                target,
                src,
                dst,
                keep,
                ..
            } => {
                rd!(*cond);
                // The copy happens only on the taken edge; strictness:
                // the source block must be written on every path in.
                rds!(u32::from(*src), u32::from(*keep));
                let mut taken = st.clone();
                for i in 0..u32::from(*keep) {
                    bit_set(&mut taken, u32::from(*dst) + i);
                }
                flow(&mut states, &mut work, *target, &taken);
                fall!();
            }
            R::BrTable { idx, entries } => {
                rd!(*idx);
                for e in entries.iter() {
                    if e.keep > 0 {
                        rds!(u32::from(e.src), u32::from(e.keep));
                    }
                    let mut taken = st.clone();
                    for i in 0..u32::from(e.keep) {
                        bit_set(&mut taken, u32::from(e.dst) + i);
                    }
                    flow(&mut states, &mut work, e.target, &taken);
                }
            }
            R::Return { src } => {
                rds!(u32::from(*src), f.n_results);
            }
            R::CallLocal { func, base } | R::CallImport { func, base } => {
                let (np, nr) = ctx.call_arity(*func).unwrap_or((0, 0));
                rds!(u32::from(*base), np);
                // The callee's frame overlays everything from `base` up;
                // only the results are defined afterwards.
                bit_clear_from(&mut st, u32::from(*base), fs);
                for i in 0..nr {
                    bit_set(&mut st, u32::from(*base) + i);
                }
                fall!();
            }
            R::CallIndirect {
                type_idx,
                idx,
                base,
            } => {
                rd!(*idx);
                let (np, nr) = ctx.type_arity(*type_idx).unwrap_or((0, 0));
                rds!(u32::from(*base), np);
                bit_clear_from(&mut st, u32::from(*base), fs);
                for i in 0..nr {
                    bit_set(&mut st, u32::from(*base) + i);
                }
                fall!();
            }
            R::Select { cond, a, b, dst } => {
                rd!(*cond);
                rd!(*a);
                rd!(*b);
                wr!(*dst);
                fall!();
            }
            R::Move { src, dst } => {
                rd!(*src);
                wr!(*dst);
                fall!();
            }
            R::Const { dst, .. } | R::GlobalGet { dst, .. } | R::MemorySize { dst } => {
                wr!(*dst);
                fall!();
            }
            R::GlobalSet { src, .. } => {
                rd!(*src);
                fall!();
            }
            R::Load { addr, dst, .. }
            | R::LoadI32R { addr, dst, .. }
            | R::LoadF64R { addr, dst, .. }
            | R::LoadI32N { addr, dst, .. }
            | R::LoadF64N { addr, dst, .. } => {
                rd!(*addr);
                wr!(*dst);
                fall!();
            }
            R::Store { addr, val, .. }
            | R::StoreI32R { addr, val, .. }
            | R::StoreF64R { addr, val, .. }
            | R::StoreI32N { addr, val, .. }
            | R::StoreF64N { addr, val, .. } => {
                rd!(*addr);
                rd!(*val);
                fall!();
            }
            R::MemoryGrow { src, dst } => {
                rd!(*src);
                wr!(*dst);
                fall!();
            }
            R::MemoryCopy { args } | R::MemoryFill { args } => {
                rds!(u32::from(*args), 3);
                fall!();
            }
            R::Unop { src, dst, .. } => {
                rd!(*src);
                wr!(*dst);
                fall!();
            }
            R::Binop { a, b, dst, .. }
            | R::AddI32 { a, b, dst }
            | R::SubI32 { a, b, dst }
            | R::MulI32 { a, b, dst }
            | R::AddF64 { a, b, dst }
            | R::SubF64 { a, b, dst }
            | R::MulF64 { a, b, dst }
            | R::DivF64 { a, b, dst } => {
                rd!(*a);
                rd!(*b);
                wr!(*dst);
                fall!();
            }
            R::BinopK { a, dst, .. } | R::AddI32K { a, dst, .. } => {
                rd!(*a);
                wr!(*dst);
                fall!();
            }
            R::ScaleAdd { base, idx, dst, .. }
            | R::ScaleAddLoad { base, idx, dst, .. }
            | R::ScaleAddLoadI32 { base, idx, dst, .. }
            | R::ScaleAddLoadF64 { base, idx, dst, .. }
            | R::ScaleAddLoadI32N { base, idx, dst, .. }
            | R::ScaleAddLoadF64N { base, idx, dst, .. } => {
                rd!(*base);
                rd!(*idx);
                wr!(*dst);
                fall!();
            }
            R::IdxLAdd {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoad {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadI32 {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadF64 {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadI32N {
                base, part, z, dst, ..
            }
            | R::IdxLAddLoadF64N {
                base, part, z, dst, ..
            } => {
                rd!(*base);
                rd!(*part);
                rd!(*z);
                wr!(*dst);
                fall!();
            }
            R::AddStoreF64 { a, b, addr, .. }
            | R::MulStoreF64 { a, b, addr, .. }
            | R::AddStoreF64N { a, b, addr, .. }
            | R::MulStoreF64N { a, b, addr, .. }
            | R::BinopStore { a, b, addr, .. } => {
                rd!(*a);
                rd!(*b);
                rd!(*addr);
                fall!();
            }
            R::CmpBrLtSZ { a, b, target }
            | R::CmpBrLtSNZ { a, b, target }
            | R::CmpBr { a, b, target, .. } => {
                rd!(*a);
                rd!(*b);
                flow(&mut states, &mut work, *target, &st);
                fall!();
            }
            R::CmpBrK { a, target, .. } => {
                rd!(*a);
                flow(&mut states, &mut work, *target, &st);
                fall!();
            }
        }
    }
    Ok(edges)
}

/// Verifies every body of a compiled module — flat form, register form
/// (when present), and the in-bounds proof obligation of every
/// check-free memory opcode.
pub(crate) fn verify_module(
    flat: &FlatModule,
    types: &[FuncType],
) -> Result<VerifyStats, VerifyError> {
    let ctx = ModuleCtx {
        funcs: &flat.funcs,
        types,
        global_types: &flat.global_types,
        min_mem: flat.min_mem,
    };
    let mut stats = VerifyStats::default();
    for (i, def) in flat.funcs.iter().enumerate() {
        let fidx = i as u32;
        let FlatFuncDef::Local(f) = def else { continue };
        if f.code.len() != f.prof.len() {
            return Err(VerifyError::LengthMismatch { func: fidx });
        }
        stats.branch_targets += check_flat_indices(f, &ctx, fidx)?;
        let heights = flat_entry_heights(f, &ctx, fidx)?;
        stats.funcs += 1;
        stats.flat_ops += f.code.len() as u64;
        if f.code.iter().any(flat_is_nc) {
            let proofs = analysis::flat_proofs(f, &heights, &ctx);
            for (pc, op) in f.code.iter().enumerate() {
                if !flat_is_nc(op) {
                    continue;
                }
                stats.obligations += 1;
                if !proofs[pc].is_some_and(analysis::Proof::is_proven) {
                    return Err(VerifyError::UnprovenCheckFree {
                        func: fidx,
                        pc: pc as u32,
                    });
                }
            }
        }
    }
    if let Some(prog) = &flat.reg {
        if prog.funcs.len() != flat.funcs.len() {
            return Err(VerifyError::LengthMismatch {
                func: prog.funcs.len() as u32,
            });
        }
        for (i, rf) in prog.funcs.iter().enumerate() {
            let fidx = i as u32;
            let Some(f) = rf else { continue };
            stats.branch_targets += verify_reg_func(f, &ctx, fidx)?;
            stats.funcs += 1;
            stats.reg_ops += f.code.len() as u64;
            if f.code.iter().any(reg_is_nc) {
                let proofs = analysis::reg_proofs(f, ctx.min_mem);
                for (pc, op) in f.code.iter().enumerate() {
                    if !reg_is_nc(op) {
                        continue;
                    }
                    stats.obligations += 1;
                    if !proofs[pc].is_some_and(analysis::Proof::is_proven) {
                        return Err(VerifyError::UnprovenCheckFree {
                            func: fidx,
                            pc: pc as u32,
                        });
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::exec::{ExecMode, Instance, Memory, NoHost, Trap, Value};
    use crate::flat::LoadKind;
    use crate::instr::{Instr, MemArg};
    use crate::module::ExportKind;
    use crate::profile::ProfOp;
    use crate::types::BlockType;
    use crate::Module;
    use std::collections::{BTreeMap, BTreeSet};

    // ---- hand-built IR helpers --------------------------------------

    fn ffunc(n_params: u32, n_locals: u32, n_results: u32, code: Vec<FlatOp>) -> FlatFunc {
        let prof = vec![ProfOp::zero(); code.len()].into_boxed_slice();
        FlatFunc {
            n_params,
            n_locals,
            n_results,
            result_types: vec![ValType::I32; n_results as usize].into(),
            code: code.into_boxed_slice(),
            prof,
        }
    }

    fn rfunc(
        n_params: u32,
        n_locals: u32,
        n_results: u32,
        frame_size: u32,
        code: Vec<RegOp>,
    ) -> RegFunc {
        let prof = vec![ProfOp::zero(); code.len()].into_boxed_slice();
        RegFunc {
            n_params,
            n_locals,
            n_results,
            frame_size,
            result_types: vec![ValType::I32; n_results as usize].into(),
            code: code.into_boxed_slice(),
            prof,
        }
    }

    fn ctx() -> ModuleCtx<'static> {
        ModuleCtx {
            funcs: &[],
            types: &[],
            global_types: &[],
            min_mem: 65536,
        }
    }

    fn bare_module(funcs: Vec<FlatFuncDef>, min_mem: u64) -> FlatModule {
        FlatModule {
            funcs,
            func_type_idx: Box::new([]),
            global_types: Box::new([]),
            fusion: crate::FusionStats::default(),
            reg: None,
            min_mem,
            analysis: crate::RangeStats::default(),
        }
    }

    // ---- negative corpus: every error variant, hand-crafted ---------

    #[test]
    fn rejects_flat_index_violations() {
        use FlatOp as F;
        let c = ctx();
        let f = ffunc(0, 0, 0, vec![F::Jump { target: 9 }, F::Return]);
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::JumpOutOfBounds { target: 9, .. })
        ));

        let f = ffunc(
            0,
            0,
            0,
            vec![
                F::Const(0),
                F::BrTable {
                    entries: Vec::new().into_boxed_slice(),
                },
                F::Return,
            ],
        );
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::TruncatedBrTable { pc: 1, .. })
        ));

        let f = ffunc(0, 1, 0, vec![F::LocalGet(3), F::Drop, F::Return]);
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::BadLocalIndex { index: 3, .. })
        ));

        let f = ffunc(0, 0, 0, vec![F::GlobalGet(0), F::Drop, F::Return]);
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::BadGlobalIndex { index: 0, .. })
        ));

        let f = ffunc(0, 0, 0, vec![F::CallLocal { func: 5 }, F::Return]);
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::BadFuncIndex { index: 5, .. })
        ));

        let f = ffunc(
            0,
            0,
            0,
            vec![F::Const(0), F::CallIndirect { type_idx: 9 }, F::Return],
        );
        assert!(matches!(
            check_flat_indices(&f, &c, 0),
            Err(VerifyError::BadTypeIndex { index: 9, .. })
        ));
    }

    #[test]
    fn rejects_flat_stack_violations() {
        use FlatOp as F;
        let c = ctx();
        // Drop on an empty stack.
        let f = ffunc(0, 0, 0, vec![F::Drop, F::Return]);
        assert!(matches!(
            flat_entry_heights(&f, &c, 0),
            Err(VerifyError::StackUnderflow { pc: 0, .. })
        ));

        // Return without its result value.
        let f = ffunc(0, 0, 1, vec![F::Return]);
        assert!(matches!(
            flat_entry_heights(&f, &c, 0),
            Err(VerifyError::StackUnderflow { pc: 0, .. })
        ));

        // keep/height fix-up that does not fit the abstract stack.
        let f = ffunc(
            0,
            0,
            0,
            vec![
                F::Const(1),
                F::Br {
                    target: 0,
                    keep: 1,
                    height: 1,
                },
            ],
        );
        assert!(matches!(
            flat_entry_heights(&f, &c, 0),
            Err(VerifyError::BadKeep { pc: 1, .. })
        ));

        // Two edges into pc 0 disagreeing on the entry height.
        let f = ffunc(
            0,
            0,
            0,
            vec![
                F::Const(1),
                F::Const(1),
                F::JumpIfZero { target: 0 },
                F::Return,
            ],
        );
        assert!(matches!(
            flat_entry_heights(&f, &c, 0),
            Err(VerifyError::HeightMismatch {
                pc: 0,
                expected: 0,
                found: 1,
                ..
            })
        ));

        // Execution falling off the end of the body.
        let f = ffunc(0, 0, 0, vec![F::Const(1)]);
        assert!(matches!(
            flat_entry_heights(&f, &c, 0),
            Err(VerifyError::MissingTerminator { pc: 0, .. })
        ));
    }

    #[test]
    fn rejects_reg_frame_violations() {
        use RegOp as R;
        let c = ctx();
        let f = rfunc(
            0,
            0,
            0,
            2,
            vec![R::Move { src: 5, dst: 0 }, R::Return { src: 0 }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::SlotOutOfFrame { slot: 5, .. })
        ));

        let f = rfunc(
            0,
            0,
            0,
            1,
            vec![R::Jump { target: 9 }, R::Return { src: 0 }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::JumpOutOfBounds { target: 9, .. })
        ));

        let f = rfunc(
            0,
            1,
            0,
            1,
            vec![R::BrTable {
                idx: 0,
                entries: Vec::new().into_boxed_slice(),
            }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::TruncatedBrTable { pc: 0, .. })
        ));

        let f = rfunc(0, 0, 1, 2, vec![R::Return { src: 2 }]);
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::BadReturnSrc { pc: 0, .. })
        ));

        let f = rfunc(
            0,
            0,
            0,
            1,
            vec![R::CallLocal { func: 5, base: 0 }, R::Return { src: 0 }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::BadFuncIndex { index: 5, .. })
        ));

        let f = rfunc(
            0,
            1,
            0,
            1,
            vec![
                R::CallIndirect {
                    type_idx: 9,
                    idx: 0,
                    base: 0,
                },
                R::Return { src: 0 },
            ],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::BadTypeIndex { index: 9, .. })
        ));

        // A call whose frame base leaves no room for the arguments.
        let callee = ffunc(2, 2, 1, vec![FlatOp::Const(0), FlatOp::Return]);
        let defs = [FlatFuncDef::Local(callee)];
        let c2 = ModuleCtx {
            funcs: &defs,
            types: &[],
            global_types: &[],
            min_mem: 0,
        };
        let f = rfunc(
            0,
            2,
            0,
            2,
            vec![R::CallLocal { func: 0, base: 1 }, R::Return { src: 0 }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c2, 0),
            Err(VerifyError::BadCallBase { pc: 0, .. })
        ));

        // Skewed code/prof arrays.
        let mut f = rfunc(0, 0, 0, 1, vec![R::Return { src: 0 }]);
        f.prof = Box::new([]);
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_reg_dataflow_violations() {
        use RegOp as R;
        let c = ctx();
        // Straight-line read of a slot nothing ever wrote.
        let f = rfunc(
            0,
            0,
            0,
            2,
            vec![R::Move { src: 0, dst: 1 }, R::Return { src: 0 }],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::ReadBeforeWrite { pc: 0, slot: 0, .. })
        ));

        // A join where only the fall-through path writes the slot.
        let f = rfunc(
            0,
            1,
            0,
            3,
            vec![
                R::BrIf {
                    cond: 0,
                    jump_if: true,
                    target: 2,
                },
                R::Const { bits: 1, dst: 1 },
                R::Move { src: 1, dst: 2 },
                R::Return { src: 0 },
            ],
        );
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::ReadBeforeWrite { pc: 2, slot: 1, .. })
        ));

        // Falling off the end of the register body.
        let f = rfunc(0, 0, 0, 1, vec![R::Const { bits: 0, dst: 0 }]);
        assert!(matches!(
            verify_reg_func(&f, &c, 0),
            Err(VerifyError::MissingTerminator { pc: 0, .. })
        ));
    }

    #[test]
    fn rejects_skewed_metadata_and_unproven_checkfree() {
        // code/prof length skew surfaces at the module level.
        let mut f = ffunc(0, 0, 0, vec![FlatOp::Return]);
        f.prof = Box::new([]);
        let fm = bare_module(vec![FlatFuncDef::Local(f)], 65536);
        assert!(matches!(
            verify_module(&fm, &[]),
            Err(VerifyError::LengthMismatch { func: 0 })
        ));

        // A check-free load whose in-bounds proof cannot be re-derived.
        let f = ffunc(
            0,
            0,
            1,
            vec![
                FlatOp::Const(8),
                FlatOp::LoadNC {
                    kind: LoadKind::I32,
                    offset: 70_000,
                },
                FlatOp::Return,
            ],
        );
        let fm = bare_module(vec![FlatFuncDef::Local(f)], 65536);
        assert!(matches!(
            verify_module(&fm, &[]),
            Err(VerifyError::UnprovenCheckFree { func: 0, pc: 1 })
        ));

        // The same shape with a provable constant address verifies.
        let f = ffunc(
            0,
            0,
            1,
            vec![
                FlatOp::Const(8),
                FlatOp::LoadNC {
                    kind: LoadKind::I32,
                    offset: 0,
                },
                FlatOp::Return,
            ],
        );
        let fm = bare_module(vec![FlatFuncDef::Local(f)], 65536);
        let stats = verify_module(&fm, &[]).expect("interval proof re-derived");
        assert_eq!(stats.obligations, 1);
    }

    // ---- corpus modules for the mutation harness --------------------

    /// i32 kernel exercising every flat/register shape the mutation
    /// operators attack: a constant-address load (interval proof), a
    /// store-then-reload loop (subsumption proof), a three-way
    /// `br_table`, a value-carrying `br_if`, a direct call, and a
    /// global round-trip.
    fn mix_module() -> Module {
        use Instr as I;
        let mut b = ModuleBuilder::new();
        let bin = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let un = b.add_type(&[ValType::I32], &[ValType::I32]);
        b.add_memory(1, Some(1));
        b.add_global(ValType::I32, true, I::I32Const(0));
        let helper = b.add_func(
            bin,
            &[],
            vec![I::LocalGet(0), I::LocalGet(1), I::I32Add, I::End],
        );
        let m = MemArg {
            align: 2,
            offset: 0,
        };
        // Locals: 0 = n (param), 1 = i, 2 = acc.
        let kernel = b.add_func(
            un,
            &[ValType::I32, ValType::I32],
            vec![
                // acc = mem[8] — constant address, interval-provable.
                I::I32Const(8),
                I::I32Load(m),
                I::LocalSet(2),
                // for i in 0..16 { mem[i*4] = i; acc += mem[i*4] } — the
                // reload is subsumed by the checked store at the same
                // value number.
                I::Block(BlockType::Empty),
                I::Loop(BlockType::Empty),
                I::LocalGet(1),
                I::I32Const(16),
                I::I32GeS,
                I::BrIf(1),
                I::LocalGet(1),
                I::I32Const(4),
                I::I32Mul,
                I::LocalGet(1),
                I::I32Store(m),
                I::LocalGet(2),
                I::LocalGet(1),
                I::I32Const(4),
                I::I32Mul,
                I::I32Load(m),
                I::I32Add,
                I::LocalSet(2),
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                I::Br(0),
                I::End,
                I::End,
                // Three-way br_table on n % 3.
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::LocalGet(0),
                I::I32Const(3),
                I::I32RemU,
                I::BrTable {
                    targets: vec![0, 1],
                    default: 2,
                },
                I::End,
                I::LocalGet(2),
                I::I32Const(10),
                I::I32Add,
                I::LocalSet(2),
                I::Br(1),
                I::End,
                I::LocalGet(2),
                I::I32Const(20),
                I::I32Add,
                I::LocalSet(2),
                I::End,
                // A value-carrying conditional branch with a scratch
                // value beneath it, so the taken edge needs a real
                // keep/height fix-up (flat BrIf{keep: 1}).
                I::Block(BlockType::Value(ValType::I32)),
                I::LocalGet(2),
                I::LocalGet(2),
                I::LocalGet(0),
                I::BrIf(0),
                I::Drop,
                I::Drop,
                I::I32Const(99),
                I::End,
                I::LocalSet(2),
                // acc = add(acc, n), then round-trip through the global.
                I::LocalGet(2),
                I::LocalGet(0),
                I::Call(helper),
                I::LocalSet(2),
                I::LocalGet(2),
                I::GlobalSet(0),
                I::GlobalGet(0),
                I::End,
            ],
        );
        b.export_func("kernel", kernel);
        crate::load(&b.build()).expect("mix module is valid")
    }

    /// f64 kernel: each iteration's checked load subsumes the store at
    /// the same value number, and the tail reads a constant address.
    fn axpy_module() -> Module {
        use Instr as I;
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::F64]);
        b.add_memory(1, Some(1));
        let m8 = MemArg {
            align: 3,
            offset: 0,
        };
        // Locals: 0 = n (param, unused bound), 1 = i.
        let kernel = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                I::Block(BlockType::Empty),
                I::Loop(BlockType::Empty),
                I::LocalGet(1),
                I::I32Const(8),
                I::I32GeS,
                I::BrIf(1),
                I::LocalGet(1),
                I::I32Const(8),
                I::I32Mul,
                I::LocalGet(1),
                I::I32Const(8),
                I::I32Mul,
                I::F64Load(m8),
                I::F64Const(2.0),
                I::F64Mul,
                I::F64Const(1.0),
                I::F64Add,
                I::F64Store(m8),
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                I::Br(0),
                I::End,
                I::End,
                I::I32Const(0),
                I::F64Load(m8),
                I::End,
            ],
        );
        b.export_func("kernel", kernel);
        crate::load(&b.build()).expect("axpy module is valid")
    }

    // ---- direct engine execution (bypasses Instance, so mutated ----
    // ---- modules can run without re-verification) -------------------

    fn const_val(init: &Instr) -> Value {
        match *init {
            Instr::I32Const(v) => Value::I32(v),
            Instr::I64Const(v) => Value::I64(v),
            Instr::F32Const(v) => Value::F32(v),
            Instr::F64Const(v) => Value::F64(v),
            ref other => panic!("unsupported global initializer {other:?}"),
        }
    }

    fn export_idx(module: &Module, name: &str) -> u32 {
        module
            .exports
            .iter()
            .find(|e| e.name == name && matches!(e.kind, ExportKind::Func))
            .expect("exported function")
            .index
    }

    fn run_engine(
        fm: &FlatModule,
        module: &Module,
        use_reg: bool,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let lim = module.memories.first();
        let mut memory = Memory::new(lim.map_or(0, |l| l.min), lim.and_then(|l| l.max));
        let mut globals: Vec<Value> = module.globals.iter().map(|g| const_val(&g.init)).collect();
        let mut table: Vec<Option<u32>> =
            vec![None; module.tables.first().map_or(0, |l| l.min as usize)];
        for seg in &module.elems {
            let Instr::I32Const(off) = seg.offset else {
                panic!("non-constant elem offset")
            };
            for (i, &fi) in seg.funcs.iter().enumerate() {
                table[off as usize + i] = Some(fi);
            }
        }
        let idx = export_idx(module, "kernel");
        if use_reg {
            crate::reg::run(
                fm,
                &module.types,
                &table,
                &mut memory,
                &mut globals,
                &mut NoHost,
                idx,
                args,
                None,
            )
        } else {
            crate::flat::run(
                fm,
                &module.types,
                &table,
                &mut memory,
                &mut globals,
                &mut NoHost,
                idx,
                args,
                None,
            )
        }
    }

    /// Reference result from the structured tree-walking interpreter —
    /// the rung the verifier never touches.
    fn oracle(module: &Module, args: &[Value]) -> Vec<Value> {
        let mut inst = Instance::instantiate(module, ExecMode::Interpreted, &mut NoHost)
            .expect("interpreted oracle instantiates");
        inst.invoke(&mut NoHost, "kernel", args)
            .expect("oracle run")
    }

    // ---- positive elision checks over the corpus --------------------

    #[test]
    fn corpus_elides_and_reverifies_on_both_rungs() {
        for (name, module) in [("mix", mix_module()), ("axpy", axpy_module())] {
            let on = FlatModule::compile_full(&module, true, true, true).unwrap();
            assert!(on.analysis.proven() > 0, "{name}: {:?}", on.analysis);
            assert!(on.analysis.elided > 0, "{name}: {:?}", on.analysis);
            assert!(
                !flat_sites(&on, flat_is_nc).is_empty(),
                "{name}: no flat check-free ops"
            );
            assert!(
                !reg_sites(&on, reg_is_nc).is_empty(),
                "{name}: no register check-free ops"
            );
            let stats = verify_module(&on, &module.types).expect("elided module verifies");
            assert!(stats.obligations >= 2, "{name}: {stats:?}");

            let off = FlatModule::compile_full(&module, true, true, false).unwrap();
            assert_eq!(off.analysis.elided, 0, "{name}");
            assert!(flat_sites(&off, flat_is_nc).is_empty(), "{name}");
            assert!(reg_sites(&off, reg_is_nc).is_empty(), "{name}");
            verify_module(&off, &module.types).expect("unelided module verifies");

            for n in [0, 1, 2, 7] {
                let args = [Value::I32(n)];
                let want = oracle(&module, &args);
                for fm in [&on, &off] {
                    assert_eq!(
                        run_engine(fm, &module, false, &args).unwrap(),
                        want,
                        "{name}"
                    );
                    assert_eq!(
                        run_engine(fm, &module, true, &args).unwrap(),
                        want,
                        "{name}"
                    );
                }
            }
        }
        // The mix preamble is the interval case specifically.
        let fm = FlatModule::compile_full(&mix_module(), true, true, true).unwrap();
        assert!(fm.analysis.proven_interval > 0, "{:?}", fm.analysis);
        assert!(fm.analysis.proven_subsumed > 0, "{:?}", fm.analysis);
    }

    // ---- deterministic IR mutation harness --------------------------

    struct Rng(u64);

    impl Rng {
        fn roll(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.roll() % n
        }
    }

    fn flat_sites(fm: &FlatModule, pred: impl Fn(&FlatOp) -> bool) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for (fi, def) in fm.funcs.iter().enumerate() {
            if let FlatFuncDef::Local(f) = def {
                for (pc, op) in f.code.iter().enumerate() {
                    if pred(op) {
                        v.push((fi, pc));
                    }
                }
            }
        }
        v
    }

    fn reg_sites(fm: &FlatModule, pred: impl Fn(&RegOp) -> bool) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        if let Some(prog) = &fm.reg {
            for (fi, rf) in prog.funcs.iter().enumerate() {
                if let Some(f) = rf {
                    for (pc, op) in f.code.iter().enumerate() {
                        if pred(op) {
                            v.push((fi, pc));
                        }
                    }
                }
            }
        }
        v
    }

    fn flat_body_mut(fm: &mut FlatModule, fi: usize) -> &mut FlatFunc {
        match &mut fm.funcs[fi] {
            FlatFuncDef::Local(f) => f,
            FlatFuncDef::Import(_) => unreachable!("sites only name local functions"),
        }
    }

    fn reg_body_mut(fm: &mut FlatModule, fi: usize) -> &mut RegFunc {
        fm.reg.as_mut().expect("register program present").funcs[fi]
            .as_mut()
            .expect("sites only name lowered functions")
    }

    fn flat_has_target(op: &FlatOp) -> bool {
        use FlatOp as F;
        matches!(
            op,
            F::Jump { .. }
                | F::JumpIfZero { .. }
                | F::JumpIfNonZero { .. }
                | F::Br { .. }
                | F::BrIf { .. }
                | F::FusedCmpBrZ { .. }
                | F::FusedCmpBrNZ { .. }
                | F::FusedCmpBrLLZ { .. }
                | F::FusedCmpBrLLNZ { .. }
                | F::FusedCmpBrLKZ { .. }
                | F::FusedCmpBrLKNZ { .. }
                | F::FusedCmpBrSLZ { .. }
                | F::FusedCmpBrSLNZ { .. }
        )
    }

    fn flat_target_mut(op: &mut FlatOp) -> Option<&mut u32> {
        use FlatOp as F;
        match op {
            F::Jump { target }
            | F::JumpIfZero { target }
            | F::JumpIfNonZero { target }
            | F::Br { target, .. }
            | F::BrIf { target, .. }
            | F::FusedCmpBrZ { target, .. }
            | F::FusedCmpBrNZ { target, .. }
            | F::FusedCmpBrLLZ { target, .. }
            | F::FusedCmpBrLLNZ { target, .. }
            | F::FusedCmpBrLKZ { target, .. }
            | F::FusedCmpBrLKNZ { target, .. }
            | F::FusedCmpBrSLZ { target, .. }
            | F::FusedCmpBrSLNZ { target, .. } => Some(target),
            _ => None,
        }
    }

    fn reg_has_target(op: &RegOp) -> bool {
        use RegOp as R;
        matches!(
            op,
            R::Jump { .. }
                | R::BrIf { .. }
                | R::BrMoves { .. }
                | R::BrIfMoves { .. }
                | R::CmpBr { .. }
                | R::CmpBrK { .. }
                | R::CmpBrLtSZ { .. }
                | R::CmpBrLtSNZ { .. }
        )
    }

    fn reg_target_mut(op: &mut RegOp) -> Option<&mut u32> {
        use RegOp as R;
        match op {
            R::Jump { target }
            | R::BrIf { target, .. }
            | R::BrMoves { target, .. }
            | R::BrIfMoves { target, .. }
            | R::CmpBr { target, .. }
            | R::CmpBrK { target, .. }
            | R::CmpBrLtSZ { target, .. }
            | R::CmpBrLtSNZ { target, .. } => Some(target),
            _ => None,
        }
    }

    fn reg_nc_offset_mut(op: &mut RegOp) -> Option<&mut u32> {
        use RegOp as R;
        match op {
            R::LoadI32N { offset, .. }
            | R::LoadF64N { offset, .. }
            | R::StoreI32N { offset, .. }
            | R::StoreF64N { offset, .. }
            | R::ScaleAddLoadI32N { offset, .. }
            | R::ScaleAddLoadF64N { offset, .. }
            | R::IdxLAddLoadI32N { offset, .. }
            | R::IdxLAddLoadF64N { offset, .. }
            | R::AddStoreF64N { offset, .. }
            | R::MulStoreF64N { offset, .. } => Some(offset),
            _ => None,
        }
    }

    fn callee_max_arity(fm: &FlatModule, func: u32) -> u32 {
        match &fm.funcs[func as usize] {
            FlatFuncDef::Import(imp) => (imp.params.len() as u32).max(imp.n_results as u32),
            FlatFuncDef::Local(f) => f.n_params.max(f.n_results),
        }
    }

    fn pick(v: &[(usize, usize)], rng: &mut Rng) -> Option<(usize, usize)> {
        if v.is_empty() {
            None
        } else {
            Some(v[rng.below(v.len() as u64) as usize])
        }
    }

    /// `(operator, must_reject)`. Every structural operator produces a
    /// value that is out of range *by construction* (targets past the
    /// body, slots past the frame, offsets past `min_mem`), so a sound
    /// verifier must reject it; the `prof-tweak` operators only touch
    /// retirement metadata the engines never read on the result path,
    /// so a sound verifier must accept them and execution must stay
    /// bit-equal to the oracle. In-range retargets or immediate swaps
    /// are deliberately absent: a well-formedness verifier can accept
    /// those while the behavior silently changes, which would make the
    /// harness flaky rather than a soundness proof.
    const OPERATORS: [(&str, bool); 13] = [
        ("flat-retarget-oob", true),
        ("flat-keep-bomb", true),
        ("flat-table-empty", true),
        ("flat-local-oob", true),
        ("flat-nc-offset-bomb", true),
        ("flat-prof-tweak", false),
        ("reg-slot-oob", true),
        ("reg-retarget-oob", true),
        ("reg-return-src-bomb", true),
        ("reg-call-base-bomb", true),
        ("reg-table-empty", true),
        ("reg-nc-offset-bomb", true),
        ("reg-prof-tweak", false),
    ];

    #[allow(clippy::too_many_lines)]
    fn apply_mutation(fm: &mut FlatModule, rng: &mut Rng) -> Option<(&'static str, bool)> {
        let (name, must_reject) = OPERATORS[rng.below(OPERATORS.len() as u64) as usize];
        let applied = match name {
            "flat-retarget-oob" => {
                let sites = flat_sites(fm, flat_has_target);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = flat_body_mut(fm, fi);
                    let oob = f.code.len() as u32 + 1 + rng.below(7) as u32;
                    *flat_target_mut(&mut f.code[pc]).expect("site has a target") = oob;
                    true
                } else {
                    false
                }
            }
            "flat-keep-bomb" => {
                let sites = flat_sites(fm, |op| {
                    matches!(op, FlatOp::Br { .. } | FlatOp::BrIf { .. })
                });
                if let Some((fi, pc)) = pick(&sites, rng) {
                    match &mut flat_body_mut(fm, fi).code[pc] {
                        FlatOp::Br { keep, .. } | FlatOp::BrIf { keep, .. } => *keep += 1024,
                        _ => unreachable!(),
                    }
                    true
                } else {
                    false
                }
            }
            "flat-table-empty" => {
                let sites = flat_sites(fm, |op| matches!(op, FlatOp::BrTable { .. }));
                if let Some((fi, pc)) = pick(&sites, rng) {
                    if let FlatOp::BrTable { entries } = &mut flat_body_mut(fm, fi).code[pc] {
                        *entries = Vec::new().into_boxed_slice();
                    }
                    true
                } else {
                    false
                }
            }
            "flat-local-oob" => {
                let sites = flat_sites(fm, |_| true);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = flat_body_mut(fm, fi);
                    f.code[pc] = FlatOp::LocalGet(f.n_locals + 1 + rng.below(3) as u32);
                    true
                } else {
                    false
                }
            }
            "flat-nc-offset-bomb" => {
                let sites = flat_sites(fm, flat_is_nc);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    match &mut flat_body_mut(fm, fi).code[pc] {
                        FlatOp::LoadNC { offset, .. } | FlatOp::StoreNC { offset, .. } => {
                            *offset += 70_000;
                        }
                        _ => unreachable!(),
                    }
                    true
                } else {
                    false
                }
            }
            "flat-prof-tweak" => {
                let sites = flat_sites(fm, |_| true);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = flat_body_mut(fm, fi);
                    f.prof[pc].weight = f.prof[pc].weight.wrapping_add(1);
                    true
                } else {
                    false
                }
            }
            "reg-slot-oob" => {
                let sites = reg_sites(fm, |_| true);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = reg_body_mut(fm, fi);
                    let oob = u16::try_from(f.frame_size + 1 + rng.below(3) as u32)
                        .expect("corpus frames are tiny");
                    f.code[pc] = RegOp::Move { src: oob, dst: 0 };
                    true
                } else {
                    false
                }
            }
            "reg-retarget-oob" => {
                let sites = reg_sites(fm, reg_has_target);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = reg_body_mut(fm, fi);
                    let oob = f.code.len() as u32 + 1 + rng.below(7) as u32;
                    *reg_target_mut(&mut f.code[pc]).expect("site has a target") = oob;
                    true
                } else {
                    false
                }
            }
            "reg-return-src-bomb" => {
                let sites = reg_sites(fm, |op| matches!(op, RegOp::Return { .. }));
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = reg_body_mut(fm, fi);
                    let oob = u16::try_from(f.frame_size + 1).expect("corpus frames are tiny");
                    f.code[pc] = RegOp::Return { src: oob };
                    true
                } else {
                    false
                }
            }
            "reg-call-base-bomb" => {
                // Only calls that move at least one value: an arity-0
                // callee with `base == frame_size` is legal.
                let sites = reg_sites(fm, |op| match op {
                    RegOp::CallLocal { func, .. } | RegOp::CallImport { func, .. } => {
                        callee_max_arity(fm, *func) > 0
                    }
                    _ => false,
                });
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let fs = reg_body_mut(fm, fi).frame_size;
                    match &mut reg_body_mut(fm, fi).code[pc] {
                        RegOp::CallLocal { base, .. } | RegOp::CallImport { base, .. } => {
                            *base = u16::try_from(fs).expect("corpus frames are tiny");
                        }
                        _ => unreachable!(),
                    }
                    true
                } else {
                    false
                }
            }
            "reg-table-empty" => {
                let sites = reg_sites(fm, |op| matches!(op, RegOp::BrTable { .. }));
                if let Some((fi, pc)) = pick(&sites, rng) {
                    if let RegOp::BrTable { entries, .. } = &mut reg_body_mut(fm, fi).code[pc] {
                        *entries = Vec::new().into_boxed_slice();
                    }
                    true
                } else {
                    false
                }
            }
            "reg-nc-offset-bomb" => {
                let sites = reg_sites(fm, reg_is_nc);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    *reg_nc_offset_mut(&mut reg_body_mut(fm, fi).code[pc])
                        .expect("site is check-free") += 70_000;
                    true
                } else {
                    false
                }
            }
            "reg-prof-tweak" => {
                let sites = reg_sites(fm, |_| true);
                if let Some((fi, pc)) = pick(&sites, rng) {
                    let f = reg_body_mut(fm, fi);
                    f.prof[pc].weight = f.prof[pc].weight.wrapping_add(1);
                    true
                } else {
                    false
                }
            }
            _ => unreachable!("unknown operator {name}"),
        };
        applied.then_some((name, must_reject))
    }

    fn variant_name(e: &VerifyError) -> &'static str {
        use VerifyError as E;
        match e {
            E::JumpOutOfBounds { .. } => "JumpOutOfBounds",
            E::HeightMismatch { .. } => "HeightMismatch",
            E::StackUnderflow { .. } => "StackUnderflow",
            E::BadKeep { .. } => "BadKeep",
            E::TruncatedBrTable { .. } => "TruncatedBrTable",
            E::LengthMismatch { .. } => "LengthMismatch",
            E::MissingTerminator { .. } => "MissingTerminator",
            E::BadLocalIndex { .. } => "BadLocalIndex",
            E::BadGlobalIndex { .. } => "BadGlobalIndex",
            E::BadFuncIndex { .. } => "BadFuncIndex",
            E::BadTypeIndex { .. } => "BadTypeIndex",
            E::SlotOutOfFrame { .. } => "SlotOutOfFrame",
            E::ReadBeforeWrite { .. } => "ReadBeforeWrite",
            E::BadReturnSrc { .. } => "BadReturnSrc",
            E::BadCallBase { .. } => "BadCallBase",
            E::UnprovenCheckFree { .. } => "UnprovenCheckFree",
        }
    }

    /// The soundness pin: every deterministic mutant of the lowered IR
    /// either fails verification, or passes *and* executes bit-equal to
    /// the tree-walking oracle on both compiled rungs. No mutant may
    /// pass the verifier and diverge.
    #[test]
    fn mutation_harness_no_silent_divergence() {
        let corpus = [("mix", mix_module()), ("axpy", axpy_module())];
        let arg_set = [0, 1, 2, 7].map(|n| [Value::I32(n)]);
        let mut fired: BTreeMap<&'static str, u32> = BTreeMap::new();
        let mut variants: BTreeSet<&'static str> = BTreeSet::new();
        let (mut accepted, mut rejected) = (0u32, 0u32);
        for (mi, (name, module)) in corpus.iter().enumerate() {
            let oracles: Vec<Vec<Value>> = arg_set.iter().map(|a| oracle(module, a)).collect();
            let pristine = FlatModule::compile_full(module, true, true, true).unwrap();
            let stats = verify_module(&pristine, &module.types).expect("pristine module verifies");
            assert!(stats.obligations > 0, "{name}: no check-free ops to attack");

            let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (mi as u64 + 1));
            for _ in 0..250 {
                let mut fm = FlatModule::compile_full(module, true, true, true).unwrap();
                let Some((op_name, must_reject)) = apply_mutation(&mut fm, &mut rng) else {
                    continue;
                };
                *fired.entry(op_name).or_insert(0) += 1;
                match verify_module(&fm, &module.types) {
                    Err(e) => {
                        assert!(
                            must_reject,
                            "{name}: benign mutation {op_name} rejected: {e}"
                        );
                        rejected += 1;
                        variants.insert(variant_name(&e));
                    }
                    Ok(_) => {
                        assert!(
                            !must_reject,
                            "{name}: structural mutation {op_name} passed the verifier"
                        );
                        accepted += 1;
                        for (args, want) in arg_set.iter().zip(&oracles) {
                            let flat_out = run_engine(&fm, module, false, args)
                                .expect("accepted mutant runs on the flat engine");
                            let reg_out = run_engine(&fm, module, true, args)
                                .expect("accepted mutant runs on the register engine");
                            assert_eq!(
                                &flat_out, want,
                                "{name}: {op_name} diverges on the flat engine"
                            );
                            assert_eq!(
                                &reg_out, want,
                                "{name}: {op_name} diverges on the register engine"
                            );
                        }
                    }
                }
            }
        }
        assert!(accepted > 0, "no mutant was ever accepted");
        assert!(rejected > 0, "no mutant was ever rejected");
        for (op, _) in OPERATORS {
            assert!(
                fired.get(op).copied().unwrap_or(0) > 0,
                "operator {op} never found a site; fired = {fired:?}"
            );
        }
        assert!(
            variants.len() >= 6,
            "expected a diverse rejection surface, got {variants:?}"
        );
    }
}

//! Binary decoder for the Wasm module format.

use crate::instr::{Instr, MemArg};
use crate::leb128::{self, LebError};
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, FuncBody, FuncImport, Global, Module,
};
use crate::types::{BlockType, FuncType, GlobalType, Limits, ValType};

/// Errors produced while parsing a binary module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// Input ended unexpectedly.
    UnexpectedEof,
    /// A LEB128 integer was malformed.
    BadLeb,
    /// An unknown or unsupported opcode byte (with prefix context).
    BadOpcode(u8),
    /// An unknown 0xFC-prefixed opcode.
    BadPrefixedOpcode(u32),
    /// Invalid value type byte.
    BadValType(u8),
    /// A section had trailing or overflowing content.
    SectionSize {
        /// Section id.
        id: u8,
    },
    /// Sections appeared out of order or duplicated.
    BadSectionOrder(u8),
    /// Unsupported import kind (only function imports are supported).
    UnsupportedImport,
    /// Unsupported feature (e.g. passive segments).
    Unsupported(&'static str),
    /// String was not valid UTF-8.
    BadUtf8,
    /// Mismatch between function and code section lengths.
    FuncCodeMismatch,
    /// Malformed constant expression.
    BadConstExpr,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "bad magic or version"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadLeb => write!(f, "malformed LEB128 integer"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::BadPrefixedOpcode(op) => write!(f, "unknown 0xfc opcode {op}"),
            DecodeError::BadValType(b) => write!(f, "invalid value type 0x{b:02x}"),
            DecodeError::SectionSize { id } => write!(f, "section {id} size mismatch"),
            DecodeError::BadSectionOrder(id) => write!(f, "section {id} out of order"),
            DecodeError::UnsupportedImport => write!(f, "only function imports are supported"),
            DecodeError::Unsupported(what) => write!(f, "unsupported feature: {what}"),
            DecodeError::BadUtf8 => write!(f, "name is not valid UTF-8"),
            DecodeError::FuncCodeMismatch => {
                write!(f, "function and code section counts differ")
            }
            DecodeError::BadConstExpr => write!(f, "malformed constant expression"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<LebError> for DecodeError {
    fn from(e: LebError) -> Self {
        match e {
            LebError::UnexpectedEof => DecodeError::UnexpectedEof,
            LebError::Overflow => DecodeError::BadLeb,
        }
    }
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.input.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Result<u8, DecodeError> {
        self.input
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::UnexpectedEof)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        if end > self.input.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.input[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(leb128::read_u32(self.input, &mut self.pos)?)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(leb128::read_i32(self.input, &mut self.pos)?)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(leb128::read_i64(self.input, &mut self.pos)?)
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn val_type(&mut self) -> Result<ValType, DecodeError> {
        let b = self.byte()?;
        ValType::from_byte(b).ok_or(DecodeError::BadValType(b))
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        match self.byte()? {
            0x00 => Ok(Limits {
                min: self.u32()?,
                max: None,
            }),
            0x01 => Ok(Limits {
                min: self.u32()?,
                max: Some(self.u32()?),
            }),
            b => Err(DecodeError::BadOpcode(b)),
        }
    }

    fn block_type(&mut self) -> Result<BlockType, DecodeError> {
        let b = self.peek()?;
        if b == 0x40 {
            self.pos += 1;
            return Ok(BlockType::Empty);
        }
        if let Some(vt) = ValType::from_byte(b) {
            self.pos += 1;
            return Ok(BlockType::Value(vt));
        }
        // s33 type index.
        let idx = self.i64()?;
        u32::try_from(idx)
            .map(BlockType::Func)
            .map_err(|_| DecodeError::BadLeb)
    }

    fn mem_arg(&mut self) -> Result<MemArg, DecodeError> {
        Ok(MemArg {
            align: self.u32()?,
            offset: self.u32()?,
        })
    }

    fn const_expr(&mut self) -> Result<Instr, DecodeError> {
        let instr = match self.byte()? {
            0x41 => Instr::I32Const(self.i32()?),
            0x42 => Instr::I64Const(self.i64()?),
            0x43 => Instr::F32Const(self.f32()?),
            0x44 => Instr::F64Const(self.f64()?),
            _ => return Err(DecodeError::BadConstExpr),
        };
        if self.byte()? != 0x0b {
            return Err(DecodeError::BadConstExpr);
        }
        Ok(instr)
    }

    /// Decodes a function body's instruction sequence up to and including
    /// the terminating `End` of the outermost frame.
    fn expr(&mut self) -> Result<Vec<Instr>, DecodeError> {
        let mut code = Vec::new();
        let mut depth: u32 = 0;
        loop {
            let instr = self.instr()?;
            let is_end = matches!(instr, Instr::End);
            let opens = instr.opens_block();
            code.push(instr);
            if opens {
                depth += 1;
            } else if is_end {
                if depth == 0 {
                    return Ok(code);
                }
                depth -= 1;
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn instr(&mut self) -> Result<Instr, DecodeError> {
        use Instr::*;
        let op = self.byte()?;
        Ok(match op {
            0x00 => Unreachable,
            0x01 => Nop,
            0x02 => Block(self.block_type()?),
            0x03 => Loop(self.block_type()?),
            0x04 => If(self.block_type()?),
            0x05 => Else,
            0x0b => End,
            0x0c => Br(self.u32()?),
            0x0d => BrIf(self.u32()?),
            0x0e => {
                let count = self.u32()? as usize;
                let mut targets = Vec::with_capacity(count);
                for _ in 0..count {
                    targets.push(self.u32()?);
                }
                let default = self.u32()?;
                BrTable { targets, default }
            }
            0x0f => Return,
            0x10 => Call(self.u32()?),
            0x11 => {
                let type_idx = self.u32()?;
                let table = self.u32()?;
                CallIndirect { type_idx, table }
            }
            0x1a => Drop,
            0x1b => Select,
            0x20 => LocalGet(self.u32()?),
            0x21 => LocalSet(self.u32()?),
            0x22 => LocalTee(self.u32()?),
            0x23 => GlobalGet(self.u32()?),
            0x24 => GlobalSet(self.u32()?),
            0x28 => I32Load(self.mem_arg()?),
            0x29 => I64Load(self.mem_arg()?),
            0x2a => F32Load(self.mem_arg()?),
            0x2b => F64Load(self.mem_arg()?),
            0x2c => I32Load8S(self.mem_arg()?),
            0x2d => I32Load8U(self.mem_arg()?),
            0x2e => I32Load16S(self.mem_arg()?),
            0x2f => I32Load16U(self.mem_arg()?),
            0x30 => I64Load8S(self.mem_arg()?),
            0x31 => I64Load8U(self.mem_arg()?),
            0x32 => I64Load16S(self.mem_arg()?),
            0x33 => I64Load16U(self.mem_arg()?),
            0x34 => I64Load32S(self.mem_arg()?),
            0x35 => I64Load32U(self.mem_arg()?),
            0x36 => I32Store(self.mem_arg()?),
            0x37 => I64Store(self.mem_arg()?),
            0x38 => F32Store(self.mem_arg()?),
            0x39 => F64Store(self.mem_arg()?),
            0x3a => I32Store8(self.mem_arg()?),
            0x3b => I32Store16(self.mem_arg()?),
            0x3c => I64Store8(self.mem_arg()?),
            0x3d => I64Store16(self.mem_arg()?),
            0x3e => I64Store32(self.mem_arg()?),
            0x3f => {
                self.byte()?; // reserved memory index
                MemorySize
            }
            0x40 => {
                self.byte()?;
                MemoryGrow
            }
            0x41 => I32Const(self.i32()?),
            0x42 => I64Const(self.i64()?),
            0x43 => F32Const(self.f32()?),
            0x44 => F64Const(self.f64()?),
            0x45 => I32Eqz,
            0x46 => I32Eq,
            0x47 => I32Ne,
            0x48 => I32LtS,
            0x49 => I32LtU,
            0x4a => I32GtS,
            0x4b => I32GtU,
            0x4c => I32LeS,
            0x4d => I32LeU,
            0x4e => I32GeS,
            0x4f => I32GeU,
            0x50 => I64Eqz,
            0x51 => I64Eq,
            0x52 => I64Ne,
            0x53 => I64LtS,
            0x54 => I64LtU,
            0x55 => I64GtS,
            0x56 => I64GtU,
            0x57 => I64LeS,
            0x58 => I64LeU,
            0x59 => I64GeS,
            0x5a => I64GeU,
            0x5b => F32Eq,
            0x5c => F32Ne,
            0x5d => F32Lt,
            0x5e => F32Gt,
            0x5f => F32Le,
            0x60 => F32Ge,
            0x61 => F64Eq,
            0x62 => F64Ne,
            0x63 => F64Lt,
            0x64 => F64Gt,
            0x65 => F64Le,
            0x66 => F64Ge,
            0x67 => I32Clz,
            0x68 => I32Ctz,
            0x69 => I32Popcnt,
            0x6a => I32Add,
            0x6b => I32Sub,
            0x6c => I32Mul,
            0x6d => I32DivS,
            0x6e => I32DivU,
            0x6f => I32RemS,
            0x70 => I32RemU,
            0x71 => I32And,
            0x72 => I32Or,
            0x73 => I32Xor,
            0x74 => I32Shl,
            0x75 => I32ShrS,
            0x76 => I32ShrU,
            0x77 => I32Rotl,
            0x78 => I32Rotr,
            0x79 => I64Clz,
            0x7a => I64Ctz,
            0x7b => I64Popcnt,
            0x7c => I64Add,
            0x7d => I64Sub,
            0x7e => I64Mul,
            0x7f => I64DivS,
            0x80 => I64DivU,
            0x81 => I64RemS,
            0x82 => I64RemU,
            0x83 => I64And,
            0x84 => I64Or,
            0x85 => I64Xor,
            0x86 => I64Shl,
            0x87 => I64ShrS,
            0x88 => I64ShrU,
            0x89 => I64Rotl,
            0x8a => I64Rotr,
            0x8b => F32Abs,
            0x8c => F32Neg,
            0x8d => F32Ceil,
            0x8e => F32Floor,
            0x8f => F32Trunc,
            0x90 => F32Nearest,
            0x91 => F32Sqrt,
            0x92 => F32Add,
            0x93 => F32Sub,
            0x94 => F32Mul,
            0x95 => F32Div,
            0x96 => F32Min,
            0x97 => F32Max,
            0x98 => F32Copysign,
            0x99 => F64Abs,
            0x9a => F64Neg,
            0x9b => F64Ceil,
            0x9c => F64Floor,
            0x9d => F64Trunc,
            0x9e => F64Nearest,
            0x9f => F64Sqrt,
            0xa0 => F64Add,
            0xa1 => F64Sub,
            0xa2 => F64Mul,
            0xa3 => F64Div,
            0xa4 => F64Min,
            0xa5 => F64Max,
            0xa6 => F64Copysign,
            0xa7 => I32WrapI64,
            0xa8 => I32TruncF32S,
            0xa9 => I32TruncF32U,
            0xaa => I32TruncF64S,
            0xab => I32TruncF64U,
            0xac => I64ExtendI32S,
            0xad => I64ExtendI32U,
            0xae => I64TruncF32S,
            0xaf => I64TruncF32U,
            0xb0 => I64TruncF64S,
            0xb1 => I64TruncF64U,
            0xb2 => F32ConvertI32S,
            0xb3 => F32ConvertI32U,
            0xb4 => F32ConvertI64S,
            0xb5 => F32ConvertI64U,
            0xb6 => F32DemoteF64,
            0xb7 => F64ConvertI32S,
            0xb8 => F64ConvertI32U,
            0xb9 => F64ConvertI64S,
            0xba => F64ConvertI64U,
            0xbb => F64PromoteF32,
            0xbc => I32ReinterpretF32,
            0xbd => I64ReinterpretF64,
            0xbe => F32ReinterpretI32,
            0xbf => F64ReinterpretI64,
            0xc0 => I32Extend8S,
            0xc1 => I32Extend16S,
            0xc2 => I64Extend8S,
            0xc3 => I64Extend16S,
            0xc4 => I64Extend32S,
            0xfc => {
                let sub = self.u32()?;
                match sub {
                    10 => {
                        self.byte()?; // dst mem
                        self.byte()?; // src mem
                        MemoryCopy
                    }
                    11 => {
                        self.byte()?; // mem
                        MemoryFill
                    }
                    other => return Err(DecodeError::BadPrefixedOpcode(other)),
                }
            }
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }
}

/// Decodes a binary module.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first malformation encountered.
#[allow(clippy::too_many_lines)]
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != b"\0asm" {
        return Err(DecodeError::BadHeader);
    }
    if r.bytes(4)? != [1, 0, 0, 0] {
        return Err(DecodeError::BadHeader);
    }

    let mut module = Module::default();
    let mut func_type_indices: Vec<u32> = Vec::new();
    let mut last_section_id = 0u8;

    while r.pos < r.input.len() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let section_end = r.pos + size;
        if section_end > r.input.len() {
            return Err(DecodeError::UnexpectedEof);
        }

        if id != 0 && id != 12 {
            if id <= last_section_id {
                return Err(DecodeError::BadSectionOrder(id));
            }
            last_section_id = id;
        }

        match id {
            0 => {
                // Custom section: skipped.
                r.pos = section_end;
            }
            12 => {
                // Data count section: value ignored (we re-derive it).
                let _ = r.u32()?;
            }
            1 => {
                let count = r.u32()?;
                for _ in 0..count {
                    if r.byte()? != 0x60 {
                        return Err(DecodeError::BadConstExpr);
                    }
                    let n_params = r.u32()? as usize;
                    let mut params = Vec::with_capacity(n_params);
                    for _ in 0..n_params {
                        params.push(r.val_type()?);
                    }
                    let n_results = r.u32()? as usize;
                    let mut results = Vec::with_capacity(n_results);
                    for _ in 0..n_results {
                        results.push(r.val_type()?);
                    }
                    module.types.push(FuncType { params, results });
                }
            }
            2 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let mod_name = r.name()?;
                    let field = r.name()?;
                    match r.byte()? {
                        0x00 => {
                            let type_idx = r.u32()?;
                            module.func_imports.push(FuncImport {
                                module: mod_name,
                                name: field,
                                type_idx,
                            });
                        }
                        _ => return Err(DecodeError::UnsupportedImport),
                    }
                }
            }
            3 => {
                let count = r.u32()?;
                for _ in 0..count {
                    func_type_indices.push(r.u32()?);
                }
            }
            4 => {
                let count = r.u32()?;
                for _ in 0..count {
                    if r.byte()? != 0x70 {
                        return Err(DecodeError::Unsupported("non-funcref table"));
                    }
                    module.tables.push(r.limits()?);
                }
            }
            5 => {
                let count = r.u32()?;
                for _ in 0..count {
                    module.memories.push(r.limits()?);
                }
            }
            6 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let val_type = r.val_type()?;
                    let mutable = match r.byte()? {
                        0x00 => false,
                        0x01 => true,
                        b => return Err(DecodeError::BadOpcode(b)),
                    };
                    let init = r.const_expr()?;
                    module.globals.push(Global {
                        ty: GlobalType { val_type, mutable },
                        init,
                    });
                }
            }
            7 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let name = r.name()?;
                    let kind = match r.byte()? {
                        0x00 => ExportKind::Func,
                        0x01 => ExportKind::Table,
                        0x02 => ExportKind::Memory,
                        0x03 => ExportKind::Global,
                        b => return Err(DecodeError::BadOpcode(b)),
                    };
                    let index = r.u32()?;
                    module.exports.push(Export { name, kind, index });
                }
            }
            8 => {
                module.start = Some(r.u32()?);
            }
            9 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let flags = r.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::Unsupported("non-active element segment"));
                    }
                    let offset = r.const_expr()?;
                    let n = r.u32()? as usize;
                    let mut funcs = Vec::with_capacity(n);
                    for _ in 0..n {
                        funcs.push(r.u32()?);
                    }
                    module.elems.push(ElemSegment {
                        table: 0,
                        offset,
                        funcs,
                    });
                }
            }
            10 => {
                let count = r.u32()? as usize;
                if count != func_type_indices.len() {
                    return Err(DecodeError::FuncCodeMismatch);
                }
                for type_idx in func_type_indices.iter().copied() {
                    let body_size = r.u32()? as usize;
                    let body_end = r.pos + body_size;
                    let n_local_groups = r.u32()? as usize;
                    let mut locals = Vec::new();
                    for _ in 0..n_local_groups {
                        let n = r.u32()? as usize;
                        let ty = r.val_type()?;
                        locals.extend(std::iter::repeat_n(ty, n));
                    }
                    let code = r.expr()?;
                    if r.pos != body_end {
                        return Err(DecodeError::SectionSize { id: 10 });
                    }
                    module.funcs.push(FuncBody {
                        type_idx,
                        locals,
                        code,
                    });
                }
            }
            11 => {
                let count = r.u32()?;
                for _ in 0..count {
                    let flags = r.u32()?;
                    if flags != 0 {
                        return Err(DecodeError::Unsupported("non-active data segment"));
                    }
                    let offset = r.const_expr()?;
                    let len = r.u32()? as usize;
                    let data = r.bytes(len)?.to_vec();
                    module.data.push(DataSegment {
                        memory: 0,
                        offset,
                        bytes: data,
                    });
                }
            }
            other => return Err(DecodeError::BadOpcode(other)),
        }

        if id != 0 && r.pos != section_end {
            return Err(DecodeError::SectionSize { id });
        }
    }

    if module.funcs.len() != func_type_indices.len() {
        return Err(DecodeError::FuncCodeMismatch);
    }

    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_module_decodes() {
        let bytes = b"\0asm\x01\0\0\0";
        let m = decode(bytes).unwrap();
        assert_eq!(m, Module::default());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"\0ASM\x01\0\0\0"), Err(DecodeError::BadHeader));
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(decode(b"\0asm\x02\0\0\0"), Err(DecodeError::BadHeader));
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decode(b"\0asm"), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn section_out_of_order_rejected() {
        // Type section (1) after function section (3).
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&[3, 1, 0]); // empty function section
        bytes.extend_from_slice(&[1, 1, 0]); // empty type section
        assert_eq!(decode(&bytes), Err(DecodeError::BadSectionOrder(1)));
    }

    #[test]
    fn custom_sections_skipped() {
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        // Custom section: id 0, size 5, name "ab" + 2 bytes payload.
        bytes.extend_from_slice(&[0, 5, 2, b'a', b'b', 1, 2]);
        assert!(decode(&bytes).is_ok());
    }
}

//! The in-memory representation of a decoded module.

use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// A function import declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncImport {
    /// Import module namespace (e.g. `"wasi_snapshot_preview1"`).
    pub module: String,
    /// Import field name (e.g. `"clock_time_get"`).
    pub name: String,
    /// Index into the type section.
    pub type_idx: u32,
}

/// A function defined inside the module.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBody {
    /// Index into the type section.
    pub type_idx: u32,
    /// Declared local variables (beyond the parameters).
    pub locals: Vec<ValType>,
    /// The instruction sequence, terminated by `End`.
    pub code: Vec<Instr>,
}

/// An exported item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// What is being exported.
    pub kind: ExportKind,
    /// Index in the corresponding index space.
    pub index: u32,
}

/// The kind of an export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportKind {
    /// A function.
    Func,
    /// A table.
    Table,
    /// A linear memory.
    Memory,
    /// A global.
    Global,
}

/// A global definition with its constant initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// The global's type.
    pub ty: GlobalType,
    /// Initializer: a single constant instruction.
    pub init: Instr,
}

/// An active element segment (table initializer).
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// Table index (0 in MVP).
    pub table: u32,
    /// Constant offset expression (single instruction).
    pub offset: Instr,
    /// Function indices to place.
    pub funcs: Vec<u32>,
}

/// An active data segment (memory initializer).
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Memory index (0 in MVP).
    pub memory: u32,
    /// Constant offset expression (single instruction).
    pub offset: Instr,
    /// Bytes to place.
    pub bytes: Vec<u8>,
}

/// A decoded WebAssembly module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The type section.
    pub types: Vec<FuncType>,
    /// Imported functions (the only import kind supported).
    pub func_imports: Vec<FuncImport>,
    /// Functions defined in this module.
    pub funcs: Vec<FuncBody>,
    /// Tables (funcref).
    pub tables: Vec<Limits>,
    /// Linear memories (at most one).
    pub memories: Vec<Limits>,
    /// Globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function index.
    pub start: Option<u32>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Data segments.
    pub data: Vec<DataSegment>,
}

impl Module {
    /// Total number of functions (imports + defined).
    #[must_use]
    pub fn func_count(&self) -> usize {
        self.func_imports.len() + self.funcs.len()
    }

    /// Resolves a function index to its type, treating imports as the first
    /// indices per the spec.
    #[must_use]
    pub fn func_type_idx(&self, func_idx: u32) -> Option<u32> {
        let idx = func_idx as usize;
        if idx < self.func_imports.len() {
            Some(self.func_imports[idx].type_idx)
        } else {
            self.funcs
                .get(idx - self.func_imports.len())
                .map(|f| f.type_idx)
        }
    }

    /// Looks up an export by name and kind.
    #[must_use]
    pub fn find_export(&self, name: &str, kind: ExportKind) -> Option<u32> {
        self.exports
            .iter()
            .find(|e| e.name == name && e.kind == kind)
            .map(|e| e.index)
    }

    /// Total size in bytes of all data segments (rough code+data footprint).
    #[must_use]
    pub fn data_size(&self) -> usize {
        self.data.iter().map(|d| d.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_index_space_spans_imports() {
        let mut m = Module::default();
        m.types.push(FuncType::new(&[], &[]));
        m.types.push(FuncType::new(&[ValType::I32], &[]));
        m.func_imports.push(FuncImport {
            module: "env".into(),
            name: "host".into(),
            type_idx: 1,
        });
        m.funcs.push(FuncBody {
            type_idx: 0,
            locals: vec![],
            code: vec![Instr::End],
        });
        assert_eq!(m.func_type_idx(0), Some(1)); // the import
        assert_eq!(m.func_type_idx(1), Some(0)); // the defined function
        assert_eq!(m.func_type_idx(2), None);
        assert_eq!(m.func_count(), 2);
    }

    #[test]
    fn export_lookup() {
        let mut m = Module::default();
        m.exports.push(Export {
            name: "main".into(),
            kind: ExportKind::Func,
            index: 3,
        });
        assert_eq!(m.find_export("main", ExportKind::Func), Some(3));
        assert_eq!(m.find_export("main", ExportKind::Memory), None);
        assert_eq!(m.find_export("other", ExportKind::Func), None);
    }
}

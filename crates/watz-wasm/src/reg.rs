//! Register-form execution: the flat engine lowered one step further, so
//! the hot dispatch loop never pushes or pops an operand stack.
//!
//! [`crate::flat`] already turned structured bodies into a linear opcode
//! array, but its executor still shuffles a runtime operand stack:
//! `local.get` pushes a copy, every operator pops its inputs and pushes its
//! result, and the stack pointer moves on almost every dispatch. Validation
//! makes all of that motion statically known — at any program point the
//! operand-stack *height* is a compile-time constant, so the value "at
//! height `h`" can live in the fixed frame slot `n_locals + h` instead.
//!
//! The register pass exploits exactly that: an **abstract-stack
//! simulation** walks each (fused) flat body once at load time and rewrites
//! every op to carry explicit source/destination frame-slot indices.
//! Locals, intermediates and fused temporaries all live in one flat `u64`
//! frame; a [`RegOp`] reads its operands from slots and writes its result
//! to a slot, and the dispatch loop maintains nothing but a program counter
//! and a frame base.
//!
//! Two further rewrites fall out of the simulation:
//!
//! * **Copy forwarding** — a `local.get` emits *no code at all*: the
//!   abstract stack records that this operand lives in the local's slot,
//!   and the consumer reads it from there directly. A later write to that
//!   local while the forwarded value is still pending inserts a `Move` to
//!   the value's canonical slot first (the classic interpreter-regalloc
//!   hazard), which the simulation detects exactly.
//! * **Stack-polymorphic edges keep explicit fix-ups** — branches that
//!   transfer values (`br`/`br_if` with results, `br_table` arms) become
//!   jumps carrying a static `src → dst × keep` block copy, calls require
//!   their arguments contiguous at the callee's frame base (the simulation
//!   flushes forwarded operands there), and `return` copies results to the
//!   frame base.
//!
//! **Jump-remap re-validation:** lowering inserts fix-up `Move`s in front
//! of fall-through jump-target ops, so every flat-code index is re-pointed
//! through an old→new map (the same discipline as the fusion pass), and
//! [`check_jump_targets`] verifies every remapped target lands on a real
//! instruction before the code ever runs.
//!
//! The pass is all-or-nothing per module: if any function cannot be
//! register-lowered (e.g. a frame too large for the `u16` slot encoding),
//! the whole module stays on the stack-form flat engine — the two frame
//! layouts cannot call each other. `WATZ_NO_REG=1` (any non-empty value
//! other than `0`) pins the stack-form engine for bisection;
//! [`RegStats`] reports what the pass did.
//!
//! Semantics (including every trap) are identical to the stack-form flat
//! engine and the tree-walking oracle; the differential suites run all
//! engines in every fused/unfused × register/stack combination.

use crate::exec::{HostEnv, Memory, Trap, Value, MAX_CALL_DEPTH};
use crate::flat::{
    apply_binop, as_f32, as_f64, as_i32, as_i64, as_u32, as_u64, bad, binop_kind, do_load,
    do_store, from_f32, from_f64, from_i32, from_i64, load_kind, slot_from_value, store_kind,
    value_from_slot, BinOpKind, FlatFunc, FlatFuncDef, FlatModule, FlatOp, LoadKind, Slot,
    StoreKind,
};
use crate::module::Module;
use crate::profile::{OpClass, ProfOp, Profiler};
use crate::types::{FuncType, ValType};

/// True when the `WATZ_NO_REG` environment switch (any non-empty value
/// other than `0`) disables the register pass, keeping the stack-form flat
/// engine reachable for bisection.
pub(crate) fn reg_disabled_by_env() -> bool {
    std::env::var_os("WATZ_NO_REG").is_some_and(|v| !v.is_empty() && v.to_str() != Some("0"))
}

/// Counters from the register-allocation pass over a whole module,
/// reported by [`Instance::reg_stats`](crate::exec::Instance::reg_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegStats {
    /// Functions lowered to register form.
    pub funcs: u64,
    /// Total frame slots allocated (locals + operand positions).
    pub frame_slots: u64,
    /// `local.get` ops forwarded into their consumers (no code emitted).
    pub gets_forwarded: u64,
    /// `Move` fix-ups inserted (local writes, forwarding hazards, edges).
    pub moves_inserted: u64,
    /// Runtime operand-stack pushes/pops replaced by static slot addressing.
    pub stack_ops_eliminated: u64,
}

impl RegStats {
    /// Per-counter `(name, count)` pairs, for coverage assertions and logs.
    #[must_use]
    pub fn counts(&self) -> [(&'static str, u64); 5] {
        [
            ("funcs", self.funcs),
            ("frame_slots", self.frame_slots),
            ("gets_forwarded", self.gets_forwarded),
            ("moves_inserted", self.moves_inserted),
            ("stack_ops_eliminated", self.stack_ops_eliminated),
        ]
    }

    /// Accumulates another module's counters into this one.
    pub fn merge(&mut self, other: &RegStats) {
        self.funcs += other.funcs;
        self.frame_slots += other.frame_slots;
        self.gets_forwarded += other.gets_forwarded;
        self.moves_inserted += other.moves_inserted;
        self.stack_ops_eliminated += other.stack_ops_eliminated;
    }
}

/// A fusable one-operand operator (everything the flat engine expresses as
/// a rewrite of the stack top). Variants mirror the spec's instruction
/// names; the four reinterpret casts are identities on raw slots and never
/// reach the register code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum UnOpKind {
    I32Eqz,
    I64Eqz,
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

/// Applies a one-operand operator to a raw slot.
///
/// # Errors
///
/// Exactly the traps the corresponding plain opcode raises (the float→int
/// truncations).
#[inline]
fn apply_unop(op: UnOpKind, s: Slot) -> Result<Slot, Trap> {
    use crate::exec::{
        trunc_f32_to_i32_s, trunc_f32_to_i64_s, trunc_f32_to_u32, trunc_f32_to_u64,
        trunc_f64_to_i32_s, trunc_f64_to_i64_s, trunc_f64_to_u32, trunc_f64_to_u64,
    };
    use UnOpKind as U;
    Ok(match op {
        U::I32Eqz => u64::from(as_u32(s) == 0),
        U::I64Eqz => u64::from(s == 0),
        U::I32Clz => from_i32(as_i32(s).leading_zeros() as i32),
        U::I32Ctz => from_i32(as_i32(s).trailing_zeros() as i32),
        U::I32Popcnt => from_i32(as_i32(s).count_ones() as i32),
        U::I64Clz => from_i64(i64::from(as_i64(s).leading_zeros())),
        U::I64Ctz => from_i64(i64::from(as_i64(s).trailing_zeros())),
        U::I64Popcnt => from_i64(i64::from(as_i64(s).count_ones())),
        U::F32Abs => from_f32(as_f32(s).abs()),
        U::F32Neg => from_f32(-as_f32(s)),
        U::F32Ceil => from_f32(as_f32(s).ceil()),
        U::F32Floor => from_f32(as_f32(s).floor()),
        U::F32Trunc => from_f32(as_f32(s).trunc()),
        U::F32Nearest => from_f32(as_f32(s).round_ties_even()),
        U::F32Sqrt => from_f32(as_f32(s).sqrt()),
        U::F64Abs => from_f64(as_f64(s).abs()),
        U::F64Neg => from_f64(-as_f64(s)),
        U::F64Ceil => from_f64(as_f64(s).ceil()),
        U::F64Floor => from_f64(as_f64(s).floor()),
        U::F64Trunc => from_f64(as_f64(s).trunc()),
        U::F64Nearest => from_f64(as_f64(s).round_ties_even()),
        U::F64Sqrt => from_f64(as_f64(s).sqrt()),
        U::I32WrapI64 => from_i32(as_i64(s) as i32),
        U::I32TruncF32S => from_i32(trunc_f32_to_i32_s(as_f32(s))?),
        U::I32TruncF32U => u64::from(trunc_f32_to_u32(as_f32(s))?),
        U::I32TruncF64S => from_i32(trunc_f64_to_i32_s(as_f64(s))?),
        U::I32TruncF64U => u64::from(trunc_f64_to_u32(as_f64(s))?),
        U::I64ExtendI32S => from_i64(i64::from(as_i32(s))),
        U::I64ExtendI32U => u64::from(as_u32(s)),
        U::I64TruncF32S => from_i64(trunc_f32_to_i64_s(as_f32(s))?),
        U::I64TruncF32U => trunc_f32_to_u64(as_f32(s))?,
        U::I64TruncF64S => from_i64(trunc_f64_to_i64_s(as_f64(s))?),
        U::I64TruncF64U => trunc_f64_to_u64(as_f64(s))?,
        U::F32ConvertI32S => from_f32(as_i32(s) as f32),
        U::F32ConvertI32U => from_f32(as_u32(s) as f32),
        U::F32ConvertI64S => from_f32(as_i64(s) as f32),
        U::F32ConvertI64U => from_f32(as_u64(s) as f32),
        U::F32DemoteF64 => from_f32(as_f64(s) as f32),
        U::F64ConvertI32S => from_f64(f64::from(as_i32(s))),
        U::F64ConvertI32U => from_f64(f64::from(as_u32(s))),
        U::F64ConvertI64S => from_f64(as_i64(s) as f64),
        U::F64ConvertI64U => from_f64(as_u64(s) as f64),
        U::F64PromoteF32 => from_f64(f64::from(as_f32(s))),
        U::I32Extend8S => from_i32(i32::from(as_i32(s) as i8)),
        U::I32Extend16S => from_i32(i32::from(as_i32(s) as i16)),
        U::I64Extend8S => from_i64(i64::from(as_i64(s) as i8)),
        U::I64Extend16S => from_i64(i64::from(as_i64(s) as i16)),
        U::I64Extend32S => from_i64(i64::from(as_i64(s) as i32)),
    })
}

/// Maps a plain flat opcode to its one-operand operator kind.
#[allow(clippy::too_many_lines)]
fn unop_kind(op: &FlatOp) -> Option<UnOpKind> {
    use FlatOp as F;
    use UnOpKind as U;
    Some(match op {
        F::I32Eqz => U::I32Eqz,
        F::I64Eqz => U::I64Eqz,
        F::I32Clz => U::I32Clz,
        F::I32Ctz => U::I32Ctz,
        F::I32Popcnt => U::I32Popcnt,
        F::I64Clz => U::I64Clz,
        F::I64Ctz => U::I64Ctz,
        F::I64Popcnt => U::I64Popcnt,
        F::F32Abs => U::F32Abs,
        F::F32Neg => U::F32Neg,
        F::F32Ceil => U::F32Ceil,
        F::F32Floor => U::F32Floor,
        F::F32Trunc => U::F32Trunc,
        F::F32Nearest => U::F32Nearest,
        F::F32Sqrt => U::F32Sqrt,
        F::F64Abs => U::F64Abs,
        F::F64Neg => U::F64Neg,
        F::F64Ceil => U::F64Ceil,
        F::F64Floor => U::F64Floor,
        F::F64Trunc => U::F64Trunc,
        F::F64Nearest => U::F64Nearest,
        F::F64Sqrt => U::F64Sqrt,
        F::I32WrapI64 => U::I32WrapI64,
        F::I32TruncF32S => U::I32TruncF32S,
        F::I32TruncF32U => U::I32TruncF32U,
        F::I32TruncF64S => U::I32TruncF64S,
        F::I32TruncF64U => U::I32TruncF64U,
        F::I64ExtendI32S => U::I64ExtendI32S,
        F::I64ExtendI32U => U::I64ExtendI32U,
        F::I64TruncF32S => U::I64TruncF32S,
        F::I64TruncF32U => U::I64TruncF32U,
        F::I64TruncF64S => U::I64TruncF64S,
        F::I64TruncF64U => U::I64TruncF64U,
        F::F32ConvertI32S => U::F32ConvertI32S,
        F::F32ConvertI32U => U::F32ConvertI32U,
        F::F32ConvertI64S => U::F32ConvertI64S,
        F::F32ConvertI64U => U::F32ConvertI64U,
        F::F32DemoteF64 => U::F32DemoteF64,
        F::F64ConvertI32S => U::F64ConvertI32S,
        F::F64ConvertI32U => U::F64ConvertI32U,
        F::F64ConvertI64S => U::F64ConvertI64S,
        F::F64ConvertI64U => U::F64ConvertI64U,
        F::F64PromoteF32 => U::F64PromoteF32,
        F::I32Extend8S => U::I32Extend8S,
        F::I32Extend16S => U::I32Extend16S,
        F::I64Extend8S => U::I64Extend8S,
        F::I64Extend16S => U::I64Extend16S,
        F::I64Extend32S => U::I64Extend32S,
        _ => return None,
    })
}

/// One `br_table` arm in register form: absolute target plus a static
/// `keep`-slot block copy (`src → dst`) for the label's value transfer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegBrEntry {
    pub(crate) target: u32,
    pub(crate) src: u16,
    pub(crate) dst: u16,
    pub(crate) keep: u16,
}

/// A register-form opcode: every operand names a frame slot explicitly;
/// no opcode moves an operand-stack pointer.
///
/// Slot indices are frame-relative (`0..n_locals` are params + locals, the
/// rest operand positions); `dst` is always written last, after all reads.
#[derive(Debug, Clone)]
pub(crate) enum RegOp {
    Unreachable,
    /// Unconditional jump.
    Jump {
        target: u32,
    },
    /// Jumps when `frame[cond]`'s truthiness equals `jump_if`.
    BrIf {
        cond: u16,
        jump_if: bool,
        target: u32,
    },
    /// [`RegOp::Jump`] carrying a branch value transfer: copies `keep`
    /// slots from `src` down to `dst`, then jumps.
    BrMoves {
        target: u32,
        src: u16,
        dst: u16,
        keep: u16,
    },
    /// [`RegOp::BrIf`] carrying a branch value transfer (only performed
    /// when the branch is taken — fall-through slots stay untouched).
    BrIfMoves {
        cond: u16,
        jump_if: bool,
        target: u32,
        src: u16,
        dst: u16,
        keep: u16,
    },
    /// Indexed branch; the last entry is the default arm.
    BrTable {
        idx: u16,
        entries: Box<[RegBrEntry]>,
    },
    /// Copies `n_results` slots from `src` to the frame base and returns.
    Return {
        src: u16,
    },
    /// Call of a function defined in this module; the callee's frame
    /// starts at frame slot `base` (its arguments are already there).
    CallLocal {
        func: u32,
        base: u16,
    },
    /// Call of an imported (host) function; arguments at `base`, results
    /// written back there.
    CallImport {
        func: u32,
        base: u16,
    },
    /// Indirect call: table index in `idx`, arguments at `base`.
    CallIndirect {
        type_idx: u32,
        idx: u16,
        base: u16,
    },
    /// `frame[dst] = frame[a] if frame[cond] != 0 else frame[b]`.
    Select {
        cond: u16,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[src]`.
    Move {
        src: u16,
        dst: u16,
    },
    /// `frame[dst] = bits` (all four constant forms, pre-encoded).
    Const {
        bits: u64,
        dst: u16,
    },
    GlobalGet {
        idx: u32,
        dst: u16,
    },
    GlobalSet {
        idx: u32,
        src: u16,
    },
    /// `frame[dst] = mem[frame[addr] + offset]`.
    Load {
        kind: LoadKind,
        addr: u16,
        offset: u32,
        dst: u16,
    },
    /// `mem[frame[addr] + offset] = frame[val]`.
    Store {
        kind: StoreKind,
        addr: u16,
        val: u16,
        offset: u32,
    },
    MemorySize {
        dst: u16,
    },
    MemoryGrow {
        src: u16,
        dst: u16,
    },
    /// `memory.copy` with its three i32 operands at `args..args + 3`
    /// (dst, src, len).
    MemoryCopy {
        args: u16,
    },
    /// `memory.fill` with its three i32 operands at `args..args + 3`
    /// (dst, val, len).
    MemoryFill {
        args: u16,
    },
    /// `frame[dst] = op(frame[src])`.
    Unop {
        op: UnOpKind,
        src: u16,
        dst: u16,
    },
    /// `frame[dst] = op(frame[a], frame[b])`.
    Binop {
        op: BinOpKind,
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = op(frame[a], k)`.
    BinopK {
        op: BinOpKind,
        a: u16,
        k: u64,
        dst: u16,
    },

    // -- Specialized forms of the generic ops above, selected at lowering
    // time for the operators and access widths that dominate numeric
    // kernels: they skip the second-level `BinOpKind`/`LoadKind` dispatch
    // the generic arms pay. Semantics are bit-identical to the generic
    // forms (same wrapping/IEEE behaviour, same traps — the specialized
    // operators cannot trap).
    /// `frame[dst] = frame[a] +ₙ frame[b]` (i32 wrapping).
    AddI32 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] -ₙ frame[b]` (i32 wrapping).
    SubI32 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] *ₙ frame[b]` (i32 wrapping).
    MulI32 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] +ₙ k` (i32 wrapping; the loop-counter step).
    AddI32K {
        a: u16,
        k: u32,
        dst: u16,
    },
    /// `frame[dst] = frame[a] + frame[b]` (f64).
    AddF64 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] - frame[b]` (f64).
    SubF64 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] * frame[b]` (f64).
    MulF64 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = frame[a] / frame[b]` (f64).
    DivF64 {
        a: u16,
        b: u16,
        dst: u16,
    },
    /// `frame[dst] = mem[frame[addr] + offset]` as i32.
    LoadI32R {
        addr: u16,
        offset: u32,
        dst: u16,
    },
    /// `frame[dst] = mem[frame[addr] + offset]` as f64 bits.
    LoadF64R {
        addr: u16,
        offset: u32,
        dst: u16,
    },
    /// `mem[frame[addr] + offset] = frame[val]` as i32.
    StoreI32R {
        addr: u16,
        val: u16,
        offset: u32,
    },
    /// `mem[frame[addr] + offset] = frame[val]` as f64 bits.
    StoreF64R {
        addr: u16,
        val: u16,
        offset: u32,
    },
    /// [`RegOp::ScaleAddLoad`] specialized to an i32 load.
    ScaleAddLoadI32 {
        base: u16,
        idx: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::ScaleAddLoad`] specialized to an f64 load.
    ScaleAddLoadF64 {
        base: u16,
        idx: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::IdxLAddLoad`] specialized to an i32 load.
    IdxLAddLoadI32 {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::IdxLAddLoad`] specialized to an f64 load.
    IdxLAddLoadF64 {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// `mem[frame[addr] + offset] = frame[a] + frame[b]` (f64, full-width
    /// store) — the `C[x] = C[x] + …` accumulation sink.
    AddStoreF64 {
        a: u16,
        b: u16,
        addr: u16,
        offset: u32,
    },
    /// `mem[frame[addr] + offset] = frame[a] * frame[b]` (f64, full-width
    /// store) — the `C[x] = C[x] * β` scaling sink.
    MulStoreF64 {
        a: u16,
        b: u16,
        addr: u16,
        offset: u32,
    },

    // Check-free twins of the specialized memory forms: the range
    // analysis proved the access in bounds, so there is no trap path.
    // Only the elision pass emits these, and the verifier re-derives
    // every proof before a verified instance runs.
    /// [`RegOp::LoadI32R`] with a statically proven bound.
    LoadI32N {
        addr: u16,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::LoadF64R`] with a statically proven bound.
    LoadF64N {
        addr: u16,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::StoreI32R`] with a statically proven bound.
    StoreI32N {
        addr: u16,
        val: u16,
        offset: u32,
    },
    /// [`RegOp::StoreF64R`] with a statically proven bound.
    StoreF64N {
        addr: u16,
        val: u16,
        offset: u32,
    },
    /// [`RegOp::ScaleAddLoadI32`] with a statically proven bound.
    ScaleAddLoadI32N {
        base: u16,
        idx: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::ScaleAddLoadF64`] with a statically proven bound.
    ScaleAddLoadF64N {
        base: u16,
        idx: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::IdxLAddLoadI32`] with a statically proven bound.
    IdxLAddLoadI32N {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::IdxLAddLoadF64`] with a statically proven bound.
    IdxLAddLoadF64N {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        offset: u32,
        dst: u16,
    },
    /// [`RegOp::AddStoreF64`] with a statically proven bound.
    AddStoreF64N {
        a: u16,
        b: u16,
        addr: u16,
        offset: u32,
    },
    /// [`RegOp::MulStoreF64`] with a statically proven bound.
    MulStoreF64N {
        a: u16,
        b: u16,
        addr: u16,
        offset: u32,
    },
    /// Jumps when `!(frame[a] <ₛ frame[b])` (i32) — the dominant
    /// loop-exit shape.
    CmpBrLtSZ {
        a: u16,
        b: u16,
        target: u32,
    },
    /// Jumps when `frame[a] <ₛ frame[b]` (i32).
    CmpBrLtSNZ {
        a: u16,
        b: u16,
        target: u32,
    },
    /// `op(frame[a], frame[b])` stored at `mem[frame[addr] + offset]`.
    BinopStore {
        op: BinOpKind,
        a: u16,
        b: u16,
        addr: u16,
        kind: StoreKind,
        offset: u32,
    },
    /// Jumps when `op(frame[a], frame[b])`'s truthiness equals `jump_if`.
    CmpBr {
        op: BinOpKind,
        a: u16,
        b: u16,
        jump_if: bool,
        target: u32,
    },
    /// [`RegOp::CmpBr`] with an inline constant right operand.
    CmpBrK {
        op: BinOpKind,
        a: u16,
        k: u32,
        jump_if: bool,
        target: u32,
    },
    /// `frame[dst] = frame[base] + frame[idx]*k` (array-address tail; the
    /// `i32.add; load` shape uses `k == 1`).
    ScaleAdd {
        base: u16,
        idx: u16,
        k: u32,
        dst: u16,
    },
    /// [`RegOp::ScaleAdd`] plus the trailing load.
    ScaleAddLoad {
        base: u16,
        idx: u16,
        k: u32,
        kind: LoadKind,
        offset: u32,
        dst: u16,
    },
    /// `frame[dst] = frame[base] + (frame[part] + frame[z])*k` (2-D
    /// row-column address tail).
    IdxLAdd {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        dst: u16,
    },
    /// [`RegOp::IdxLAdd`] plus the trailing load.
    IdxLAddLoad {
        base: u16,
        part: u16,
        z: u16,
        k: u32,
        kind: LoadKind,
        offset: u32,
        dst: u16,
    },
}

/// A function lowered to register form.
#[derive(Debug)]
pub(crate) struct RegFunc {
    pub(crate) n_params: u32,
    /// Params + declared locals (frame slots `0..n_locals`).
    pub(crate) n_locals: u32,
    pub(crate) n_results: u32,
    /// Locals plus the maximum operand height: the whole frame.
    pub(crate) frame_size: u32,
    pub(crate) result_types: Box<[ValType]>,
    pub(crate) code: Box<[RegOp]>,
    /// Retirement metadata, 1:1 with `code`: the guest instructions each
    /// register op accounts for when profiling is on.
    pub(crate) prof: Box<[ProfOp]>,
}

/// A module's register-form code, carried by
/// [`FlatModule`](crate::flat::FlatModule) when the pass ran.
#[derive(Debug)]
pub(crate) struct RegProgram {
    /// Indexed like the flat function space; `None` for imports.
    pub(crate) funcs: Box<[Option<RegFunc>]>,
    pub(crate) stats: RegStats,
}

/// Picks the specialized form of a two-operand op when one exists (see
/// the specialization block in [`RegOp`]).
fn sel_binop(op: BinOpKind, a: u16, b: u16, dst: u16) -> RegOp {
    use BinOpKind as B;
    match op {
        B::I32Add => RegOp::AddI32 { a, b, dst },
        B::I32Sub => RegOp::SubI32 { a, b, dst },
        B::I32Mul => RegOp::MulI32 { a, b, dst },
        B::F64Add => RegOp::AddF64 { a, b, dst },
        B::F64Sub => RegOp::SubF64 { a, b, dst },
        B::F64Mul => RegOp::MulF64 { a, b, dst },
        B::F64Div => RegOp::DivF64 { a, b, dst },
        _ => RegOp::Binop { op, a, b, dst },
    }
}

/// Picks the specialized form of an op-with-constant when one exists.
fn sel_binop_k(op: BinOpKind, a: u16, k: u64, dst: u16) -> RegOp {
    match op {
        BinOpKind::I32Add => RegOp::AddI32K {
            a,
            k: k as u32,
            dst,
        },
        _ => RegOp::BinopK { op, a, k, dst },
    }
}

/// Picks the specialized load form. On raw slots an f32 load equals an
/// i32 load (4 bytes, zero-extended) and an i64 load equals an f64 load
/// (full slot), so two specialized forms cover the four full-width kinds.
fn sel_load(kind: LoadKind, addr: u16, offset: u32, dst: u16) -> RegOp {
    match kind {
        LoadKind::I32 | LoadKind::F32 => RegOp::LoadI32R { addr, offset, dst },
        LoadKind::I64 | LoadKind::F64 => RegOp::LoadF64R { addr, offset, dst },
        _ => RegOp::Load {
            kind,
            addr,
            offset,
            dst,
        },
    }
}

/// Picks the specialized store form (same width-aliasing as [`sel_load`];
/// `i64.store32` also writes exactly the low four bytes).
fn sel_store(kind: StoreKind, addr: u16, val: u16, offset: u32) -> RegOp {
    match kind {
        StoreKind::I32 | StoreKind::F32 | StoreKind::I64S32 => {
            RegOp::StoreI32R { addr, val, offset }
        }
        StoreKind::I64 | StoreKind::F64 => RegOp::StoreF64R { addr, val, offset },
        _ => RegOp::Store {
            kind,
            addr,
            val,
            offset,
        },
    }
}

/// Picks the specialized scaled-index load form.
fn sel_scale_add_load(base: u16, idx: u16, k: u32, kind: LoadKind, offset: u32, dst: u16) -> RegOp {
    match kind {
        LoadKind::I32 | LoadKind::F32 => RegOp::ScaleAddLoadI32 {
            base,
            idx,
            k,
            offset,
            dst,
        },
        LoadKind::I64 | LoadKind::F64 => RegOp::ScaleAddLoadF64 {
            base,
            idx,
            k,
            offset,
            dst,
        },
        _ => RegOp::ScaleAddLoad {
            base,
            idx,
            k,
            kind,
            offset,
            dst,
        },
    }
}

/// Picks the specialized 2-D scaled-index load form.
#[allow(clippy::too_many_arguments)]
fn sel_idx_l_add_load(
    base: u16,
    part: u16,
    z: u16,
    k: u32,
    kind: LoadKind,
    offset: u32,
    dst: u16,
) -> RegOp {
    match kind {
        LoadKind::I32 | LoadKind::F32 => RegOp::IdxLAddLoadI32 {
            base,
            part,
            z,
            k,
            offset,
            dst,
        },
        LoadKind::I64 | LoadKind::F64 => RegOp::IdxLAddLoadF64 {
            base,
            part,
            z,
            k,
            offset,
            dst,
        },
        _ => RegOp::IdxLAddLoad {
            base,
            part,
            z,
            k,
            kind,
            offset,
            dst,
        },
    }
}

/// Picks the specialized compute-and-store form.
fn sel_binop_store(
    op: BinOpKind,
    kind: StoreKind,
    a: u16,
    b: u16,
    addr: u16,
    offset: u32,
) -> RegOp {
    match (op, kind) {
        (BinOpKind::F64Add, StoreKind::F64) => RegOp::AddStoreF64 { a, b, addr, offset },
        (BinOpKind::F64Mul, StoreKind::F64) => RegOp::MulStoreF64 { a, b, addr, offset },
        _ => RegOp::BinopStore {
            op,
            a,
            b,
            addr,
            kind,
            offset,
        },
    }
}

/// Picks the specialized compare-and-branch form (the `i < n` loop exit).
fn sel_cmp_br(op: BinOpKind, a: u16, b: u16, jump_if: bool, target: u32) -> RegOp {
    match (op, jump_if) {
        (BinOpKind::I32LtS, false) => RegOp::CmpBrLtSZ { a, b, target },
        (BinOpKind::I32LtS, true) => RegOp::CmpBrLtSNZ { a, b, target },
        _ => RegOp::CmpBr {
            op,
            a,
            b,
            jump_if,
            target,
        },
    }
}

/// Where a pending abstract-stack value currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// At its canonical slot `n_locals + position`.
    Canon,
    /// Forwarded: still in the named (local) frame slot, no copy made.
    Fwd(u16),
}

/// The per-function lowering state: the emitted code plus the abstract
/// stack tracking where each pending operand value lives.
struct Lowerer<'a> {
    out: Vec<RegOp>,
    vstack: Vec<Src>,
    n_locals: usize,
    max_height: usize,
    stats: &'a mut RegStats,
}

fn slot16(idx: usize) -> Result<u16, Trap> {
    u16::try_from(idx).map_err(|_| bad("register lowering: frame exceeds u16 slots"))
}

impl Lowerer<'_> {
    fn canon(&self, pos: usize) -> Result<u16, Trap> {
        slot16(self.n_locals + pos)
    }

    /// The slot currently holding the value at stack position `pos`.
    fn slot_of(&self, pos: usize) -> Result<u16, Trap> {
        match self.vstack[pos] {
            Src::Canon => self.canon(pos),
            Src::Fwd(s) => Ok(s),
        }
    }

    /// Pops the top operand, returning the slot its value lives in.
    fn pop(&mut self) -> Result<u16, Trap> {
        let pos = self
            .vstack
            .len()
            .checked_sub(1)
            .ok_or_else(|| bad("register lowering: operand stack underflow"))?;
        let s = self.slot_of(pos)?;
        self.vstack.pop();
        self.stats.stack_ops_eliminated += 1;
        Ok(s)
    }

    /// Pushes a canonical operand, returning the slot to write it to.
    fn push(&mut self) -> Result<u16, Trap> {
        let s = self.canon(self.vstack.len())?;
        self.vstack.push(Src::Canon);
        self.max_height = self.max_height.max(self.vstack.len());
        self.stats.stack_ops_eliminated += 1;
        Ok(s)
    }

    fn emit_move(&mut self, src: u16, dst: u16) {
        self.out.push(RegOp::Move { src, dst });
        self.stats.moves_inserted += 1;
    }

    /// Flushes every forwarded entry except the top `keep_top` to its
    /// canonical slot (branch/call edges need canonical state).
    fn flush_below(&mut self, keep_top: usize) -> Result<(), Trap> {
        let n = self.vstack.len().saturating_sub(keep_top);
        for pos in 0..n {
            if let Src::Fwd(s) = self.vstack[pos] {
                let dst = self.canon(pos)?;
                self.emit_move(s, dst);
                self.vstack[pos] = Src::Canon;
            }
        }
        Ok(())
    }

    fn flush_all(&mut self) -> Result<(), Trap> {
        self.flush_below(0)
    }

    /// Before a write to local slot `local`: any pending operand still
    /// forwarded from that local (except the top `keep_top`, which the
    /// writing op itself consumes) must be copied out first.
    fn guard_local_write(&mut self, local: u16, keep_top: usize) -> Result<(), Trap> {
        let n = self.vstack.len().saturating_sub(keep_top);
        for pos in 0..n {
            if self.vstack[pos] == Src::Fwd(local) {
                let dst = self.canon(pos)?;
                self.emit_move(local, dst);
                self.vstack[pos] = Src::Canon;
            }
        }
        Ok(())
    }

    /// Validates and converts a local index carried by a (possibly
    /// unvalidated) flat op.
    fn local(&self, idx: u32) -> Result<u16, Trap> {
        if (idx as usize) < self.n_locals {
            slot16(idx as usize)
        } else {
            Err(bad("register lowering: local index out of range"))
        }
    }
}

/// Marks every jump target in (possibly fused) flat code.
fn mark_targets(ops: &[FlatOp]) -> Result<Vec<bool>, Trap> {
    let mut is_target = vec![false; ops.len() + 1];
    let mut mark = |t: u32| {
        is_target
            .get_mut(t as usize)
            .map(|b| *b = true)
            .ok_or_else(|| bad("jump target out of bounds"))
    };
    for op in ops {
        match op {
            FlatOp::Jump { target }
            | FlatOp::JumpIfZero { target }
            | FlatOp::JumpIfNonZero { target }
            | FlatOp::Br { target, .. }
            | FlatOp::BrIf { target, .. }
            | FlatOp::FusedCmpBrZ { target, .. }
            | FlatOp::FusedCmpBrNZ { target, .. }
            | FlatOp::FusedCmpBrLLZ { target, .. }
            | FlatOp::FusedCmpBrLLNZ { target, .. }
            | FlatOp::FusedCmpBrLKZ { target, .. }
            | FlatOp::FusedCmpBrLKNZ { target, .. }
            | FlatOp::FusedCmpBrSLZ { target, .. }
            | FlatOp::FusedCmpBrSLNZ { target, .. } => mark(*target)?,
            FlatOp::BrTable { entries } => {
                for e in entries.iter() {
                    mark(e.target)?;
                }
            }
            _ => {}
        }
    }
    Ok(is_target)
}

/// The load-time register-code validator: every absolute jump target (and
/// every `br_table` entry) must land on a real instruction after the
/// old→new remap.
fn check_jump_targets(code: &[RegOp]) -> Result<(), Trap> {
    let n = code.len() as u32;
    let check = |t: u32| {
        if t < n {
            Ok(())
        } else {
            Err(bad("register jump target out of bounds"))
        }
    };
    for op in code {
        match op {
            RegOp::Jump { target }
            | RegOp::BrIf { target, .. }
            | RegOp::BrMoves { target, .. }
            | RegOp::BrIfMoves { target, .. }
            | RegOp::CmpBr { target, .. }
            | RegOp::CmpBrK { target, .. }
            | RegOp::CmpBrLtSZ { target, .. }
            | RegOp::CmpBrLtSNZ { target, .. } => check(*target)?,
            RegOp::BrTable { entries, .. } => {
                for e in entries.iter() {
                    check(e.target)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Lowers one (fused) flat function to register form.
///
/// `heights` is the operand-stack entry height of every flat op, recorded
/// during the structural lowering — it re-seeds the abstract stack at
/// dynamically-unreachable fall-through code where no simulation state
/// survives.
///
/// # Errors
///
/// Returns [`Trap::Instantiation`] when the function cannot be
/// register-lowered (frame larger than the `u16` slot encoding, or an
/// invariant violated by malformed input); the caller falls back to the
/// stack-form engine for the whole module.
#[allow(clippy::too_many_lines)]
pub(crate) fn lower_func(
    f: &FlatFunc,
    heights: &[u32],
    module: &Module,
    stats: &mut RegStats,
) -> Result<RegFunc, Trap> {
    let ops = &f.code;
    let n = ops.len();
    if heights.len() != n {
        return Err(bad("register lowering: height table out of sync"));
    }
    let is_target = mark_targets(ops)?;
    let n_locals = f.n_locals as usize;
    let n_results = f.n_results as usize;

    let mut lo = Lowerer {
        out: Vec::with_capacity(n),
        vstack: Vec::new(),
        n_locals,
        max_height: 0,
        stats,
    };
    let mut old2new = vec![0u32; n + 1];
    // The previous op ended its basic block: the abstract stack must be
    // re-seeded from the recorded entry height (canonical by convention —
    // every edge into a target flushes first).
    let mut terminated = false;

    // Retirement metadata, kept 1:1 with `lo.out`. Each flat op's weight
    // accumulates into `pending` and attaches to the *first* register op
    // emitted on its behalf (fix-up moves included — they cannot trap and
    // run before the main op on the same path, so inclusive-at-fetch
    // retirement stays exact even on trapping programs). Emit-less ops
    // (forwarded gets, drops, same-slot sets) leave their weight pending
    // for the next emission on the same fall-through path.
    let mut rprof: Vec<ProfOp> = Vec::with_capacity(n);
    let mut pending = ProfOp::zero();
    macro_rules! sync_prof {
        () => {
            while rprof.len() < lo.out.len() {
                rprof.push(std::mem::take(&mut pending));
            }
        };
    }

    // The arity of a call target, for arg/result placement.
    let call_arity = |func: u32| -> Result<(usize, usize), Trap> {
        let ty_idx = module
            .func_type_idx(func)
            .ok_or_else(|| bad("call target out of range"))?;
        let ty = module
            .types
            .get(ty_idx as usize)
            .ok_or_else(|| bad("call type index out of range"))?;
        Ok((ty.params.len(), ty.results.len()))
    };

    for i in 0..n {
        if terminated {
            lo.vstack.clear();
            lo.vstack.resize(heights[i] as usize, Src::Canon);
            lo.max_height = lo.max_height.max(lo.vstack.len());
            terminated = false;
        } else if is_target[i] {
            // Fall-through into a jump target: forwarded operands become
            // canonical here so every predecessor agrees on the state.
            lo.flush_all()?;
            sync_prof!();
            if pending != ProfOp::zero() {
                // Emit-less ops left retirement weight pending and no
                // flush move was emitted to carry it. A self-move keeps
                // the weight on the fall-through path only — jumping
                // predecessors already retired their own ops.
                if lo.n_locals == 0 {
                    lo.max_height = lo.max_height.max(1);
                }
                lo.emit_move(0, 0);
                sync_prof!();
            }
            if lo.vstack.len() != heights[i] as usize {
                return Err(bad("register lowering: height mismatch at jump target"));
            }
        }
        old2new[i] = lo.out.len() as u32;
        pending.merge(&f.prof[i]);
        // Binop-set forms retire their trailing `local.set` only after
        // the (possibly trapping) binop succeeds: its weight joins
        // `pending` after this op's sync, attaching to the next emission
        // on the fall-through path (or a carrier move at a join).
        let deferred_set = matches!(
            &ops[i],
            FlatOp::FusedBinopLLSet { .. }
                | FlatOp::FusedBinopLKSet { .. }
                | FlatOp::FusedBinopSLSet { .. }
                | FlatOp::FusedBinopSet { .. }
        );

        match &ops[i] {
            FlatOp::Unreachable => {
                lo.out.push(RegOp::Unreachable);
                terminated = true;
            }
            FlatOp::Jump { target } => {
                lo.flush_all()?;
                lo.out.push(RegOp::Jump { target: *target });
                terminated = true;
            }
            FlatOp::JumpIfZero { target } => {
                lo.flush_below(1)?;
                let cond = lo.pop()?;
                lo.out.push(RegOp::BrIf {
                    cond,
                    jump_if: false,
                    target: *target,
                });
            }
            FlatOp::JumpIfNonZero { target } => {
                lo.flush_below(1)?;
                let cond = lo.pop()?;
                lo.out.push(RegOp::BrIf {
                    cond,
                    jump_if: true,
                    target: *target,
                });
            }
            FlatOp::Br {
                target,
                keep,
                height,
            } => {
                lo.flush_all()?;
                let h = lo.vstack.len();
                if h < *keep as usize {
                    return Err(bad("register lowering: br keeps more than the stack"));
                }
                let src = slot16(n_locals + h - *keep as usize)?;
                let dst = slot16(n_locals + *height as usize)?;
                if *keep == 0 || src == dst {
                    lo.out.push(RegOp::Jump { target: *target });
                } else {
                    lo.out.push(RegOp::BrMoves {
                        target: *target,
                        src,
                        dst,
                        keep: slot16(*keep as usize)?,
                    });
                }
                terminated = true;
            }
            FlatOp::BrIf {
                target,
                keep,
                height,
            } => {
                lo.flush_below(1)?;
                let cond = lo.pop()?;
                let h = lo.vstack.len();
                if h < *keep as usize {
                    return Err(bad("register lowering: br_if keeps more than the stack"));
                }
                let src = slot16(n_locals + h - *keep as usize)?;
                let dst = slot16(n_locals + *height as usize)?;
                if *keep == 0 || src == dst {
                    lo.out.push(RegOp::BrIf {
                        cond,
                        jump_if: true,
                        target: *target,
                    });
                } else {
                    lo.out.push(RegOp::BrIfMoves {
                        cond,
                        jump_if: true,
                        target: *target,
                        src,
                        dst,
                        keep: slot16(*keep as usize)?,
                    });
                }
            }
            FlatOp::BrTable { entries } => {
                lo.flush_below(1)?;
                let idx = lo.pop()?;
                let h = lo.vstack.len();
                let mut reg_entries = Vec::with_capacity(entries.len());
                for e in entries.iter() {
                    let keep = e.keep as usize;
                    if h < keep {
                        return Err(bad("register lowering: br_table keeps more than the stack"));
                    }
                    reg_entries.push(RegBrEntry {
                        target: e.target,
                        src: slot16(n_locals + h - keep)?,
                        dst: slot16(n_locals + e.height as usize)?,
                        keep: slot16(keep)?,
                    });
                }
                lo.out.push(RegOp::BrTable {
                    idx,
                    entries: reg_entries.into_boxed_slice(),
                });
                terminated = true;
            }
            FlatOp::Return => {
                lo.flush_all()?;
                let h = lo.vstack.len();
                if h < n_results {
                    return Err(bad("register lowering: missing results at return"));
                }
                lo.out.push(RegOp::Return {
                    src: slot16(n_locals + h - n_results)?,
                });
                terminated = true;
            }
            FlatOp::CallLocal { func } | FlatOp::CallImport { func } => {
                let (n_args, n_res) = call_arity(*func)?;
                lo.flush_all()?;
                let h = lo.vstack.len();
                if h < n_args {
                    return Err(bad("register lowering: missing call arguments"));
                }
                let base = slot16(n_locals + h - n_args)?;
                for _ in 0..n_args {
                    lo.pop()?;
                }
                for _ in 0..n_res {
                    lo.push()?;
                }
                lo.out.push(match &ops[i] {
                    FlatOp::CallLocal { func } => RegOp::CallLocal { func: *func, base },
                    _ => RegOp::CallImport { func: *func, base },
                });
            }
            FlatOp::CallIndirect { type_idx } => {
                let ty = module
                    .types
                    .get(*type_idx as usize)
                    .ok_or_else(|| bad("call_indirect type index out of range"))?;
                let (n_args, n_res) = (ty.params.len(), ty.results.len());
                lo.flush_all()?;
                let idx = lo.pop()?;
                let h = lo.vstack.len();
                if h < n_args {
                    return Err(bad("register lowering: missing call arguments"));
                }
                let base = slot16(n_locals + h - n_args)?;
                for _ in 0..n_args {
                    lo.pop()?;
                }
                for _ in 0..n_res {
                    lo.push()?;
                }
                lo.out.push(RegOp::CallIndirect {
                    type_idx: *type_idx,
                    idx,
                    base,
                });
            }

            FlatOp::Drop => {
                lo.pop()?;
            }
            FlatOp::Select => {
                let cond = lo.pop()?;
                let b = lo.pop()?;
                let a = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(RegOp::Select { cond, a, b, dst });
            }

            FlatOp::LocalGet(idx) => {
                let s = lo.local(*idx)?;
                lo.vstack.push(Src::Fwd(s));
                lo.max_height = lo.max_height.max(lo.vstack.len());
                lo.stats.gets_forwarded += 1;
                lo.stats.stack_ops_eliminated += 1;
            }
            FlatOp::LocalSet(idx) => {
                let dst = lo.local(*idx)?;
                let src = lo.pop()?;
                if src != dst {
                    lo.guard_local_write(dst, 0)?;
                    lo.emit_move(src, dst);
                }
            }
            FlatOp::LocalTee(idx) => {
                let dst = lo.local(*idx)?;
                let top = lo
                    .vstack
                    .len()
                    .checked_sub(1)
                    .ok_or_else(|| bad("register lowering: tee on empty stack"))?;
                let src = lo.slot_of(top)?;
                if src != dst {
                    lo.guard_local_write(dst, 1)?;
                    lo.emit_move(src, dst);
                }
            }
            FlatOp::GlobalGet(idx) => {
                let dst = lo.push()?;
                lo.out.push(RegOp::GlobalGet { idx: *idx, dst });
            }
            FlatOp::GlobalSet(idx) => {
                let src = lo.pop()?;
                lo.out.push(RegOp::GlobalSet { idx: *idx, src });
            }

            FlatOp::MemorySize => {
                let dst = lo.push()?;
                lo.out.push(RegOp::MemorySize { dst });
            }
            FlatOp::MemoryGrow => {
                let src = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(RegOp::MemoryGrow { src, dst });
            }
            FlatOp::MemoryCopy | FlatOp::MemoryFill => {
                lo.flush_all()?;
                let h = lo.vstack.len();
                if h < 3 {
                    return Err(bad("register lowering: missing bulk-memory operands"));
                }
                let args = slot16(n_locals + h - 3)?;
                for _ in 0..3 {
                    lo.pop()?;
                }
                lo.out.push(match &ops[i] {
                    FlatOp::MemoryCopy => RegOp::MemoryCopy { args },
                    _ => RegOp::MemoryFill { args },
                });
            }

            FlatOp::Const(v) => {
                let dst = lo.push()?;
                lo.out.push(RegOp::Const { bits: *v, dst });
            }

            FlatOp::FusedBinopLL { a, b, op } => {
                let (a, b) = (lo.local(*a)?, lo.local(*b)?);
                let dst = lo.push()?;
                lo.out.push(sel_binop(*op, a, b, dst));
            }
            FlatOp::FusedBinopLK { a, k, op } => {
                let a = lo.local(*a)?;
                let dst = lo.push()?;
                lo.out.push(sel_binop_k(*op, a, *k, dst));
            }
            FlatOp::FusedBinopLLSet { a, b, op, dst } => {
                let (a, b) = (lo.local(*a)?, lo.local(*b)?);
                let dst = lo.local(*dst)?;
                lo.guard_local_write(dst, 0)?;
                lo.out.push(sel_binop(*op, a, b, dst));
            }
            FlatOp::FusedBinopLKSet { a, k, op, dst } => {
                let a = lo.local(*a)?;
                let dst = lo.local(*dst)?;
                lo.guard_local_write(dst, 0)?;
                lo.out.push(sel_binop_k(*op, a, u64::from(*k), dst));
            }
            FlatOp::FusedBinopSL { b, op } => {
                let b = lo.local(*b)?;
                let a = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(sel_binop(*op, a, b, dst));
            }
            FlatOp::FusedBinopSLSet { b, op, dst } => {
                let b = lo.local(*b)?;
                let a = lo.pop()?;
                let dst = lo.local(*dst)?;
                lo.guard_local_write(dst, 0)?;
                lo.out.push(sel_binop(*op, a, b, dst));
            }
            FlatOp::FusedBinopSLStore {
                b,
                op,
                offset,
                kind,
            } => {
                let b = lo.local(*b)?;
                let a = lo.pop()?;
                let addr = lo.pop()?;
                lo.out
                    .push(sel_binop_store(*op, *kind, a, b, addr, *offset));
            }
            FlatOp::FusedBinopLLStore {
                a,
                b,
                op,
                offset,
                kind,
            } => {
                let (a, b) = (lo.local(*a)?, lo.local(*b)?);
                let addr = lo.pop()?;
                lo.out
                    .push(sel_binop_store(*op, *kind, a, b, addr, *offset));
            }
            FlatOp::FusedBinopSet { op, dst } => {
                let b = lo.pop()?;
                let a = lo.pop()?;
                let dst = lo.local(*dst)?;
                lo.guard_local_write(dst, 0)?;
                lo.out.push(sel_binop(*op, a, b, dst));
            }
            FlatOp::LocalCopy { src, dst } => {
                let (src, dst) = (lo.local(*src)?, lo.local(*dst)?);
                if src != dst {
                    lo.guard_local_write(dst, 0)?;
                    lo.emit_move(src, dst);
                }
            }
            FlatOp::FusedLoadL { addr, offset, kind } => {
                let addr = lo.local(*addr)?;
                let dst = lo.push()?;
                lo.out.push(sel_load(*kind, addr, *offset, dst));
            }
            FlatOp::FusedStoreL { val, offset, kind } => {
                let val = lo.local(*val)?;
                let addr = lo.pop()?;
                lo.out.push(sel_store(*kind, addr, val, *offset));
            }
            FlatOp::FusedAddLoad { offset, kind } => {
                let idx = lo.pop()?;
                let base = lo.pop()?;
                let dst = lo.push()?;
                lo.out
                    .push(sel_scale_add_load(base, idx, 1, *kind, *offset, dst));
            }
            FlatOp::FusedBinopKS { k, op } => {
                let a = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(sel_binop_k(*op, a, *k, dst));
            }
            FlatOp::FusedScaleAdd { k } => {
                let idx = lo.pop()?;
                let base = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(RegOp::ScaleAdd {
                    base,
                    idx,
                    k: *k,
                    dst,
                });
            }
            FlatOp::FusedScaleAddLoad { k, offset, kind } => {
                let idx = lo.pop()?;
                let base = lo.pop()?;
                let dst = lo.push()?;
                lo.out
                    .push(sel_scale_add_load(base, idx, *k, *kind, *offset, dst));
            }
            FlatOp::FusedIdxLAdd { z, k } => {
                let z = lo.local(*z)?;
                let part = lo.pop()?;
                let base = lo.pop()?;
                let dst = lo.push()?;
                lo.out.push(RegOp::IdxLAdd {
                    base,
                    part,
                    z,
                    k: *k,
                    dst,
                });
            }
            FlatOp::FusedIdxLAddLoad { z, k, offset, kind } => {
                let z = lo.local(*z)?;
                let part = lo.pop()?;
                let base = lo.pop()?;
                let dst = lo.push()?;
                lo.out
                    .push(sel_idx_l_add_load(base, part, z, *k, *kind, *offset, dst));
            }
            FlatOp::FusedBinopStore { op, offset, kind } => {
                let b = lo.pop()?;
                let a = lo.pop()?;
                let addr = lo.pop()?;
                lo.out
                    .push(sel_binop_store(*op, *kind, a, b, addr, *offset));
            }
            FlatOp::FusedCmpBrZ { op, target } | FlatOp::FusedCmpBrNZ { op, target } => {
                lo.flush_below(2)?;
                let b = lo.pop()?;
                let a = lo.pop()?;
                let jump_if = matches!(&ops[i], FlatOp::FusedCmpBrNZ { .. });
                lo.out.push(sel_cmp_br(*op, a, b, jump_if, *target));
            }
            FlatOp::FusedCmpBrLLZ { a, b, op, target }
            | FlatOp::FusedCmpBrLLNZ { a, b, op, target } => {
                lo.flush_all()?;
                let (a, b) = (lo.local(*a)?, lo.local(*b)?);
                let jump_if = matches!(&ops[i], FlatOp::FusedCmpBrLLNZ { .. });
                lo.out.push(sel_cmp_br(*op, a, b, jump_if, *target));
            }
            FlatOp::FusedCmpBrLKZ { a, k, op, target }
            | FlatOp::FusedCmpBrLKNZ { a, k, op, target } => {
                lo.flush_all()?;
                let a = lo.local(*a)?;
                lo.out.push(RegOp::CmpBrK {
                    op: *op,
                    a,
                    k: *k,
                    jump_if: matches!(&ops[i], FlatOp::FusedCmpBrLKNZ { .. }),
                    target: *target,
                });
            }
            FlatOp::FusedCmpBrSLZ { b, op, target } | FlatOp::FusedCmpBrSLNZ { b, op, target } => {
                lo.flush_below(1)?;
                let b = lo.local(*b)?;
                let a = lo.pop()?;
                let jump_if = matches!(&ops[i], FlatOp::FusedCmpBrSLNZ { .. });
                lo.out.push(sel_cmp_br(*op, a, b, jump_if, *target));
            }

            // Reinterpret casts are identities on raw slots: no code, the
            // value stays wherever it lives.
            FlatOp::I32ReinterpretF32
            | FlatOp::I64ReinterpretF64
            | FlatOp::F32ReinterpretI32
            | FlatOp::F64ReinterpretI64 => {}

            plain => {
                if let Some(op) = binop_kind(plain) {
                    let b = lo.pop()?;
                    let a = lo.pop()?;
                    let dst = lo.push()?;
                    lo.out.push(sel_binop(op, a, b, dst));
                } else if let Some(op) = unop_kind(plain) {
                    let src = lo.pop()?;
                    let dst = lo.push()?;
                    lo.out.push(RegOp::Unop { op, src, dst });
                } else if let Some((kind, offset)) = load_kind(plain) {
                    let addr = lo.pop()?;
                    let dst = lo.push()?;
                    lo.out.push(sel_load(kind, addr, offset, dst));
                } else if let Some((kind, offset)) = store_kind(plain) {
                    let val = lo.pop()?;
                    let addr = lo.pop()?;
                    lo.out.push(sel_store(kind, addr, val, offset));
                } else {
                    return Err(bad("register lowering: unhandled flat op"));
                }
            }
        }
        sync_prof!();
        if deferred_set {
            pending.merge(&ProfOp::of(OpClass::Local, 1));
        }
    }
    old2new[n] = lo.out.len() as u32;
    // Every body ends on a terminator (flat lowering closes with Return),
    // which always emits, so no weight can be left pending.
    debug_assert_eq!(rprof.len(), lo.out.len());
    debug_assert_eq!(pending, ProfOp::zero());
    if crate::verify::strict() && (rprof.len() != lo.out.len() || pending != ProfOp::zero()) {
        return Err(bad("register lowering produced skewed code/prof arrays"));
    }

    // Re-point every jump through the old→new map, then re-validate.
    let mut code = lo.out;
    for op in &mut code {
        let remap = |t: &mut u32| {
            *t = old2new[*t as usize];
        };
        match op {
            RegOp::Jump { target }
            | RegOp::BrIf { target, .. }
            | RegOp::BrMoves { target, .. }
            | RegOp::BrIfMoves { target, .. }
            | RegOp::CmpBr { target, .. }
            | RegOp::CmpBrK { target, .. }
            | RegOp::CmpBrLtSZ { target, .. }
            | RegOp::CmpBrLtSNZ { target, .. } => remap(target),
            RegOp::BrTable { entries, .. } => {
                for e in entries.iter_mut() {
                    remap(&mut e.target);
                }
            }
            _ => {}
        }
    }
    check_jump_targets(&code)?;

    slot16(n_locals + lo.max_height)?; // the whole frame must stay u16-addressable
    let frame_size = (n_locals + lo.max_height) as u32;
    let stats = lo.stats;
    stats.funcs += 1;
    stats.frame_slots += u64::from(frame_size);

    Ok(RegFunc {
        n_params: f.n_params,
        n_locals: f.n_locals,
        n_results: f.n_results,
        frame_size,
        result_types: f.result_types.clone(),
        code: code.into_boxed_slice(),
        prof: rprof.into_boxed_slice(),
    })
}

/// Saved caller state for a guest-level call inside the register engine.
struct Frame<'a> {
    func: &'a RegFunc,
    pc: usize,
    base: usize,
}

/// Invokes function `func_idx` on the register engine.
///
/// # Errors
///
/// Returns exactly the traps the stack-form flat engine (and the
/// tree-walking oracle) would.
#[allow(clippy::too_many_arguments)] // One borrow per disjoint Instance field.
pub(crate) fn run(
    flat: &FlatModule,
    types: &[FuncType],
    table: &[Option<u32>],
    memory: &mut Memory,
    globals: &mut [Value],
    host: &mut dyn HostEnv,
    func_idx: u32,
    args: &[Value],
    profile: Option<&mut crate::profile::ExecProfile>,
) -> Result<Vec<Value>, Trap> {
    let prog = flat.reg.as_ref().expect("register program prepared");
    if let FlatFuncDef::Import(imp) = &flat.funcs[func_idx as usize] {
        let results = host.call(&imp.module, &imp.name, memory, args)?;
        crate::exec::check_host_results(&imp.module, &imp.name, results.len(), imp.n_results)?;
        return Ok(results);
    }
    let entry = prog.funcs[func_idx as usize]
        .as_ref()
        .expect("local function register-lowered");
    let mut mem = memory.take_data();
    // Monomorphize the dispatch loop on the profiler: the `None` arm
    // instantiates with the no-op profiler, whose guarded counting code
    // is erased entirely — the default hot path gains no work.
    let result = match profile {
        Some(p) => run_loop(
            prog, flat, types, table, &mut mem, memory, globals, host, entry, args, p,
        ),
        None => run_loop(
            prog,
            flat,
            types,
            table,
            &mut mem,
            memory,
            globals,
            host,
            entry,
            args,
            &mut crate::profile::NoProfile,
        ),
    };
    memory.put_data(mem);
    result
}

/// The register engine's dispatch loop: no operand stack, only frames of
/// statically-addressed slots (and the cached memory vec, handed back to
/// [`Memory`] around host calls).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_loop<P: Profiler>(
    prog: &RegProgram,
    flat: &FlatModule,
    types: &[FuncType],
    table: &[Option<u32>],
    mem: &mut Vec<u8>,
    memory: &mut Memory,
    globals: &mut [Value],
    host: &mut dyn HostEnv,
    entry: &RegFunc,
    args: &[Value],
    prof: &mut P,
) -> Result<Vec<Value>, Trap> {
    let mut stack: Vec<Slot> = vec![0; entry.frame_size as usize];
    for (i, v) in args.iter().enumerate() {
        stack[i] = slot_from_value(*v);
    }

    let mut frames: Vec<Frame> = Vec::new();
    let mut cur: &RegFunc = entry;
    let mut base: usize = 0;
    let mut pc: usize = 0;

    // Frame-slot read/write (bounds-checked against the one shared vec;
    // every frame was sized at its call).
    macro_rules! r {
        ($s:expr) => {
            stack[base + $s as usize]
        };
    }
    macro_rules! call_local {
        ($callee:expr, $off:expr) => {{
            let callee: &RegFunc = $callee;
            if frames.len() + 1 >= MAX_CALL_DEPTH {
                return Err(Trap::CallStackExhausted);
            }
            let new_base = base + $off as usize;
            let need = new_base + callee.frame_size as usize;
            if stack.len() < need {
                stack.resize(need, 0);
            }
            // Non-param locals start zeroed; slots may hold stale data
            // from a deeper earlier call (the vec never shrinks).
            stack[new_base + callee.n_params as usize..new_base + callee.n_locals as usize].fill(0);
            frames.push(Frame {
                func: cur,
                pc,
                base,
            });
            cur = callee;
            base = new_base;
            pc = 0;
        }};
    }
    macro_rules! call_import {
        ($func:expr, $off:expr) => {{
            let FlatFuncDef::Import(imp) = &flat.funcs[$func as usize] else {
                unreachable!("resolved at lowering")
            };
            let abase = base + $off as usize;
            let host_args: Vec<Value> = imp
                .params
                .iter()
                .enumerate()
                .map(|(k, ty)| value_from_slot(*ty, stack[abase + k]))
                .collect();
            // The host sees (and may grow) the real memory.
            memory.put_data(std::mem::take(mem));
            let call_result = host.call(&imp.module, &imp.name, memory, &host_args);
            *mem = memory.take_data();
            let results = call_result?;
            let declared = types[flat.func_type_idx[$func as usize] as usize]
                .results
                .len();
            crate::exec::check_host_results(&imp.module, &imp.name, results.len(), declared)?;
            for (k, v) in results.into_iter().enumerate() {
                stack[abase + k] = slot_from_value(v);
            }
        }};
    }

    // Counts a taken branch as a loop back edge when it jumps backward
    // (`pc` is already past the current op, so `target < pc` is exact).
    macro_rules! backedge {
        ($target:expr) => {
            if P::ENABLED && ($target as usize) < pc {
                prof.backedge();
            }
        };
    }

    loop {
        let op = &cur.code[pc];
        // Inclusive at fetch: a trapping op still retires its guest
        // instructions, matching the tree oracle's dispatch-then-trap.
        if P::ENABLED {
            prof.retire(&cur.prof[pc]);
        }
        pc += 1;
        match op {
            RegOp::Unreachable => return Err(Trap::Unreachable),
            RegOp::Jump { target } => {
                backedge!(*target);
                pc = *target as usize;
            }
            RegOp::BrIf {
                cond,
                jump_if,
                target,
            } => {
                if (as_u32(r!(*cond)) != 0) == *jump_if {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::BrMoves {
                target,
                src,
                dst,
                keep,
            } => {
                let (s, d, k) = (base + *src as usize, base + *dst as usize, *keep as usize);
                stack.copy_within(s..s + k, d);
                backedge!(*target);
                pc = *target as usize;
            }
            RegOp::BrIfMoves {
                cond,
                jump_if,
                target,
                src,
                dst,
                keep,
            } => {
                if (as_u32(r!(*cond)) != 0) == *jump_if {
                    let (s, d, k) = (base + *src as usize, base + *dst as usize, *keep as usize);
                    stack.copy_within(s..s + k, d);
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::BrTable { idx, entries } => {
                let i = as_u32(r!(*idx)) as usize;
                let e = entries[i.min(entries.len() - 1)];
                if e.keep > 0 && e.src != e.dst {
                    let (s, d, k) = (
                        base + e.src as usize,
                        base + e.dst as usize,
                        e.keep as usize,
                    );
                    stack.copy_within(s..s + k, d);
                }
                backedge!(e.target);
                pc = e.target as usize;
            }
            RegOp::Return { src } => {
                let n = cur.n_results as usize;
                let s = base + *src as usize;
                if s != base && n > 0 {
                    stack.copy_within(s..s + n, base);
                }
                match frames.pop() {
                    Some(fr) => {
                        cur = fr.func;
                        pc = fr.pc;
                        base = fr.base;
                    }
                    None => {
                        return Ok(cur
                            .result_types
                            .iter()
                            .enumerate()
                            .map(|(k, ty)| value_from_slot(*ty, stack[base + k]))
                            .collect());
                    }
                }
            }
            RegOp::CallLocal { func, base: off } => {
                let callee = prog.funcs[*func as usize]
                    .as_ref()
                    .expect("local function register-lowered");
                call_local!(callee, *off);
            }
            RegOp::CallImport { func, base: off } => call_import!(*func, *off),
            RegOp::CallIndirect {
                type_idx,
                idx,
                base: off,
            } => {
                let i = as_u32(r!(*idx)) as usize;
                let slot = *table.get(i).ok_or(Trap::TableOutOfBounds)?;
                let f = slot.ok_or(Trap::UndefinedTableElement)?;
                let actual = &types[flat.func_type_idx[f as usize] as usize];
                let expected = &types[*type_idx as usize];
                if actual != expected {
                    return Err(Trap::IndirectTypeMismatch);
                }
                match &flat.funcs[f as usize] {
                    FlatFuncDef::Import(_) => call_import!(f, *off),
                    FlatFuncDef::Local(_) => {
                        let callee = prog.funcs[f as usize]
                            .as_ref()
                            .expect("local function register-lowered");
                        call_local!(callee, *off);
                    }
                }
            }

            RegOp::Select { cond, a, b, dst } => {
                let v = if as_u32(r!(*cond)) != 0 {
                    r!(*a)
                } else {
                    r!(*b)
                };
                r!(*dst) = v;
            }
            RegOp::Move { src, dst } => r!(*dst) = r!(*src),
            RegOp::Const { bits, dst } => r!(*dst) = *bits,
            RegOp::GlobalGet { idx, dst } => r!(*dst) = slot_from_value(globals[*idx as usize]),
            RegOp::GlobalSet { idx, src } => {
                globals[*idx as usize] =
                    value_from_slot(flat.global_types[*idx as usize], r!(*src));
            }

            RegOp::Load {
                kind,
                addr,
                offset,
                dst,
            } => {
                let a = as_i32(r!(*addr));
                r!(*dst) = do_load(*kind, mem, a, *offset)?;
            }
            RegOp::Store {
                kind,
                addr,
                val,
                offset,
            } => {
                let a = as_i32(r!(*addr));
                do_store(*kind, mem, a, *offset, r!(*val))?;
            }
            RegOp::MemorySize { dst } => {
                r!(*dst) = from_i32((mem.len() / crate::PAGE_SIZE) as i32);
            }
            RegOp::MemoryGrow { src, dst } => {
                let delta = as_u32(r!(*src));
                r!(*dst) = from_i32(Memory::grow_raw(mem, memory.max_pages(), delta));
            }
            RegOp::MemoryCopy { args } => {
                let a = base + *args as usize;
                let (dst, src, len) =
                    (as_u32(stack[a]), as_u32(stack[a + 1]), as_u32(stack[a + 2]));
                let mem_len = mem.len() as u64;
                if u64::from(src) + u64::from(len) > mem_len
                    || u64::from(dst) + u64::from(len) > mem_len
                {
                    return Err(Trap::MemoryOutOfBounds);
                }
                mem.copy_within(src as usize..(src + len) as usize, dst as usize);
            }
            RegOp::MemoryFill { args } => {
                let a = base + *args as usize;
                let (dst, val, len) = (
                    as_u32(stack[a]),
                    as_u32(stack[a + 1]) as u8,
                    as_u32(stack[a + 2]),
                );
                if u64::from(dst) + u64::from(len) > mem.len() as u64 {
                    return Err(Trap::MemoryOutOfBounds);
                }
                mem[dst as usize..(dst + len) as usize].fill(val);
            }

            RegOp::Unop { op, src, dst } => r!(*dst) = apply_unop(*op, r!(*src))?,
            RegOp::Binop { op, a, b, dst } => {
                r!(*dst) = apply_binop(*op, r!(*a), r!(*b))?;
            }
            RegOp::BinopK { op, a, k, dst } => {
                r!(*dst) = apply_binop(*op, r!(*a), *k)?;
            }

            RegOp::AddI32 { a, b, dst } => {
                r!(*dst) = from_i32(as_i32(r!(*a)).wrapping_add(as_i32(r!(*b))));
            }
            RegOp::SubI32 { a, b, dst } => {
                r!(*dst) = from_i32(as_i32(r!(*a)).wrapping_sub(as_i32(r!(*b))));
            }
            RegOp::MulI32 { a, b, dst } => {
                r!(*dst) = from_i32(as_i32(r!(*a)).wrapping_mul(as_i32(r!(*b))));
            }
            RegOp::AddI32K { a, k, dst } => {
                r!(*dst) = from_i32(as_i32(r!(*a)).wrapping_add(*k as i32));
            }
            RegOp::AddF64 { a, b, dst } => {
                r!(*dst) = from_f64(as_f64(r!(*a)) + as_f64(r!(*b)));
            }
            RegOp::SubF64 { a, b, dst } => {
                r!(*dst) = from_f64(as_f64(r!(*a)) - as_f64(r!(*b)));
            }
            RegOp::MulF64 { a, b, dst } => {
                r!(*dst) = from_f64(as_f64(r!(*a)) * as_f64(r!(*b)));
            }
            RegOp::DivF64 { a, b, dst } => {
                r!(*dst) = from_f64(as_f64(r!(*a)) / as_f64(r!(*b)));
            }
            RegOp::LoadI32R { addr, offset, dst } => {
                let a = as_i32(r!(*addr));
                let b: [u8; 4] = crate::exec::mem_load(mem, a, *offset)?;
                r!(*dst) = u64::from(u32::from_le_bytes(b));
            }
            RegOp::LoadF64R { addr, offset, dst } => {
                let a = as_i32(r!(*addr));
                let b: [u8; 8] = crate::exec::mem_load(mem, a, *offset)?;
                r!(*dst) = u64::from_le_bytes(b);
            }
            RegOp::StoreI32R { addr, val, offset } => {
                let a = as_i32(r!(*addr));
                crate::exec::mem_store(mem, a, *offset, &(r!(*val) as u32).to_le_bytes())?;
            }
            RegOp::StoreF64R { addr, val, offset } => {
                let a = as_i32(r!(*addr));
                crate::exec::mem_store(mem, a, *offset, &r!(*val).to_le_bytes())?;
            }
            RegOp::ScaleAddLoadI32 {
                base: b,
                idx,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let addr = as_i32(r!(*b)).wrapping_add(idx.wrapping_mul(*k as i32));
                let bytes: [u8; 4] = crate::exec::mem_load(mem, addr, *offset)?;
                r!(*dst) = u64::from(u32::from_le_bytes(bytes));
            }
            RegOp::ScaleAddLoadF64 {
                base: b,
                idx,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let addr = as_i32(r!(*b)).wrapping_add(idx.wrapping_mul(*k as i32));
                let bytes: [u8; 8] = crate::exec::mem_load(mem, addr, *offset)?;
                r!(*dst) = u64::from_le_bytes(bytes);
            }
            RegOp::IdxLAddLoadI32 {
                base: b,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                let addr = as_i32(r!(*b)).wrapping_add(idx);
                let bytes: [u8; 4] = crate::exec::mem_load(mem, addr, *offset)?;
                r!(*dst) = u64::from(u32::from_le_bytes(bytes));
            }
            RegOp::IdxLAddLoadF64 {
                base: b,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                let addr = as_i32(r!(*b)).wrapping_add(idx);
                let bytes: [u8; 8] = crate::exec::mem_load(mem, addr, *offset)?;
                r!(*dst) = u64::from_le_bytes(bytes);
            }
            RegOp::AddStoreF64 { a, b, addr, offset } => {
                let v = as_f64(r!(*a)) + as_f64(r!(*b));
                let a = as_i32(r!(*addr));
                crate::exec::mem_store(mem, a, *offset, &v.to_bits().to_le_bytes())?;
            }
            RegOp::MulStoreF64 { a, b, addr, offset } => {
                let v = as_f64(r!(*a)) * as_f64(r!(*b));
                let a = as_i32(r!(*addr));
                crate::exec::mem_store(mem, a, *offset, &v.to_bits().to_le_bytes())?;
            }
            RegOp::LoadI32N { addr, offset, dst } => {
                let a = as_i32(r!(*addr));
                let b: [u8; 4] = crate::exec::nc_load(mem, a, *offset);
                r!(*dst) = u64::from(u32::from_le_bytes(b));
            }
            RegOp::LoadF64N { addr, offset, dst } => {
                let a = as_i32(r!(*addr));
                let b: [u8; 8] = crate::exec::nc_load(mem, a, *offset);
                r!(*dst) = u64::from_le_bytes(b);
            }
            RegOp::StoreI32N { addr, val, offset } => {
                let a = as_i32(r!(*addr));
                crate::exec::nc_store(mem, a, *offset, &(r!(*val) as u32).to_le_bytes());
            }
            RegOp::StoreF64N { addr, val, offset } => {
                let a = as_i32(r!(*addr));
                crate::exec::nc_store(mem, a, *offset, &r!(*val).to_le_bytes());
            }
            RegOp::ScaleAddLoadI32N {
                base: b,
                idx,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let addr = as_i32(r!(*b)).wrapping_add(idx.wrapping_mul(*k as i32));
                let bytes: [u8; 4] = crate::exec::nc_load(mem, addr, *offset);
                r!(*dst) = u64::from(u32::from_le_bytes(bytes));
            }
            RegOp::ScaleAddLoadF64N {
                base: b,
                idx,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let addr = as_i32(r!(*b)).wrapping_add(idx.wrapping_mul(*k as i32));
                let bytes: [u8; 8] = crate::exec::nc_load(mem, addr, *offset);
                r!(*dst) = u64::from_le_bytes(bytes);
            }
            RegOp::IdxLAddLoadI32N {
                base: b,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                let addr = as_i32(r!(*b)).wrapping_add(idx);
                let bytes: [u8; 4] = crate::exec::nc_load(mem, addr, *offset);
                r!(*dst) = u64::from(u32::from_le_bytes(bytes));
            }
            RegOp::IdxLAddLoadF64N {
                base: b,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                let addr = as_i32(r!(*b)).wrapping_add(idx);
                let bytes: [u8; 8] = crate::exec::nc_load(mem, addr, *offset);
                r!(*dst) = u64::from_le_bytes(bytes);
            }
            RegOp::AddStoreF64N { a, b, addr, offset } => {
                let v = as_f64(r!(*a)) + as_f64(r!(*b));
                let a = as_i32(r!(*addr));
                crate::exec::nc_store(mem, a, *offset, &v.to_bits().to_le_bytes());
            }
            RegOp::MulStoreF64N { a, b, addr, offset } => {
                let v = as_f64(r!(*a)) * as_f64(r!(*b));
                let a = as_i32(r!(*addr));
                crate::exec::nc_store(mem, a, *offset, &v.to_bits().to_le_bytes());
            }
            RegOp::CmpBrLtSZ { a, b, target } => {
                if as_i32(r!(*a)) >= as_i32(r!(*b)) {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::CmpBrLtSNZ { a, b, target } => {
                if as_i32(r!(*a)) < as_i32(r!(*b)) {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::BinopStore {
                op,
                a,
                b,
                addr,
                kind,
                offset,
            } => {
                let v = apply_binop(*op, r!(*a), r!(*b))?;
                let addr = as_i32(r!(*addr));
                do_store(*kind, mem, addr, *offset, v)?;
            }
            RegOp::CmpBr {
                op,
                a,
                b,
                jump_if,
                target,
            } => {
                let v = apply_binop(*op, r!(*a), r!(*b))?;
                if (as_u32(v) != 0) == *jump_if {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::CmpBrK {
                op,
                a,
                k,
                jump_if,
                target,
            } => {
                let v = apply_binop(*op, r!(*a), u64::from(*k))?;
                if (as_u32(v) != 0) == *jump_if {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            RegOp::ScaleAdd {
                base: b,
                idx,
                k,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let bv = as_i32(r!(*b));
                r!(*dst) = from_i32(bv.wrapping_add(idx.wrapping_mul(*k as i32)));
            }
            RegOp::ScaleAddLoad {
                base: b,
                idx,
                k,
                kind,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*idx));
                let addr = as_i32(r!(*b)).wrapping_add(idx.wrapping_mul(*k as i32));
                r!(*dst) = do_load(*kind, mem, addr, *offset)?;
            }
            RegOp::IdxLAdd {
                base: b,
                part,
                z,
                k,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                r!(*dst) = from_i32(as_i32(r!(*b)).wrapping_add(idx));
            }
            RegOp::IdxLAddLoad {
                base: b,
                part,
                z,
                k,
                kind,
                offset,
                dst,
            } => {
                let idx = as_i32(r!(*part))
                    .wrapping_add(as_i32(r!(*z)))
                    .wrapping_mul(*k as i32);
                let addr = as_i32(r!(*b)).wrapping_add(idx);
                r!(*dst) = do_load(*kind, mem, addr, *offset)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::exec::{ExecMode, Instance, NoHost};
    use crate::instr::Instr as I;
    use crate::types::BlockType;

    /// Runs an export on the oracle and the register engine (fused and
    /// unfused); the register instances must actually be register-lowered.
    fn run_reg_vs_oracle(
        bytes: &[u8],
        name: &str,
        args: &[Value],
    ) -> Vec<Result<Vec<Value>, Trap>> {
        let module = crate::load(bytes).unwrap();
        let mut out = Vec::new();
        let mut interp =
            Instance::instantiate(&module, ExecMode::Interpreted, &mut NoHost).unwrap();
        out.push(interp.invoke(&mut NoHost, name, args));
        for fuse in [true, false] {
            let mut inst =
                Instance::instantiate_with_engine(&module, ExecMode::Aot, fuse, true, &mut NoHost)
                    .unwrap();
            assert!(
                inst.reg_stats().is_some(),
                "register pass unexpectedly fell back (fuse={fuse})"
            );
            out.push(inst.invoke(&mut NoHost, name, args));
        }
        out
    }

    fn assert_reg_agrees(bytes: &[u8], name: &str, args: &[Value], ctx: &str) {
        let outcomes = run_reg_vs_oracle(bytes, name, args);
        assert_eq!(outcomes[0], outcomes[1], "{ctx}: fused register engine");
        assert_eq!(outcomes[0], outcomes[2], "{ctx}: unfused register engine");
    }

    #[test]
    fn reg_op_size_does_not_regress() {
        // The whole code array is walked on every dispatch; the ceiling is
        // the same 24 bytes the flat engine holds (set by `BrTable`'s fat
        // `Box<[RegBrEntry]>`).
        assert!(std::mem::size_of::<RegOp>() <= 24);
    }

    #[test]
    fn forwarded_local_is_flushed_before_overwrite() {
        // `local.get 0` forwards x; the fused `x = x + 1` then overwrites
        // the local, so the pending operand must be copied out first:
        // result is x_old + (x_old + 1), not (x_old+1)*2.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::LocalGet(0),
                I::LocalGet(0),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(0),
                I::LocalGet(0),
                I::I32Add,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        assert_reg_agrees(&bytes, "f", &[Value::I32(10)], "set hazard");
        let out = run_reg_vs_oracle(&bytes, "f", &[Value::I32(10)])
            .swap_remove(1)
            .unwrap();
        assert_eq!(out, vec![Value::I32(21)]);
    }

    #[test]
    fn forwarded_local_survives_tee() {
        // `local.tee 0` rewrites local 0 while an earlier `local.get 0`
        // is still pending: (x + y) with local0 becoming y, then + local0.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::LocalGet(0),
                I::LocalGet(1),
                I::LocalTee(0),
                I::I32Add,
                I::LocalGet(0),
                I::I32Add,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        assert_reg_agrees(&bytes, "f", &[Value::I32(7), Value::I32(5)], "tee hazard");
        let out = run_reg_vs_oracle(&bytes, "f", &[Value::I32(7), Value::I32(5)])
            .swap_remove(1)
            .unwrap();
        assert_eq!(out, vec![Value::I32(17)]); // (7 + 5) + 5
    }

    #[test]
    fn conditional_branch_with_value_transfer() {
        // A `br_if` that must move its kept value below live fall-through
        // operands lowers to `BrIfMoves`: the copy happens only when the
        // branch is taken.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::I32Const(100),
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(5),
                I::I32Const(42),
                I::LocalGet(0),
                I::BrIf(0),
                I::I32Add,
                I::End,
                I::I32Add,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        for (arg, want) in [(1, 142), (0, 147)] {
            assert_reg_agrees(&bytes, "f", &[Value::I32(arg)], "br_if moves");
            let out = run_reg_vs_oracle(&bytes, "f", &[Value::I32(arg)])
                .swap_remove(1)
                .unwrap();
            assert_eq!(out, vec![Value::I32(want)], "arg {arg}");
        }
    }

    #[test]
    fn calls_place_arguments_at_the_callee_frame_base() {
        // Caller operands below the arguments survive the call; forwarded
        // argument values are flushed into the outgoing frame slots.
        let mut b = ModuleBuilder::new();
        let bin = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let callee = b.add_func(
            bin,
            &[],
            vec![I::LocalGet(0), I::LocalGet(1), I::I32Sub, I::End],
        );
        let f = b.add_func(
            bin,
            &[],
            vec![
                I::I32Const(1000),
                I::LocalGet(0),
                I::LocalGet(1),
                I::Call(callee),
                I::I32Add,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        assert_reg_agrees(&bytes, "f", &[Value::I32(30), Value::I32(12)], "call");
        let out = run_reg_vs_oracle(&bytes, "f", &[Value::I32(30), Value::I32(12)])
            .swap_remove(1)
            .unwrap();
        assert_eq!(out, vec![Value::I32(1018)]);
    }

    #[test]
    fn recursion_reuses_stale_frames_with_zeroed_locals() {
        // A recursive countdown whose body relies on a zero-initialised
        // declared local: returning from a deep call leaves stale slots in
        // the shared frame vec, which the next call must re-zero.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32], // declared local, must read as 0 every call
            vec![
                I::LocalGet(0),
                I::If(BlockType::Value(ValType::I32)),
                I::LocalGet(0),
                I::I32Const(1),
                I::I32Sub,
                I::Call(0),
                I::LocalGet(1), // always 0
                I::I32Add,
                I::LocalGet(0),
                I::I32Add,
                I::Else,
                I::I32Const(0),
                I::End,
                I::End,
            ],
        );
        b.export_func("sum", f);
        let bytes = b.build();
        assert_reg_agrees(&bytes, "sum", &[Value::I32(10)], "recursion");
        let out = run_reg_vs_oracle(&bytes, "sum", &[Value::I32(10)])
            .swap_remove(1)
            .unwrap();
        assert_eq!(out, vec![Value::I32(55)]);
    }

    #[test]
    fn reg_stats_report_the_pass_live() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                I::LocalGet(0),
                I::LocalSet(1), // LocalCopy -> Move
                I::LocalGet(1),
                I::I32Const(3),
                I::I32Mul,
                I::End,
            ],
        );
        b.export_func("f", f);
        let module = crate::load(&b.build()).unwrap();
        let inst =
            Instance::instantiate_with_engine(&module, ExecMode::Aot, true, true, &mut NoHost)
                .unwrap();
        let stats = inst.reg_stats().expect("register pass ran");
        assert!(stats.funcs > 0, "{stats:?}");
        assert!(stats.frame_slots > 0, "{stats:?}");
        assert!(stats.moves_inserted > 0, "{stats:?}");
        assert!(stats.stack_ops_eliminated > 0, "{stats:?}");
        // And the stack-form instance reports nothing.
        let stack_form =
            Instance::instantiate_with_engine(&module, ExecMode::Aot, true, false, &mut NoHost)
                .unwrap();
        assert!(stack_form.reg_stats().is_none());
    }

    #[test]
    fn unlowerable_function_falls_back_to_the_stack_engine() {
        // A local index past the frame skips validation but must not
        // produce register code: the whole module falls back (reg_stats
        // absent) instead of erroring or mis-addressing slots.
        use crate::module::{FuncBody, Module};
        let module = Module {
            types: vec![FuncType {
                params: vec![],
                results: vec![],
            }],
            func_imports: vec![],
            funcs: vec![FuncBody {
                type_idx: 0,
                locals: vec![],
                code: vec![I::LocalGet(9), I::Drop, I::End],
            }],
            tables: vec![],
            memories: vec![],
            globals: vec![],
            exports: vec![],
            start: None,
            elems: vec![],
            data: vec![],
        };
        // Verification is off: the IR verifier (correctly) rejects this
        // deliberately un-validated module outright, which is covered by
        // the verifier's own negative tests; here the subject is fallback.
        let inst = Instance::instantiate_with_analysis(
            &module,
            ExecMode::Aot,
            true,
            true,
            true,
            false,
            &mut NoHost,
        )
        .unwrap();
        assert!(inst.reg_stats().is_none(), "must fall back to stack form");
    }
}

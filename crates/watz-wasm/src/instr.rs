//! The WebAssembly instruction set supported by the engine.
//!
//! Coverage: the full MVP numeric/control/memory instruction set, plus the
//! sign-extension operators and the bulk-memory `memory.copy`/`memory.fill`
//! (compiled C leans on `memcpy`/`memset`, so WAMR-targeting toolchains emit
//! these).

use crate::types::BlockType;

/// Static memory-access immediate: alignment hint and constant offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemArg {
    /// Alignment exponent (2^align bytes); a hint only.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// Convenience constructor with zero offset.
    #[must_use]
    pub fn align(align: u32) -> Self {
        MemArg { align, offset: 0 }
    }

    /// Constructor with offset.
    #[must_use]
    pub fn new(align: u32, offset: u32) -> Self {
        MemArg { align, offset }
    }
}

/// A single instruction.
///
/// Function bodies are flat `Vec<Instr>` sequences where structure is
/// expressed by `Block`/`Loop`/`If`/`Else`/`End` markers, exactly mirroring
/// the binary format.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // Variants mirror the spec's instruction names 1:1.
pub enum Instr {
    // Control.
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    BrTable { targets: Vec<u32>, default: u32 },
    Return,
    Call(u32),
    CallIndirect { type_idx: u32, table: u32 },

    // Parametric.
    Drop,
    Select,

    // Variables.
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    // Memory loads.
    I32Load(MemArg),
    I64Load(MemArg),
    F32Load(MemArg),
    F64Load(MemArg),
    I32Load8S(MemArg),
    I32Load8U(MemArg),
    I32Load16S(MemArg),
    I32Load16U(MemArg),
    I64Load8S(MemArg),
    I64Load8U(MemArg),
    I64Load16S(MemArg),
    I64Load16U(MemArg),
    I64Load32S(MemArg),
    I64Load32U(MemArg),

    // Memory stores.
    I32Store(MemArg),
    I64Store(MemArg),
    F32Store(MemArg),
    F64Store(MemArg),
    I32Store8(MemArg),
    I32Store16(MemArg),
    I64Store8(MemArg),
    I64Store16(MemArg),
    I64Store32(MemArg),

    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,

    // Constants.
    I32Const(i32),
    I64Const(i64),
    F32Const(f32),
    F64Const(f64),

    // i32 comparisons.
    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,

    // i64 comparisons.
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,

    // f32 comparisons.
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,

    // f64 comparisons.
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    // i32 arithmetic.
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    // i64 arithmetic.
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    // f32 arithmetic.
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    // f64 arithmetic.
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    // Conversions.
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,

    // Sign extension.
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

impl Instr {
    /// True for instructions that open a new control frame.
    #[must_use]
    pub fn opens_block(&self) -> bool {
        matches!(self, Instr::Block(_) | Instr::Loop(_) | Instr::If(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockType;

    #[test]
    fn block_openers() {
        assert!(Instr::Block(BlockType::Empty).opens_block());
        assert!(Instr::Loop(BlockType::Empty).opens_block());
        assert!(Instr::If(BlockType::Empty).opens_block());
        assert!(!Instr::End.opens_block());
        assert!(!Instr::I32Add.opens_block());
    }
}

//! Intra-function value-range analysis over the lowered IRs, feeding
//! bounds-check elision on the flat and register engines.
//!
//! # What the analysis computes
//!
//! A single forward walk per function body tracks, for every operand
//! (stack slot on the flat engine, frame slot on the register engine), a
//! **value number**: a hash-consed symbolic name such that two operands
//! with the same value number are guaranteed to hold the same bits at
//! runtime. On top of the value numbers the walk keeps two facts:
//!
//! - an **interval** `[lo, hi]` on the u32 interpretation of a value,
//!   assigned only when it provably cannot wrap (constants, and the
//!   closed arithmetic the address chains use: non-overflowing add/mul,
//!   `and`-masking, unsigned div/rem/shift by constants, and the fused
//!   `ScaleAdd`/`IdxLAdd` address tails);
//! - a **coverage map** from the value number of an address operand to
//!   the largest `offset + width` end point already accessed (checked or
//!   proven) at that address in the current straight-line region.
//!
//! A memory access is **proven in bounds** when either
//!
//! 1. *(interval)* `hi + offset + width <= min_memory_bytes`, the
//!    memory's minimum size — linear memory only ever grows, so the
//!    minimum is a lower bound on `mem.len()` for the whole run; or
//! 2. *(subsumption)* an earlier access in the same straight-line region
//!    already checked (or proved) the same address value number up to at
//!    least `offset + width`. The earlier access dominates: region
//!    boundaries are exactly the jump targets, so the only way into the
//!    middle of a region is to fall through its start, and the earlier
//!    access either trapped (the later one never runs) or established
//!    the bound. Calls and `memory.grow` never invalidate coverage —
//!    nothing can shrink a memory — and conditional branches only leave
//!    a region, never enter it.
//!
//! Proven accesses are rewritten to the check-free opcode forms
//! ([`crate::flat::FlatOp::LoadNC`] and friends on the flat engine, the
//! `*N` forms on the register engine). The rewrite is re-proven from
//! scratch by [`crate::verify`] on every verified instantiation: the
//! verifier runs this same deterministic analysis over the *rewritten*
//! body and refuses any check-free opcode it cannot prove, so the
//! optimization can never outrun the analysis.
//!
//! Set `WATZ_NO_ELIDE=1` to keep every access on the checked path (the
//! analysis still runs for stats when requested explicitly).

use std::collections::HashMap;

use crate::flat::{self, BinOpKind, FlatFunc, FlatOp, LoadKind, StoreKind};
use crate::reg::{RegFunc, RegOp};

/// Counters for the value-range analysis and the bounds-check elision it
/// feeds, summed over the flat and register forms of a module. Exposed
/// like [`crate::FusionStats`] via
/// [`Instance::range_stats`](crate::exec::Instance::range_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Function bodies analyzed (flat and register forms counted
    /// separately).
    pub funcs: u64,
    /// Memory-access sites examined (loads, stores, and the fused forms
    /// carrying an access).
    pub accesses: u64,
    /// Accesses proven in bounds by the interval fact alone.
    pub proven_interval: u64,
    /// Accesses proven in bounds by an earlier dominating access to the
    /// same address value number.
    pub proven_subsumed: u64,
    /// Proven accesses actually rewritten to a check-free opcode (only
    /// the opcode shapes with a check-free twin are rewritten).
    pub elided: u64,
}

impl RangeStats {
    /// Total accesses proven in bounds, by either fact.
    #[must_use]
    pub fn proven(&self) -> u64 {
        self.proven_interval + self.proven_subsumed
    }

    /// Per-counter `(name, count)` pairs, for coverage assertions and
    /// logs.
    #[must_use]
    pub fn counts(&self) -> [(&'static str, u64); 5] {
        [
            ("funcs", self.funcs),
            ("accesses", self.accesses),
            ("proven_interval", self.proven_interval),
            ("proven_subsumed", self.proven_subsumed),
            ("elided", self.elided),
        ]
    }

    /// Accumulates another module's counters into this one.
    pub fn merge(&mut self, other: &RangeStats) {
        self.funcs += other.funcs;
        self.accesses += other.accesses;
        self.proven_interval += other.proven_interval;
        self.proven_subsumed += other.proven_subsumed;
        self.elided += other.elided;
    }
}

/// True when the `WATZ_NO_ELIDE` environment switch (any non-empty value
/// other than `0`) disables bounds-check elision, keeping the fully
/// checked engines reachable for bisection.
pub(crate) fn elision_disabled_by_env() -> bool {
    std::env::var_os("WATZ_NO_ELIDE").is_some_and(|v| !v.is_empty() && v.to_str() != Some("0"))
}

/// The in-bounds verdict for one memory-access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proof {
    /// Not provable by this analysis (stays on the checked opcode).
    Unproven,
    /// Proven by the interval fact: `hi + offset + width <= min_mem`.
    Interval,
    /// Proven by an earlier dominating access to the same address value.
    Subsumed,
}

impl Proof {
    pub(crate) fn is_proven(self) -> bool {
        !matches!(self, Proof::Unproven)
    }
}

/// Bytes read/written by a load of this kind.
pub(crate) fn load_width(kind: LoadKind) -> u64 {
    match kind {
        LoadKind::I32L8S | LoadKind::I32L8U | LoadKind::I64L8S | LoadKind::I64L8U => 1,
        LoadKind::I32L16S | LoadKind::I32L16U | LoadKind::I64L16S | LoadKind::I64L16U => 2,
        LoadKind::I32 | LoadKind::F32 | LoadKind::I64L32S | LoadKind::I64L32U => 4,
        LoadKind::I64 | LoadKind::F64 => 8,
    }
}

/// Bytes written by a store of this kind.
pub(crate) fn store_width(kind: StoreKind) -> u64 {
    match kind {
        StoreKind::I32S8 | StoreKind::I64S8 => 1,
        StoreKind::I32S16 | StoreKind::I64S16 => 2,
        StoreKind::I32 | StoreKind::F32 | StoreKind::I64S32 => 4,
        StoreKind::I64 | StoreKind::F64 => 8,
    }
}

/// A hash-consing key: two values with the same key hold the same bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum VnKey {
    /// A constant, keyed on the raw slot encoding.
    Const(u64),
    /// `op(a, b)` for a fusable binary operator (deterministic in its
    /// operand bits, so operand-VN equality implies result equality).
    Bin(BinOpKind, u32, u32),
    /// `base + idx*k` on i32 (the ScaleAdd address tail).
    ScaleAdd { k: u32, base: u32, idx: u32 },
    /// `base + (part + z)*k` on i32 (the IdxLAdd address tail).
    IdxLAdd {
        k: u32,
        base: u32,
        part: u32,
        z: u32,
    },
}

/// The value-number interner plus the interval fact per value number.
struct Vals {
    intern: HashMap<VnKey, u32>,
    /// `iv[vn]` is the `[lo, hi]` interval on the u32 interpretation,
    /// when one is known. Indexed by value number.
    iv: Vec<Option<(u64, u64)>>,
}

const U32M: u64 = u32::MAX as u64;

impl Vals {
    fn new() -> Vals {
        Vals {
            intern: HashMap::new(),
            iv: Vec::new(),
        }
    }

    /// A brand-new value number with no facts (an unknown value).
    fn fresh(&mut self) -> u32 {
        self.iv.push(None);
        (self.iv.len() - 1) as u32
    }

    /// Interns a key; on first sight the interval is computed by `mk`.
    fn keyed(&mut self, key: VnKey, mk: impl FnOnce(&Vals) -> Option<(u64, u64)>) -> u32 {
        if let Some(&vn) = self.intern.get(&key) {
            return vn;
        }
        let iv = mk(self);
        self.iv.push(iv);
        let vn = (self.iv.len() - 1) as u32;
        self.intern.insert(key, vn);
        vn
    }

    fn konst(&mut self, bits: u64) -> u32 {
        self.keyed(VnKey::Const(bits), |_| {
            let v = u64::from(bits as u32);
            Some((v, v))
        })
    }

    fn bin(&mut self, op: BinOpKind, a: u32, b: u32) -> u32 {
        self.keyed(VnKey::Bin(op, a, b), |vals| {
            iv_bin(op, vals.iv[a as usize], vals.iv[b as usize])
        })
    }

    /// `base + idx*k` (i32 wrapping at runtime; the interval is assigned
    /// only when the whole chain provably does not wrap).
    fn scale_add(&mut self, base: u32, idx: u32, k: u32) -> u32 {
        self.keyed(VnKey::ScaleAdd { k, base, idx }, |vals| {
            let t = iv_mul_k(vals.iv[idx as usize], k)?;
            iv_add(vals.iv[base as usize], Some(t))
        })
    }

    /// `base + (part + z)*k` (i32 wrapping at runtime).
    fn idx_l_add(&mut self, base: u32, part: u32, z: u32, k: u32) -> u32 {
        self.keyed(VnKey::IdxLAdd { k, base, part, z }, |vals| {
            let s = iv_add(vals.iv[part as usize], vals.iv[z as usize])?;
            let t = iv_mul_k(Some(s), k)?;
            iv_add(vals.iv[base as usize], Some(t))
        })
    }

    fn interval(&self, vn: u32) -> Option<(u64, u64)> {
        self.iv[vn as usize]
    }
}

fn iv_add(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
    let ((al, ah), (bl, bh)) = (a?, b?);
    (ah + bh <= U32M).then_some((al + bl, ah + bh))
}

fn iv_mul_k(a: Option<(u64, u64)>, k: u32) -> Option<(u64, u64)> {
    let (al, ah) = a?;
    let hi = ah.checked_mul(u64::from(k)).filter(|&x| x <= U32M)?;
    Some((al * u64::from(k), hi))
}

/// Interval transfer for the fusable binary operators, on the u32
/// interpretation. Returns `None` whenever the result could wrap or the
/// operator is not one the address chains use.
fn iv_bin(op: BinOpKind, a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
    use BinOpKind as B;
    match op {
        // `x & mask`: bounded by either operand's high end, even when the
        // other is unknown (u32 values are non-negative).
        B::I32And => {
            let hi = match (a, b) {
                (Some((_, ah)), Some((_, bh))) => ah.min(bh),
                (Some((_, ah)), None) => ah,
                (None, Some((_, bh))) => bh,
                (None, None) => return None,
            };
            Some((0, hi))
        }
        // `x % d` with a nonzero divisor lower bound.
        B::I32RemU => {
            let (bl, bh) = b?;
            (bl > 0).then(|| (0, bh - 1))
        }
        B::I32Add => iv_add(a, b),
        B::I32Sub => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            (al >= bh).then(|| (al - bh, ah - bl))
        }
        B::I32Mul => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            let hi = ah.checked_mul(bh).filter(|&x| x <= U32M)?;
            Some((al * bl, hi))
        }
        B::I32DivU => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            (bl > 0).then(|| (al / bh, ah / bl))
        }
        // Shifts only by a constant amount below 32 (the runtime masks
        // the amount, so a non-constant shift could alias any amount).
        B::I32ShrU => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            (bl == bh && bl < 32).then(|| (al >> bl, ah >> bl))
        }
        B::I32Shl => {
            let ((al, ah), (bl, bh)) = (a?, b?);
            if bl != bh || bl >= 32 {
                return None;
            }
            let hi = ah.checked_shl(bl as u32).filter(|&x| x <= U32M)?;
            Some((al << bl, hi))
        }
        _ => None,
    }
}

/// The coverage map of the current straight-line region: address value
/// number → largest `offset + width` end point already checked or proven
/// at that address.
#[derive(Default)]
struct Covered {
    map: HashMap<u32, u64>,
}

impl Covered {
    fn clear(&mut self) {
        self.map.clear();
    }

    /// Judges one access and (when it is checked, or proven) widens the
    /// coverage for later accesses in the region. `checked` is false for
    /// the check-free opcode forms, whose coverage contribution is only
    /// valid when their own proof holds.
    fn access(
        &mut self,
        vals: &Vals,
        vn: u32,
        offset: u32,
        width: u64,
        min_mem: u64,
        checked: bool,
    ) -> Proof {
        let end = u64::from(offset) + width;
        let proof = if vals.interval(vn).is_some_and(|(_, hi)| hi + end <= min_mem) {
            Proof::Interval
        } else if self.map.get(&vn).is_some_and(|&c| end <= c) {
            Proof::Subsumed
        } else {
            Proof::Unproven
        };
        if checked || proof.is_proven() {
            let e = self.map.entry(vn).or_insert(0);
            if end > *e {
                *e = end;
            }
        }
        proof
    }
}

/// Marks every jump target in a flat body (region starts for the walk).
fn flat_targets(code: &[FlatOp]) -> Vec<bool> {
    let mut t = vec![false; code.len()];
    let mut mark = |x: u32| {
        if let Some(b) = t.get_mut(x as usize) {
            *b = true;
        }
    };
    for op in code {
        match op {
            FlatOp::Jump { target }
            | FlatOp::JumpIfZero { target }
            | FlatOp::JumpIfNonZero { target }
            | FlatOp::Br { target, .. }
            | FlatOp::BrIf { target, .. }
            | FlatOp::FusedCmpBrZ { target, .. }
            | FlatOp::FusedCmpBrNZ { target, .. }
            | FlatOp::FusedCmpBrLLZ { target, .. }
            | FlatOp::FusedCmpBrLLNZ { target, .. }
            | FlatOp::FusedCmpBrLKZ { target, .. }
            | FlatOp::FusedCmpBrLKNZ { target, .. }
            | FlatOp::FusedCmpBrSLZ { target, .. }
            | FlatOp::FusedCmpBrSLNZ { target, .. } => mark(*target),
            FlatOp::BrTable { entries } => {
                for e in entries.iter() {
                    mark(e.target);
                }
            }
            _ => {}
        }
    }
    t
}

/// Runs the range analysis over one flat body, returning the in-bounds
/// verdict per pc: `None` for ops that are not memory accesses (or are
/// unreachable), `Some(proof)` for each access site.
///
/// `heights` are the verified entry heights
/// ([`crate::verify::flat_entry_heights`]); `None` marks unreachable ops,
/// which are skipped — they cannot execute, so they need no proof.
///
/// The walk is deterministic: running it over a body whose proven
/// accesses were rewritten to check-free forms reproduces the same
/// verdicts, which is what lets the verifier re-check every elision.
#[allow(clippy::too_many_lines)]
pub(crate) fn flat_proofs(
    f: &FlatFunc,
    heights: &[Option<u32>],
    ctx: &crate::verify::ModuleCtx<'_>,
) -> Vec<Option<Proof>> {
    let min_mem = ctx.min_mem;
    let n = f.code.len();
    let mut proofs: Vec<Option<Proof>> = vec![None; n];
    let is_target = flat_targets(&f.code);
    let mut vals = Vals::new();
    let mut covered = Covered::default();
    let mut stack: Vec<u32> = Vec::new();
    let mut locals: Vec<u32> = (0..f.n_locals).map(|_| vals.fresh()).collect();
    let mut live = true;

    for pc in 0..n {
        if is_target[pc] {
            // A new region: every fact is path-dependent, so reset to
            // unknowns at the verified entry height.
            match heights[pc] {
                Some(h) => {
                    stack.clear();
                    stack.extend((0..h).map(|_| vals.fresh()));
                    locals = (0..f.n_locals).map(|_| vals.fresh()).collect();
                    covered.clear();
                    live = true;
                }
                None => live = false,
            }
        }
        if !live {
            continue;
        }
        // The body is verified before analysis, so stack traffic cannot
        // underflow; the fallbacks keep the walk total regardless.
        macro_rules! pop {
            () => {
                stack.pop().unwrap_or_else(|| vals.fresh())
            };
        }
        macro_rules! lidx {
            ($i:expr) => {
                locals.get(*$i as usize).copied().unwrap_or(0)
            };
        }
        macro_rules! lset {
            ($i:expr, $v:expr) => {
                if let Some(slot) = locals.get_mut(*$i as usize) {
                    *slot = $v;
                }
            };
        }
        macro_rules! access {
            ($vn:expr, $off:expr, $w:expr, $checked:expr) => {{
                proofs[pc] = Some(covered.access(&vals, $vn, $off, $w, min_mem, $checked));
            }};
        }
        match &f.code[pc] {
            // Region-ending control flow.
            FlatOp::Unreachable | FlatOp::Jump { .. } | FlatOp::Br { .. } | FlatOp::Return => {
                live = false
            }
            FlatOp::BrTable { .. } => {
                let _ = pop!();
                live = false;
            }
            // Conditional exits: the fall-through path keeps its facts
            // (the branch only ever leaves the region).
            FlatOp::JumpIfZero { .. } | FlatOp::JumpIfNonZero { .. } | FlatOp::BrIf { .. } => {
                let _ = pop!();
            }
            FlatOp::FusedCmpBrZ { .. } | FlatOp::FusedCmpBrNZ { .. } => {
                let _ = pop!();
                let _ = pop!();
            }
            FlatOp::FusedCmpBrLLZ { .. }
            | FlatOp::FusedCmpBrLLNZ { .. }
            | FlatOp::FusedCmpBrLKZ { .. }
            | FlatOp::FusedCmpBrLKNZ { .. } => {}
            FlatOp::FusedCmpBrSLZ { .. } | FlatOp::FusedCmpBrSLNZ { .. } => {
                let _ = pop!();
            }

            // Calls: arguments consumed, results unknown; locals and the
            // coverage map survive (a callee can only grow memory).
            FlatOp::CallLocal { func } | FlatOp::CallImport { func } => {
                let (np, nr) = ctx.call_arity(*func).unwrap_or((0, 0));
                for _ in 0..np {
                    let _ = pop!();
                }
                stack.extend((0..nr).map(|_| vals.fresh()));
            }
            FlatOp::CallIndirect { type_idx } => {
                let (np, nr) = ctx.type_arity(*type_idx).unwrap_or((0, 0));
                let _ = pop!();
                for _ in 0..np {
                    let _ = pop!();
                }
                stack.extend((0..nr).map(|_| vals.fresh()));
            }

            FlatOp::Drop => {
                let _ = pop!();
            }
            FlatOp::Select => {
                let _ = pop!();
                let _ = pop!();
                let _ = pop!();
                stack.push(vals.fresh());
            }
            FlatOp::LocalGet(i) => stack.push(lidx!(i)),
            FlatOp::LocalSet(i) => {
                let v = pop!();
                lset!(i, v);
            }
            FlatOp::LocalTee(i) => {
                let v = *stack.last().unwrap_or(&0);
                lset!(i, v);
            }
            FlatOp::GlobalGet(_) => stack.push(vals.fresh()),
            FlatOp::GlobalSet(_) => {
                let _ = pop!();
            }

            FlatOp::MemorySize => stack.push(vals.fresh()),
            FlatOp::MemoryGrow => {
                let _ = pop!();
                stack.push(vals.fresh());
            }
            FlatOp::MemoryCopy | FlatOp::MemoryFill => {
                let _ = pop!();
                let _ = pop!();
                let _ = pop!();
            }

            FlatOp::Const(bits) => {
                let vn = vals.konst(*bits);
                stack.push(vn);
            }

            FlatOp::FusedBinopLL { a, b, op } => {
                let vn = vals.bin(*op, lidx!(a), lidx!(b));
                stack.push(vn);
            }
            FlatOp::FusedBinopLK { a, k, op } => {
                let kk = vals.konst(*k);
                let vn = vals.bin(*op, lidx!(a), kk);
                stack.push(vn);
            }
            FlatOp::FusedBinopLLSet { a, b, op, dst } => {
                let vn = vals.bin(*op, lidx!(a), lidx!(b));
                lset!(dst, vn);
            }
            FlatOp::FusedBinopLKSet { a, k, op, dst } => {
                let kk = vals.konst(u64::from(*k));
                let vn = vals.bin(*op, lidx!(a), kk);
                lset!(dst, vn);
            }
            FlatOp::FusedBinopSL { b, op } => {
                let a = pop!();
                let vn = vals.bin(*op, a, lidx!(b));
                stack.push(vn);
            }
            FlatOp::FusedBinopSLSet { b, op, dst } => {
                let a = pop!();
                let vn = vals.bin(*op, a, lidx!(b));
                lset!(dst, vn);
            }
            FlatOp::FusedBinopSet { op, dst } => {
                let b = pop!();
                let a = pop!();
                let vn = vals.bin(*op, a, b);
                lset!(dst, vn);
            }
            FlatOp::FusedBinopKS { k, op } => {
                let a = pop!();
                let kk = vals.konst(*k);
                let vn = vals.bin(*op, a, kk);
                stack.push(vn);
            }
            FlatOp::LocalCopy { src, dst } => {
                let v = lidx!(src);
                lset!(dst, v);
            }

            FlatOp::FusedScaleAdd { k } => {
                let idx = pop!();
                let base = pop!();
                let vn = vals.scale_add(base, idx, *k);
                stack.push(vn);
            }
            FlatOp::FusedIdxLAdd { z, k } => {
                let part = pop!();
                let base = pop!();
                let vn = vals.idx_l_add(base, part, lidx!(z), *k);
                stack.push(vn);
            }

            // Access sites. Every checked access widens the region's
            // coverage — it either traps or proves the address — and a
            // check-free access contributes only when its proof holds.
            FlatOp::FusedLoadL { addr, offset, kind } => {
                access!(lidx!(addr), *offset, load_width(*kind), true);
                stack.push(vals.fresh());
            }
            FlatOp::FusedStoreL { offset, kind, .. } => {
                let addr = pop!();
                access!(addr, *offset, store_width(*kind), true);
            }
            FlatOp::FusedAddLoad { offset, kind } => {
                let b = pop!();
                let a = pop!();
                let vn = vals.bin(BinOpKind::I32Add, a, b);
                access!(vn, *offset, load_width(*kind), true);
                stack.push(vals.fresh());
            }
            FlatOp::FusedScaleAddLoad { k, offset, kind } => {
                let idx = pop!();
                let base = pop!();
                let vn = vals.scale_add(base, idx, *k);
                access!(vn, *offset, load_width(*kind), true);
                stack.push(vals.fresh());
            }
            FlatOp::FusedIdxLAddLoad { z, k, offset, kind } => {
                let part = pop!();
                let base = pop!();
                let vn = vals.idx_l_add(base, part, lidx!(z), *k);
                access!(vn, *offset, load_width(*kind), true);
                stack.push(vals.fresh());
            }
            FlatOp::FusedBinopStore { offset, kind, .. } => {
                let _ = pop!();
                let _ = pop!();
                let addr = pop!();
                access!(addr, *offset, store_width(*kind), true);
            }
            FlatOp::FusedBinopSLStore { offset, kind, .. } => {
                let _ = pop!();
                let addr = pop!();
                access!(addr, *offset, store_width(*kind), true);
            }
            FlatOp::FusedBinopLLStore { offset, kind, .. } => {
                let addr = pop!();
                access!(addr, *offset, store_width(*kind), true);
            }
            FlatOp::LoadNC { kind, offset } => {
                let addr = pop!();
                access!(addr, *offset, load_width(*kind), false);
                stack.push(vals.fresh());
            }
            FlatOp::StoreNC { kind, offset } => {
                let _ = pop!();
                let addr = pop!();
                access!(addr, *offset, store_width(*kind), false);
            }

            op => {
                if let Some((kind, offset)) = flat::load_kind(op) {
                    let addr = pop!();
                    access!(addr, offset, load_width(kind), true);
                    stack.push(vals.fresh());
                } else if let Some((kind, offset)) = flat::store_kind(op) {
                    let _ = pop!();
                    let addr = pop!();
                    access!(addr, offset, store_width(kind), true);
                } else if let Some(bk) = flat::binop_kind(op) {
                    let b = pop!();
                    let a = pop!();
                    let vn = vals.bin(bk, a, b);
                    stack.push(vn);
                } else {
                    // The remaining straight-line ops (unops, tests,
                    // conversions) rewrite the top of stack to an
                    // untracked value.
                    let _ = pop!();
                    stack.push(vals.fresh());
                }
            }
        }
    }
    proofs
}

/// Rewrites every proven plain load/store of a flat body to its
/// check-free twin, accumulating [`RangeStats`]. `proofs` must come from
/// [`flat_proofs`] over this same body (the caller computes them first —
/// the module context borrows the function list this body lives in).
pub(crate) fn apply_flat_elision(
    f: &mut FlatFunc,
    proofs: &[Option<Proof>],
    rewrite: bool,
    stats: &mut RangeStats,
) {
    stats.funcs += 1;
    for (pc, op) in f.code.iter_mut().enumerate() {
        let Some(proof) = proofs[pc] else { continue };
        stats.accesses += 1;
        match proof {
            Proof::Unproven => continue,
            Proof::Interval => stats.proven_interval += 1,
            Proof::Subsumed => stats.proven_subsumed += 1,
        }
        if !rewrite {
            continue;
        }
        if let Some((kind, offset)) = flat::load_kind(op) {
            *op = FlatOp::LoadNC { kind, offset };
            stats.elided += 1;
        } else if let Some((kind, offset)) = flat::store_kind(op) {
            *op = FlatOp::StoreNC { kind, offset };
            stats.elided += 1;
        }
    }
}

/// Marks every jump target in a register body.
fn reg_targets(code: &[RegOp]) -> Vec<bool> {
    let mut t = vec![false; code.len()];
    let mut mark = |x: u32| {
        if let Some(b) = t.get_mut(x as usize) {
            *b = true;
        }
    };
    for op in code {
        match op {
            RegOp::Jump { target }
            | RegOp::BrIf { target, .. }
            | RegOp::BrMoves { target, .. }
            | RegOp::BrIfMoves { target, .. }
            | RegOp::CmpBr { target, .. }
            | RegOp::CmpBrK { target, .. }
            | RegOp::CmpBrLtSZ { target, .. }
            | RegOp::CmpBrLtSNZ { target, .. } => mark(*target),
            RegOp::BrTable { entries, .. } => {
                for e in entries.iter() {
                    mark(e.target);
                }
            }
            _ => {}
        }
    }
    t
}

/// Runs the range analysis over one register body. Same contract as
/// [`flat_proofs`]; the register form needs no entry heights — every
/// frame slot resets to an unknown at each region start.
#[allow(clippy::too_many_lines)]
pub(crate) fn reg_proofs(f: &RegFunc, min_mem: u64) -> Vec<Option<Proof>> {
    let n = f.code.len();
    let mut proofs: Vec<Option<Proof>> = vec![None; n];
    let is_target = reg_targets(&f.code);
    let mut vals = Vals::new();
    let mut covered = Covered::default();
    let fs = f.frame_size as usize;
    let mut slots: Vec<u32> = (0..fs).map(|_| vals.fresh()).collect();
    let mut live = true;

    for pc in 0..n {
        if is_target[pc] {
            slots = (0..fs).map(|_| vals.fresh()).collect();
            covered.clear();
            live = true;
        }
        if !live {
            continue;
        }
        macro_rules! s {
            ($i:expr) => {
                slots.get(*$i as usize).copied().unwrap_or(0)
            };
        }
        macro_rules! sset {
            ($i:expr, $v:expr) => {
                if let Some(slot) = slots.get_mut(*$i as usize) {
                    *slot = $v;
                }
            };
        }
        macro_rules! access {
            ($vn:expr, $off:expr, $w:expr, $checked:expr) => {{
                proofs[pc] = Some(covered.access(&vals, $vn, $off, $w, min_mem, $checked));
            }};
        }
        match &f.code[pc] {
            RegOp::Unreachable
            | RegOp::Jump { .. }
            | RegOp::BrMoves { .. }
            | RegOp::BrTable { .. }
            | RegOp::Return { .. } => live = false,
            // Conditional exits keep the fall-through facts.
            RegOp::BrIf { .. }
            | RegOp::BrIfMoves { .. }
            | RegOp::CmpBr { .. }
            | RegOp::CmpBrK { .. }
            | RegOp::CmpBrLtSZ { .. }
            | RegOp::CmpBrLtSNZ { .. } => {}

            // Calls clobber every slot from the callee's frame base up
            // (the callee reuses that region); the coverage map survives.
            RegOp::CallLocal { base, .. }
            | RegOp::CallImport { base, .. }
            | RegOp::CallIndirect { base, .. } => {
                for s in slots.iter_mut().skip(*base as usize) {
                    *s = vals.fresh();
                }
            }

            RegOp::Select { dst, .. }
            | RegOp::GlobalGet { dst, .. }
            | RegOp::MemorySize { dst }
            | RegOp::MemoryGrow { dst, .. }
            | RegOp::Unop { dst, .. } => {
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::GlobalSet { .. } | RegOp::MemoryCopy { .. } | RegOp::MemoryFill { .. } => {}
            RegOp::Move { src, dst } => {
                let v = s!(src);
                sset!(dst, v);
            }
            RegOp::Const { bits, dst } => {
                let v = vals.konst(*bits);
                sset!(dst, v);
            }
            RegOp::Binop { op, a, b, dst } => {
                let v = vals.bin(*op, s!(a), s!(b));
                sset!(dst, v);
            }
            RegOp::BinopK { op, a, k, dst } => {
                let kk = vals.konst(*k);
                let v = vals.bin(*op, s!(a), kk);
                sset!(dst, v);
            }
            RegOp::AddI32 { a, b, dst } => {
                let v = vals.bin(BinOpKind::I32Add, s!(a), s!(b));
                sset!(dst, v);
            }
            RegOp::SubI32 { a, b, dst } => {
                let v = vals.bin(BinOpKind::I32Sub, s!(a), s!(b));
                sset!(dst, v);
            }
            RegOp::MulI32 { a, b, dst } => {
                let v = vals.bin(BinOpKind::I32Mul, s!(a), s!(b));
                sset!(dst, v);
            }
            RegOp::AddI32K { a, k, dst } => {
                let kk = vals.konst(u64::from(*k));
                let v = vals.bin(BinOpKind::I32Add, s!(a), kk);
                sset!(dst, v);
            }
            RegOp::AddF64 { dst, .. }
            | RegOp::SubF64 { dst, .. }
            | RegOp::MulF64 { dst, .. }
            | RegOp::DivF64 { dst, .. } => {
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::ScaleAdd { base, idx, k, dst } => {
                let v = vals.scale_add(s!(base), s!(idx), *k);
                sset!(dst, v);
            }
            RegOp::IdxLAdd {
                base,
                part,
                z,
                k,
                dst,
            } => {
                let v = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                sset!(dst, v);
            }

            RegOp::Load {
                kind,
                addr,
                offset,
                dst,
            } => {
                access!(s!(addr), *offset, load_width(*kind), true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::Store {
                kind, addr, offset, ..
            } => access!(s!(addr), *offset, store_width(*kind), true),
            RegOp::LoadI32R { addr, offset, dst } => {
                access!(s!(addr), *offset, 4, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::LoadF64R { addr, offset, dst } => {
                access!(s!(addr), *offset, 8, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::StoreI32R { addr, offset, .. } => access!(s!(addr), *offset, 4, true),
            RegOp::StoreF64R { addr, offset, .. } => access!(s!(addr), *offset, 8, true),
            RegOp::LoadI32N { addr, offset, dst } => {
                access!(s!(addr), *offset, 4, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::LoadF64N { addr, offset, dst } => {
                access!(s!(addr), *offset, 8, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::StoreI32N { addr, offset, .. } => access!(s!(addr), *offset, 4, false),
            RegOp::StoreF64N { addr, offset, .. } => access!(s!(addr), *offset, 8, false),
            RegOp::ScaleAddLoadI32 {
                base,
                idx,
                k,
                offset,
                dst,
            } => {
                let vn = vals.scale_add(s!(base), s!(idx), *k);
                access!(vn, *offset, 4, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::ScaleAddLoadF64 {
                base,
                idx,
                k,
                offset,
                dst,
            } => {
                let vn = vals.scale_add(s!(base), s!(idx), *k);
                access!(vn, *offset, 8, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::ScaleAddLoadI32N {
                base,
                idx,
                k,
                offset,
                dst,
            } => {
                let vn = vals.scale_add(s!(base), s!(idx), *k);
                access!(vn, *offset, 4, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::ScaleAddLoadF64N {
                base,
                idx,
                k,
                offset,
                dst,
            } => {
                let vn = vals.scale_add(s!(base), s!(idx), *k);
                access!(vn, *offset, 8, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::ScaleAddLoad {
                base,
                idx,
                k,
                kind,
                offset,
                dst,
            } => {
                let vn = vals.scale_add(s!(base), s!(idx), *k);
                access!(vn, *offset, load_width(*kind), true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::IdxLAddLoadI32 {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let vn = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                access!(vn, *offset, 4, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::IdxLAddLoadF64 {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let vn = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                access!(vn, *offset, 8, true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::IdxLAddLoadI32N {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let vn = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                access!(vn, *offset, 4, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::IdxLAddLoadF64N {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => {
                let vn = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                access!(vn, *offset, 8, false);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::IdxLAddLoad {
                base,
                part,
                z,
                k,
                kind,
                offset,
                dst,
            } => {
                let vn = vals.idx_l_add(s!(base), s!(part), s!(z), *k);
                access!(vn, *offset, load_width(*kind), true);
                let v = vals.fresh();
                sset!(dst, v);
            }
            RegOp::AddStoreF64 { addr, offset, .. } | RegOp::MulStoreF64 { addr, offset, .. } => {
                access!(s!(addr), *offset, 8, true);
            }
            RegOp::AddStoreF64N { addr, offset, .. } | RegOp::MulStoreF64N { addr, offset, .. } => {
                access!(s!(addr), *offset, 8, false);
            }
            RegOp::BinopStore {
                addr, kind, offset, ..
            } => access!(s!(addr), *offset, store_width(*kind), true),
        }
    }
    proofs
}

/// Rewrites every proven specialized access of a register body to its
/// check-free twin, accumulating [`RangeStats`].
pub(crate) fn elide_reg(f: &mut RegFunc, min_mem: u64, rewrite: bool, stats: &mut RangeStats) {
    let proofs = reg_proofs(f, min_mem);
    stats.funcs += 1;
    for (pc, op) in f.code.iter_mut().enumerate() {
        let Some(proof) = proofs[pc] else { continue };
        stats.accesses += 1;
        match proof {
            Proof::Unproven => continue,
            Proof::Interval => stats.proven_interval += 1,
            Proof::Subsumed => stats.proven_subsumed += 1,
        }
        if !rewrite {
            continue;
        }
        let nc = match *op {
            RegOp::LoadI32R { addr, offset, dst } => RegOp::LoadI32N { addr, offset, dst },
            RegOp::LoadF64R { addr, offset, dst } => RegOp::LoadF64N { addr, offset, dst },
            RegOp::StoreI32R { addr, val, offset } => RegOp::StoreI32N { addr, val, offset },
            RegOp::StoreF64R { addr, val, offset } => RegOp::StoreF64N { addr, val, offset },
            RegOp::ScaleAddLoadI32 {
                base,
                idx,
                k,
                offset,
                dst,
            } => RegOp::ScaleAddLoadI32N {
                base,
                idx,
                k,
                offset,
                dst,
            },
            RegOp::ScaleAddLoadF64 {
                base,
                idx,
                k,
                offset,
                dst,
            } => RegOp::ScaleAddLoadF64N {
                base,
                idx,
                k,
                offset,
                dst,
            },
            RegOp::IdxLAddLoadI32 {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => RegOp::IdxLAddLoadI32N {
                base,
                part,
                z,
                k,
                offset,
                dst,
            },
            RegOp::IdxLAddLoadF64 {
                base,
                part,
                z,
                k,
                offset,
                dst,
            } => RegOp::IdxLAddLoadF64N {
                base,
                part,
                z,
                k,
                offset,
                dst,
            },
            RegOp::AddStoreF64 { a, b, addr, offset } => RegOp::AddStoreF64N { a, b, addr, offset },
            RegOp::MulStoreF64 { a, b, addr, offset } => RegOp::MulStoreF64N { a, b, addr, offset },
            _ => continue,
        };
        *op = nc;
        stats.elided += 1;
    }
}

//! LEB128 variable-length integer encoding, as used throughout the Wasm
//! binary format.

/// Error raised on malformed LEB128 sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LebError {
    /// Ran off the end of the input.
    UnexpectedEof,
    /// The encoding used more bytes than allowed for the type.
    Overflow,
}

/// Appends an unsigned LEB128 encoding of `value` to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends an unsigned LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 encoding of `value` to `out`.
pub fn write_i32(out: &mut Vec<u8>, value: i32) {
    write_i64(out, i64::from(value));
}

/// Appends a signed LEB128 encoding of a 64-bit `value` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned 32-bit LEB128 from `input` at `*pos`, advancing it.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or overlong/overflowing encodings.
pub fn read_u32(input: &[u8], pos: &mut usize) -> Result<u32, LebError> {
    let v = read_u64_impl(input, pos, 5)?;
    u32::try_from(v).map_err(|_| LebError::Overflow)
}

/// Reads an unsigned 64-bit LEB128.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or overflow.
pub fn read_u64(input: &[u8], pos: &mut usize) -> Result<u64, LebError> {
    read_u64_impl(input, pos, 10)
}

fn read_u64_impl(input: &[u8], pos: &mut usize, max_bytes: usize) -> Result<u64, LebError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for i in 0..max_bytes {
        let byte = *input.get(*pos).ok_or(LebError::UnexpectedEof)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        // Detect bits that fall off the top.
        if shift >= 64
            || (shift > 0
                && payload
                    .checked_shl(shift)
                    .is_none_or(|v| v >> shift != payload))
        {
            return Err(LebError::Overflow);
        }
        result |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if i == max_bytes - 1 {
            return Err(LebError::Overflow);
        }
    }
    Err(LebError::Overflow)
}

/// Reads a signed 32-bit LEB128.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or overflow.
pub fn read_i32(input: &[u8], pos: &mut usize) -> Result<i32, LebError> {
    let v = read_i64_impl(input, pos, 5)?;
    i32::try_from(v).map_err(|_| LebError::Overflow)
}

/// Reads a signed 64-bit LEB128.
///
/// # Errors
///
/// Returns [`LebError`] on truncation or overflow.
pub fn read_i64(input: &[u8], pos: &mut usize) -> Result<i64, LebError> {
    read_i64_impl(input, pos, 10)
}

fn read_i64_impl(input: &[u8], pos: &mut usize, max_bytes: usize) -> Result<i64, LebError> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    for _ in 0..max_bytes {
        let byte = *input.get(*pos).ok_or(LebError::UnexpectedEof)?;
        *pos += 1;
        if shift < 64 {
            result |= i64::from(byte & 0x7f) << shift;
        }
        shift += 7;
        if byte & 0x80 == 0 {
            // Sign-extend.
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Ok(result);
        }
    }
    Err(LebError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(v: u32) {
        let mut buf = Vec::new();
        write_u32(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len());
    }

    fn roundtrip_i64(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(read_i64(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn u32_edge_cases() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX] {
            roundtrip_u32(v);
        }
    }

    #[test]
    fn i64_edge_cases() {
        for v in [
            0,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i64::MAX,
            i64::MIN,
            624485,
            -123456,
        ] {
            roundtrip_i64(v);
        }
    }

    #[test]
    fn i32_roundtrip() {
        for v in [0i32, -1, i32::MIN, i32::MAX, 42, -300] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i32(&buf, &mut pos), Ok(v));
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut pos = 0;
        assert_eq!(read_u32(&[0x80], &mut pos), Err(LebError::UnexpectedEof));
    }

    #[test]
    fn overlong_u32_errors() {
        // Six continuation bytes is too many for u32.
        let mut pos = 0;
        assert_eq!(
            read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut pos),
            Err(LebError::Overflow)
        );
    }

    #[test]
    fn known_encoding() {
        // 624485 = 0xE5 0x8E 0x26 per the LEB128 wikipedia example.
        let mut buf = Vec::new();
        write_u32(&mut buf, 624485);
        assert_eq!(buf, vec![0xe5, 0x8e, 0x26]);
    }

    // Deterministic stand-in for the former proptest block: edge cases plus
    // an xorshift64 sample, so the build has no external test dependencies.
    fn xorshift64(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn prop_u32_roundtrip() {
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let edges = [0, 1, 0x7f, 0x80, 0x3fff, 0x4000, u32::MAX - 1, u32::MAX];
        for v in edges
            .into_iter()
            .chain((0..4096).map(|_| xorshift64(&mut s) as u32))
        {
            roundtrip_u32(v);
        }
    }

    #[test]
    fn prop_i64_roundtrip() {
        let mut s = 0x243f_6a88_85a3_08d3u64;
        let edges = [0, 1, -1, 63, 64, -64, -65, i64::MIN, i64::MAX];
        for v in edges
            .into_iter()
            .chain((0..4096).map(|_| xorshift64(&mut s) as i64))
        {
            roundtrip_i64(v);
        }
    }

    #[test]
    fn prop_u64_roundtrip() {
        let mut s = 0x1319_8a2e_0370_7344u64;
        let edges = [0, 1, 0x7f, 0x80, u64::MAX - 1, u64::MAX];
        for v in edges
            .into_iter()
            .chain((0..4096).map(|_| xorshift64(&mut s)))
        {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Ok(v));
        }
    }
}

//! Execution profiling for the engine ladder: retired-guest-instruction
//! accounting (`instret`), host dispatch counts, a per-opcode-class
//! histogram, loop back-edge counts and trap counts, shared by all four
//! engine rungs.
//!
//! # Zero overhead when off
//!
//! Profiling must not tax the default hot path, so it is *not* a runtime
//! branch inside the dispatch loops. Instead every dispatch loop is
//! generic over a [`Profiler`] and is monomorphised twice: once with
//! [`NoProfile`] (a zero-sized type whose `ENABLED` constant is `false`,
//! so every counting statement is dead code the compiler deletes) and
//! once with [`ExecProfile`] (the counting build). Selecting
//! [`ProfileMode::Count`] — via `Instance::instantiate_with_profile` or
//! the `WATZ_PROFILE` environment variable — merely routes `invoke`
//! through the counting instantiation; the default loop is bit-identical
//! to the pre-profiling code. `bench_smoke` gates this invariant by
//! timing gemm with profiling off against a build of record.
//!
//! # Instret is a correctness invariant
//!
//! `instret` counts *retired guest instructions*: every structured
//! opcode the tree oracle dispatches except the shape-only ones
//! (`block`/`loop`/`end`/`else`/`nop`, which the flat lowering erases).
//! The flat, fused and register engines execute fewer host ops than
//! that, so each lowered op carries a [`ProfOp`] weight — how many
//! guest instructions it retires — computed at lowering time. Counting
//! is *inclusive at fetch*: an op's full weight retires when it is
//! dispatched, before it can trap, and the fusion pass never extends a
//! window past a trap-capable div/rem, so all four rungs retire exactly
//! the same count for the same input — including programs that trap,
//! up to and including the trapping instruction. The differential suite
//! pins this.

use crate::instr::Instr;

/// Number of opcode classes in the histogram.
pub const N_CLASSES: usize = 12;

/// Coarse opcode classes for the retired-instruction histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Branches, returns, `unreachable`, and structural opcodes.
    Control = 0,
    /// Direct and indirect calls.
    Call = 1,
    /// `local.get`/`local.set`/`local.tee`.
    Local = 2,
    /// `global.get`/`global.set`.
    Global = 3,
    /// Constant pushes.
    Const = 4,
    /// Memory loads.
    Load = 5,
    /// Memory stores.
    Store = 6,
    /// Integer and float arithmetic/bit ops.
    Arith = 7,
    /// Comparisons and `eqz`.
    Compare = 8,
    /// Width/type conversions and reinterprets.
    Convert = 9,
    /// `memory.size`/`grow`/`copy`/`fill`.
    Mem = 10,
    /// Everything else (`drop`, `select`).
    Other = 11,
}

impl OpClass {
    /// Display names, indexed by discriminant.
    pub const NAMES: [&'static str; N_CLASSES] = [
        "control", "call", "local", "global", "const", "load", "store", "arith", "compare",
        "convert", "mem", "other",
    ];
}

/// Classifies a structured instruction and gives its retirement weight.
///
/// Shape-only opcodes (`block`/`loop`/`end`/`else`/`nop`) weigh 0: the
/// flat lowering erases them, so counting them in the tree oracle would
/// break cross-rung instret parity.
#[must_use]
pub fn classify(instr: &Instr) -> (OpClass, u32) {
    use Instr::{
        Block, Call, CallIndirect, Else, End, GlobalGet, GlobalSet, LocalGet, LocalSet, LocalTee,
        Loop, MemoryCopy, MemoryFill, MemoryGrow, MemorySize, Nop,
    };
    match instr {
        Block(_) | Loop(_) | End | Else | Nop => (OpClass::Control, 0),
        Instr::Unreachable
        | Instr::If(_)
        | Instr::Br(_)
        | Instr::BrIf(_)
        | Instr::BrTable { .. }
        | Instr::Return => (OpClass::Control, 1),
        Call(_) | CallIndirect { .. } => (OpClass::Call, 1),
        LocalGet(_) | LocalSet(_) | LocalTee(_) => (OpClass::Local, 1),
        GlobalGet(_) | GlobalSet(_) => (OpClass::Global, 1),
        Instr::I32Const(_) | Instr::I64Const(_) | Instr::F32Const(_) | Instr::F64Const(_) => {
            (OpClass::Const, 1)
        }
        Instr::I32Load(_)
        | Instr::I64Load(_)
        | Instr::F32Load(_)
        | Instr::F64Load(_)
        | Instr::I32Load8S(_)
        | Instr::I32Load8U(_)
        | Instr::I32Load16S(_)
        | Instr::I32Load16U(_)
        | Instr::I64Load8S(_)
        | Instr::I64Load8U(_)
        | Instr::I64Load16S(_)
        | Instr::I64Load16U(_)
        | Instr::I64Load32S(_)
        | Instr::I64Load32U(_) => (OpClass::Load, 1),
        Instr::I32Store(_)
        | Instr::I64Store(_)
        | Instr::F32Store(_)
        | Instr::F64Store(_)
        | Instr::I32Store8(_)
        | Instr::I32Store16(_)
        | Instr::I64Store8(_)
        | Instr::I64Store16(_)
        | Instr::I64Store32(_) => (OpClass::Store, 1),
        MemorySize | MemoryGrow | MemoryCopy | MemoryFill => (OpClass::Mem, 1),
        Instr::I32Eqz
        | Instr::I32Eq
        | Instr::I32Ne
        | Instr::I32LtS
        | Instr::I32LtU
        | Instr::I32GtS
        | Instr::I32GtU
        | Instr::I32LeS
        | Instr::I32LeU
        | Instr::I32GeS
        | Instr::I32GeU
        | Instr::I64Eqz
        | Instr::I64Eq
        | Instr::I64Ne
        | Instr::I64LtS
        | Instr::I64LtU
        | Instr::I64GtS
        | Instr::I64GtU
        | Instr::I64LeS
        | Instr::I64LeU
        | Instr::I64GeS
        | Instr::I64GeU
        | Instr::F32Eq
        | Instr::F32Ne
        | Instr::F32Lt
        | Instr::F32Gt
        | Instr::F32Le
        | Instr::F32Ge
        | Instr::F64Eq
        | Instr::F64Ne
        | Instr::F64Lt
        | Instr::F64Gt
        | Instr::F64Le
        | Instr::F64Ge => (OpClass::Compare, 1),
        Instr::I32WrapI64
        | Instr::I32TruncF32S
        | Instr::I32TruncF32U
        | Instr::I32TruncF64S
        | Instr::I32TruncF64U
        | Instr::I64ExtendI32S
        | Instr::I64ExtendI32U
        | Instr::I64TruncF32S
        | Instr::I64TruncF32U
        | Instr::I64TruncF64S
        | Instr::I64TruncF64U
        | Instr::F32ConvertI32S
        | Instr::F32ConvertI32U
        | Instr::F32ConvertI64S
        | Instr::F32ConvertI64U
        | Instr::F32DemoteF64
        | Instr::F64ConvertI32S
        | Instr::F64ConvertI32U
        | Instr::F64ConvertI64S
        | Instr::F64ConvertI64U
        | Instr::F64PromoteF32
        | Instr::I32ReinterpretF32
        | Instr::I64ReinterpretF64
        | Instr::F32ReinterpretI32
        | Instr::F64ReinterpretI64
        | Instr::I32Extend8S
        | Instr::I32Extend16S
        | Instr::I64Extend8S
        | Instr::I64Extend16S
        | Instr::I64Extend32S => (OpClass::Convert, 1),
        Instr::Drop | Instr::Select => (OpClass::Other, 1),
        _ => (OpClass::Arith, 1),
    }
}

/// Retirement metadata for one lowered (flat or register) op: how many
/// guest instructions it retires and how they split across classes.
///
/// Built once at lowering time; the fusion and register passes merge
/// the metadata of every source op a window absorbs, so retire-at-fetch
/// stays exact across rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfOp {
    /// Guest instructions retired when this op is dispatched.
    pub weight: u32,
    /// Per-class split of `weight` (saturating at 255 per class).
    pub cls: [u8; N_CLASSES],
}

impl ProfOp {
    /// An op that retires nothing (synthetic returns, erased jumps).
    #[must_use]
    pub const fn zero() -> Self {
        ProfOp {
            weight: 0,
            cls: [0; N_CLASSES],
        }
    }

    /// A single guest instruction of class `cls`.
    #[must_use]
    pub fn of(cls: OpClass, weight: u32) -> Self {
        let mut p = Self::zero();
        p.weight = weight;
        p.cls[cls as usize] = u8::try_from(weight.min(255)).unwrap_or(255);
        p
    }

    /// Metadata for a structured instruction, via [`classify`].
    #[must_use]
    pub fn of_instr(instr: &Instr) -> Self {
        let (cls, weight) = classify(instr);
        Self::of(cls, weight)
    }

    /// Absorbs another op's retirement into this one (window fusion).
    pub fn merge(&mut self, other: &ProfOp) {
        self.weight += other.weight;
        for (a, b) in self.cls.iter_mut().zip(other.cls.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

impl Default for ProfOp {
    fn default() -> Self {
        Self::zero()
    }
}

/// Whether an instance counts execution events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// No counting; dispatch loops are the unchanged hot path.
    #[default]
    Off,
    /// Count retired instructions, dispatches, back edges and traps.
    Count,
}

impl ProfileMode {
    /// Reads `WATZ_PROFILE`: any non-empty value other than `0` turns
    /// counting on.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("WATZ_PROFILE") {
            Ok(v) if !v.is_empty() && v != "0" => ProfileMode::Count,
            _ => ProfileMode::Off,
        }
    }
}

/// Counters retired by a profiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecProfile {
    /// Retired guest instructions — identical across all engine rungs
    /// for the same input (the cross-rung invariant).
    pub instret: u64,
    /// Host dispatch-loop iterations (per-rung; *not* an invariant —
    /// this is exactly what fusion and register allocation shrink).
    pub host_ops: u64,
    /// Taken loop back edges (a fuel-style progress measure).
    pub backedges: u64,
    /// Executions that ended in a trap.
    pub traps: u64,
    /// Retired guest instructions per [`OpClass`].
    pub class_counts: [u64; N_CLASSES],
}

impl ExecProfile {
    /// Retired memory loads.
    #[must_use]
    pub fn loads(&self) -> u64 {
        self.class_counts[OpClass::Load as usize]
    }

    /// Retired memory stores.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.class_counts[OpClass::Store as usize]
    }

    /// Retired direct + indirect calls.
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.class_counts[OpClass::Call as usize]
    }

    /// Host dispatch ops per retired guest instruction (1.0 for the
    /// tree/flat rungs, < 1.0 once fusion/regalloc batch guest work).
    #[must_use]
    pub fn ops_per_instr(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.host_ops as f64 / self.instret as f64
        }
    }

    /// Adds another profile's counters into this one.
    pub fn merge(&mut self, other: &ExecProfile) {
        self.instret += other.instret;
        self.host_ops += other.host_ops;
        self.backedges += other.backedges;
        self.traps += other.traps;
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *a += b;
        }
    }
}

impl std::fmt::Display for ExecProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "instret {}  host_ops {}  ops/instr {:.3}  backedges {}  traps {}",
            self.instret,
            self.host_ops,
            self.ops_per_instr(),
            self.backedges,
            self.traps
        )?;
        write!(f, "classes:")?;
        for (name, count) in OpClass::NAMES.iter().zip(self.class_counts.iter()) {
            if *count > 0 {
                write!(f, " {name} {count}")?;
            }
        }
        Ok(())
    }
}

/// The dispatch loops' counting hook, monomorphised per mode.
///
/// Call sites are guarded by `if P::ENABLED { ... }`, so the
/// [`NoProfile`] instantiation compiles to the unchanged hot loop.
pub trait Profiler {
    /// `false` erases every counting statement at compile time.
    const ENABLED: bool;

    /// Retires one dispatched op with lowered metadata (also counts
    /// the host dispatch).
    fn retire(&mut self, op: &ProfOp);

    /// Retires one dispatched op of a known class and weight (also
    /// counts the host dispatch).
    fn retire1(&mut self, cls: OpClass, weight: u32);

    /// Retires deferred guest work from an op already dispatched (no
    /// host dispatch counted): e.g. the trailing `local.set` of a fused
    /// binop-set window, paid only once the binop succeeded.
    fn retire_tail(&mut self, cls: OpClass, weight: u32);

    /// Records a taken loop back edge.
    fn backedge(&mut self);
}

/// The disabled profiler: a ZST whose hooks are dead code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProfile;

impl Profiler for NoProfile {
    const ENABLED: bool = false;

    #[inline(always)]
    fn retire(&mut self, _op: &ProfOp) {}

    #[inline(always)]
    fn retire1(&mut self, _cls: OpClass, _weight: u32) {}

    #[inline(always)]
    fn retire_tail(&mut self, _cls: OpClass, _weight: u32) {}

    #[inline(always)]
    fn backedge(&mut self) {}
}

impl Profiler for ExecProfile {
    const ENABLED: bool = true;

    #[inline]
    fn retire(&mut self, op: &ProfOp) {
        self.host_ops += 1;
        self.instret += u64::from(op.weight);
        for (total, c) in self.class_counts.iter_mut().zip(op.cls.iter()) {
            *total += u64::from(*c);
        }
    }

    #[inline]
    fn retire1(&mut self, cls: OpClass, weight: u32) {
        self.host_ops += 1;
        self.instret += u64::from(weight);
        self.class_counts[cls as usize] += u64::from(weight);
    }

    #[inline]
    fn retire_tail(&mut self, cls: OpClass, weight: u32) {
        self.instret += u64::from(weight);
        self.class_counts[cls as usize] += u64::from(weight);
    }

    #[inline]
    fn backedge(&mut self) {
        self.backedges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_weights_match_flat_lowering_shape() {
        // Shape-only opcodes retire nothing; everything else retires 1.
        for (i, w) in [
            (Instr::Nop, 0),
            (Instr::End, 0),
            (Instr::Else, 0),
            (Instr::Block(crate::types::BlockType::Empty), 0),
            (Instr::Loop(crate::types::BlockType::Empty), 0),
            (Instr::If(crate::types::BlockType::Empty), 1),
            (Instr::Return, 1),
            (Instr::I32Add, 1),
            (Instr::LocalGet(0), 1),
            (Instr::I32Const(7), 1),
            (Instr::Drop, 1),
        ] {
            assert_eq!(classify(&i).1, w, "weight of {i:?}");
        }
    }

    #[test]
    fn profop_merge_accumulates_weight_and_classes() {
        let mut window = ProfOp::of(OpClass::Local, 1);
        window.merge(&ProfOp::of(OpClass::Local, 1));
        window.merge(&ProfOp::of(OpClass::Arith, 1));
        assert_eq!(window.weight, 3);
        assert_eq!(window.cls[OpClass::Local as usize], 2);
        assert_eq!(window.cls[OpClass::Arith as usize], 1);
    }

    #[test]
    fn retire_sums_into_histogram() {
        let mut p = ExecProfile::default();
        let mut w = ProfOp::of(OpClass::Load, 1);
        w.merge(&ProfOp::of(OpClass::Arith, 1));
        p.retire(&w);
        p.retire1(OpClass::Store, 1);
        p.retire1(OpClass::Control, 0);
        assert_eq!(p.instret, 3);
        assert_eq!(p.host_ops, 3);
        assert_eq!(p.loads(), 1);
        assert_eq!(p.stores(), 1);
        let total: u64 = p.class_counts.iter().sum();
        assert_eq!(total, p.instret);
    }

    #[test]
    fn profile_mode_env_parsing() {
        // from_env reads the live environment; just pin the default.
        assert_eq!(ProfileMode::default(), ProfileMode::Off);
    }
}

//! Binary encoder: turns a [`Module`] back into the Wasm binary format.
//!
//! This is the backend of the MiniC compiler (the reproduction's WASI-SDK
//! stand-in) and of the synthetic application generator used by the Fig 4
//! startup benchmark. `decode(encode(m)) == m` is property-tested.

use crate::instr::{Instr, MemArg};
use crate::leb128::{write_i32, write_i64, write_u32};
use crate::module::{ExportKind, Module};
use crate::types::{BlockType, FuncType, Limits, ValType};

/// Encodes a module into its binary representation.
#[must_use]
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&[1, 0, 0, 0]);

    // Section 1: types.
    if !module.types.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.types.len() as u32);
        for ty in &module.types {
            encode_func_type(&mut body, ty);
        }
        section(&mut out, 1, &body);
    }

    // Section 2: imports.
    if !module.func_imports.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.func_imports.len() as u32);
        for imp in &module.func_imports {
            encode_name(&mut body, &imp.module);
            encode_name(&mut body, &imp.name);
            body.push(0x00);
            write_u32(&mut body, imp.type_idx);
        }
        section(&mut out, 2, &body);
    }

    // Section 3: function declarations.
    if !module.funcs.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.funcs.len() as u32);
        for f in &module.funcs {
            write_u32(&mut body, f.type_idx);
        }
        section(&mut out, 3, &body);
    }

    // Section 4: tables.
    if !module.tables.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.tables.len() as u32);
        for t in &module.tables {
            body.push(0x70);
            encode_limits(&mut body, t);
        }
        section(&mut out, 4, &body);
    }

    // Section 5: memories.
    if !module.memories.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.memories.len() as u32);
        for m in &module.memories {
            encode_limits(&mut body, m);
        }
        section(&mut out, 5, &body);
    }

    // Section 6: globals.
    if !module.globals.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.globals.len() as u32);
        for g in &module.globals {
            body.push(g.ty.val_type.to_byte());
            body.push(u8::from(g.ty.mutable));
            encode_instr(&mut body, &g.init);
            body.push(0x0b);
        }
        section(&mut out, 6, &body);
    }

    // Section 7: exports.
    if !module.exports.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.exports.len() as u32);
        for e in &module.exports {
            encode_name(&mut body, &e.name);
            body.push(match e.kind {
                ExportKind::Func => 0x00,
                ExportKind::Table => 0x01,
                ExportKind::Memory => 0x02,
                ExportKind::Global => 0x03,
            });
            write_u32(&mut body, e.index);
        }
        section(&mut out, 7, &body);
    }

    // Section 8: start.
    if let Some(start) = module.start {
        let mut body = Vec::new();
        write_u32(&mut body, start);
        section(&mut out, 8, &body);
    }

    // Section 9: element segments.
    if !module.elems.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.elems.len() as u32);
        for e in &module.elems {
            write_u32(&mut body, 0); // active, table 0
            encode_instr(&mut body, &e.offset);
            body.push(0x0b);
            write_u32(&mut body, e.funcs.len() as u32);
            for f in &e.funcs {
                write_u32(&mut body, *f);
            }
        }
        section(&mut out, 9, &body);
    }

    // Section 10: code.
    if !module.funcs.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.funcs.len() as u32);
        for f in &module.funcs {
            let mut func_body = Vec::new();
            // Run-length encode locals.
            let mut groups: Vec<(u32, ValType)> = Vec::new();
            for l in &f.locals {
                match groups.last_mut() {
                    Some((count, ty)) if ty == l => *count += 1,
                    _ => groups.push((1, *l)),
                }
            }
            write_u32(&mut func_body, groups.len() as u32);
            for (count, ty) in groups {
                write_u32(&mut func_body, count);
                func_body.push(ty.to_byte());
            }
            for instr in &f.code {
                encode_instr(&mut func_body, instr);
            }
            write_u32(&mut body, func_body.len() as u32);
            body.extend_from_slice(&func_body);
        }
        section(&mut out, 10, &body);
    }

    // Section 11: data segments.
    if !module.data.is_empty() {
        let mut body = Vec::new();
        write_u32(&mut body, module.data.len() as u32);
        for d in &module.data {
            write_u32(&mut body, 0); // active, memory 0
            encode_instr(&mut body, &d.offset);
            body.push(0x0b);
            write_u32(&mut body, d.bytes.len() as u32);
            body.extend_from_slice(&d.bytes);
        }
        section(&mut out, 11, &body);
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, body: &[u8]) {
    out.push(id);
    write_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

fn encode_name(out: &mut Vec<u8>, name: &str) {
    write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

fn encode_func_type(out: &mut Vec<u8>, ty: &FuncType) {
    out.push(0x60);
    write_u32(out, ty.params.len() as u32);
    for p in &ty.params {
        out.push(p.to_byte());
    }
    write_u32(out, ty.results.len() as u32);
    for r in &ty.results {
        out.push(r.to_byte());
    }
}

fn encode_limits(out: &mut Vec<u8>, limits: &Limits) {
    match limits.max {
        None => {
            out.push(0x00);
            write_u32(out, limits.min);
        }
        Some(max) => {
            out.push(0x01);
            write_u32(out, limits.min);
            write_u32(out, max);
        }
    }
}

fn encode_block_type(out: &mut Vec<u8>, bt: &BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(vt) => out.push(vt.to_byte()),
        BlockType::Func(idx) => write_i64(out, i64::from(*idx)),
    }
}

fn encode_mem_arg(out: &mut Vec<u8>, m: &MemArg) {
    write_u32(out, m.align);
    write_u32(out, m.offset);
}

/// Encodes a single instruction.
#[allow(clippy::too_many_lines)]
pub fn encode_instr(out: &mut Vec<u8>, instr: &Instr) {
    use Instr::*;
    match instr {
        Unreachable => out.push(0x00),
        Nop => out.push(0x01),
        Block(bt) => {
            out.push(0x02);
            encode_block_type(out, bt);
        }
        Loop(bt) => {
            out.push(0x03);
            encode_block_type(out, bt);
        }
        If(bt) => {
            out.push(0x04);
            encode_block_type(out, bt);
        }
        Else => out.push(0x05),
        End => out.push(0x0b),
        Br(l) => {
            out.push(0x0c);
            write_u32(out, *l);
        }
        BrIf(l) => {
            out.push(0x0d);
            write_u32(out, *l);
        }
        BrTable { targets, default } => {
            out.push(0x0e);
            write_u32(out, targets.len() as u32);
            for t in targets {
                write_u32(out, *t);
            }
            write_u32(out, *default);
        }
        Return => out.push(0x0f),
        Call(f) => {
            out.push(0x10);
            write_u32(out, *f);
        }
        CallIndirect { type_idx, table } => {
            out.push(0x11);
            write_u32(out, *type_idx);
            write_u32(out, *table);
        }
        Drop => out.push(0x1a),
        Select => out.push(0x1b),
        LocalGet(i) => {
            out.push(0x20);
            write_u32(out, *i);
        }
        LocalSet(i) => {
            out.push(0x21);
            write_u32(out, *i);
        }
        LocalTee(i) => {
            out.push(0x22);
            write_u32(out, *i);
        }
        GlobalGet(i) => {
            out.push(0x23);
            write_u32(out, *i);
        }
        GlobalSet(i) => {
            out.push(0x24);
            write_u32(out, *i);
        }
        I32Load(m) => {
            out.push(0x28);
            encode_mem_arg(out, m);
        }
        I64Load(m) => {
            out.push(0x29);
            encode_mem_arg(out, m);
        }
        F32Load(m) => {
            out.push(0x2a);
            encode_mem_arg(out, m);
        }
        F64Load(m) => {
            out.push(0x2b);
            encode_mem_arg(out, m);
        }
        I32Load8S(m) => {
            out.push(0x2c);
            encode_mem_arg(out, m);
        }
        I32Load8U(m) => {
            out.push(0x2d);
            encode_mem_arg(out, m);
        }
        I32Load16S(m) => {
            out.push(0x2e);
            encode_mem_arg(out, m);
        }
        I32Load16U(m) => {
            out.push(0x2f);
            encode_mem_arg(out, m);
        }
        I64Load8S(m) => {
            out.push(0x30);
            encode_mem_arg(out, m);
        }
        I64Load8U(m) => {
            out.push(0x31);
            encode_mem_arg(out, m);
        }
        I64Load16S(m) => {
            out.push(0x32);
            encode_mem_arg(out, m);
        }
        I64Load16U(m) => {
            out.push(0x33);
            encode_mem_arg(out, m);
        }
        I64Load32S(m) => {
            out.push(0x34);
            encode_mem_arg(out, m);
        }
        I64Load32U(m) => {
            out.push(0x35);
            encode_mem_arg(out, m);
        }
        I32Store(m) => {
            out.push(0x36);
            encode_mem_arg(out, m);
        }
        I64Store(m) => {
            out.push(0x37);
            encode_mem_arg(out, m);
        }
        F32Store(m) => {
            out.push(0x38);
            encode_mem_arg(out, m);
        }
        F64Store(m) => {
            out.push(0x39);
            encode_mem_arg(out, m);
        }
        I32Store8(m) => {
            out.push(0x3a);
            encode_mem_arg(out, m);
        }
        I32Store16(m) => {
            out.push(0x3b);
            encode_mem_arg(out, m);
        }
        I64Store8(m) => {
            out.push(0x3c);
            encode_mem_arg(out, m);
        }
        I64Store16(m) => {
            out.push(0x3d);
            encode_mem_arg(out, m);
        }
        I64Store32(m) => {
            out.push(0x3e);
            encode_mem_arg(out, m);
        }
        MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        I32Const(v) => {
            out.push(0x41);
            write_i32(out, *v);
        }
        I64Const(v) => {
            out.push(0x42);
            write_i64(out, *v);
        }
        F32Const(v) => {
            out.push(0x43);
            out.extend_from_slice(&v.to_le_bytes());
        }
        F64Const(v) => {
            out.push(0x44);
            out.extend_from_slice(&v.to_le_bytes());
        }
        MemoryCopy => {
            out.push(0xfc);
            write_u32(out, 10);
            out.push(0x00);
            out.push(0x00);
        }
        MemoryFill => {
            out.push(0xfc);
            write_u32(out, 11);
            out.push(0x00);
        }
        simple => out.push(simple_opcode(simple)),
    }
}

/// Opcode byte for instructions without immediates.
///
/// # Panics
///
/// Panics if called with an instruction that has immediates (those are
/// handled directly in [`encode_instr`]).
#[allow(clippy::too_many_lines)]
fn simple_opcode(instr: &Instr) -> u8 {
    use Instr::*;
    match instr {
        I32Eqz => 0x45,
        I32Eq => 0x46,
        I32Ne => 0x47,
        I32LtS => 0x48,
        I32LtU => 0x49,
        I32GtS => 0x4a,
        I32GtU => 0x4b,
        I32LeS => 0x4c,
        I32LeU => 0x4d,
        I32GeS => 0x4e,
        I32GeU => 0x4f,
        I64Eqz => 0x50,
        I64Eq => 0x51,
        I64Ne => 0x52,
        I64LtS => 0x53,
        I64LtU => 0x54,
        I64GtS => 0x55,
        I64GtU => 0x56,
        I64LeS => 0x57,
        I64LeU => 0x58,
        I64GeS => 0x59,
        I64GeU => 0x5a,
        F32Eq => 0x5b,
        F32Ne => 0x5c,
        F32Lt => 0x5d,
        F32Gt => 0x5e,
        F32Le => 0x5f,
        F32Ge => 0x60,
        F64Eq => 0x61,
        F64Ne => 0x62,
        F64Lt => 0x63,
        F64Gt => 0x64,
        F64Le => 0x65,
        F64Ge => 0x66,
        I32Clz => 0x67,
        I32Ctz => 0x68,
        I32Popcnt => 0x69,
        I32Add => 0x6a,
        I32Sub => 0x6b,
        I32Mul => 0x6c,
        I32DivS => 0x6d,
        I32DivU => 0x6e,
        I32RemS => 0x6f,
        I32RemU => 0x70,
        I32And => 0x71,
        I32Or => 0x72,
        I32Xor => 0x73,
        I32Shl => 0x74,
        I32ShrS => 0x75,
        I32ShrU => 0x76,
        I32Rotl => 0x77,
        I32Rotr => 0x78,
        I64Clz => 0x79,
        I64Ctz => 0x7a,
        I64Popcnt => 0x7b,
        I64Add => 0x7c,
        I64Sub => 0x7d,
        I64Mul => 0x7e,
        I64DivS => 0x7f,
        I64DivU => 0x80,
        I64RemS => 0x81,
        I64RemU => 0x82,
        I64And => 0x83,
        I64Or => 0x84,
        I64Xor => 0x85,
        I64Shl => 0x86,
        I64ShrS => 0x87,
        I64ShrU => 0x88,
        I64Rotl => 0x89,
        I64Rotr => 0x8a,
        F32Abs => 0x8b,
        F32Neg => 0x8c,
        F32Ceil => 0x8d,
        F32Floor => 0x8e,
        F32Trunc => 0x8f,
        F32Nearest => 0x90,
        F32Sqrt => 0x91,
        F32Add => 0x92,
        F32Sub => 0x93,
        F32Mul => 0x94,
        F32Div => 0x95,
        F32Min => 0x96,
        F32Max => 0x97,
        F32Copysign => 0x98,
        F64Abs => 0x99,
        F64Neg => 0x9a,
        F64Ceil => 0x9b,
        F64Floor => 0x9c,
        F64Trunc => 0x9d,
        F64Nearest => 0x9e,
        F64Sqrt => 0x9f,
        F64Add => 0xa0,
        F64Sub => 0xa1,
        F64Mul => 0xa2,
        F64Div => 0xa3,
        F64Min => 0xa4,
        F64Max => 0xa5,
        F64Copysign => 0xa6,
        I32WrapI64 => 0xa7,
        I32TruncF32S => 0xa8,
        I32TruncF32U => 0xa9,
        I32TruncF64S => 0xaa,
        I32TruncF64U => 0xab,
        I64ExtendI32S => 0xac,
        I64ExtendI32U => 0xad,
        I64TruncF32S => 0xae,
        I64TruncF32U => 0xaf,
        I64TruncF64S => 0xb0,
        I64TruncF64U => 0xb1,
        F32ConvertI32S => 0xb2,
        F32ConvertI32U => 0xb3,
        F32ConvertI64S => 0xb4,
        F32ConvertI64U => 0xb5,
        F32DemoteF64 => 0xb6,
        F64ConvertI32S => 0xb7,
        F64ConvertI32U => 0xb8,
        F64ConvertI64S => 0xb9,
        F64ConvertI64U => 0xba,
        F64PromoteF32 => 0xbb,
        I32ReinterpretF32 => 0xbc,
        I64ReinterpretF64 => 0xbd,
        F32ReinterpretI32 => 0xbe,
        F64ReinterpretI64 => 0xbf,
        I32Extend8S => 0xc0,
        I32Extend16S => 0xc1,
        I64Extend8S => 0xc2,
        I64Extend16S => 0xc3,
        I64Extend32S => 0xc4,
        other => panic!("instruction {other:?} has immediates"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::module::{DataSegment, Export, FuncBody, FuncImport, Global};
    use crate::types::GlobalType;

    #[test]
    fn empty_module_roundtrip() {
        let m = Module::default();
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn full_module_roundtrip() {
        let mut m = Module::default();
        m.types
            .push(FuncType::new(&[ValType::I32], &[ValType::I64]));
        m.types.push(FuncType::new(&[], &[]));
        m.func_imports.push(FuncImport {
            module: "env".into(),
            name: "host".into(),
            type_idx: 1,
        });
        m.funcs.push(FuncBody {
            type_idx: 0,
            locals: vec![ValType::I32, ValType::I32, ValType::F64],
            code: vec![
                Instr::Block(BlockType::Value(ValType::I64)),
                Instr::LocalGet(0),
                Instr::I64ExtendI32S,
                Instr::End,
                Instr::End,
            ],
        });
        m.memories.push(Limits {
            min: 1,
            max: Some(16),
        });
        m.tables.push(Limits { min: 2, max: None });
        m.globals.push(Global {
            ty: GlobalType {
                val_type: ValType::I32,
                mutable: true,
            },
            init: Instr::I32Const(-7),
        });
        m.exports.push(Export {
            name: "f".into(),
            kind: ExportKind::Func,
            index: 1,
        });
        m.exports.push(Export {
            name: "memory".into(),
            kind: ExportKind::Memory,
            index: 0,
        });
        m.data.push(DataSegment {
            memory: 0,
            offset: Instr::I32Const(8),
            bytes: b"hello".to_vec(),
        });
        m.start = Some(1);
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn instr_with_all_control_roundtrip() {
        let mut m = Module::default();
        m.types
            .push(FuncType::new(&[ValType::I32], &[ValType::I32]));
        m.funcs.push(FuncBody {
            type_idx: 0,
            locals: vec![],
            code: vec![
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::If(BlockType::Empty),
                Instr::Br(1),
                Instr::Else,
                Instr::Nop,
                Instr::End,
                Instr::LocalGet(0),
                Instr::BrTable {
                    targets: vec![0, 1],
                    default: 0,
                },
                Instr::End,
                Instr::LocalGet(0),
                Instr::End,
            ],
        });
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }

    #[test]
    fn float_consts_roundtrip_bitexact() {
        let mut m = Module::default();
        m.types.push(FuncType::new(&[], &[ValType::F64]));
        m.funcs.push(FuncBody {
            type_idx: 0,
            locals: vec![],
            code: vec![
                Instr::F32Const(1.5e-30),
                Instr::Drop,
                Instr::F64Const(-0.0),
                Instr::End,
            ],
        });
        let decoded = decode(&encode(&m)).unwrap();
        match (&decoded.funcs[0].code[0], &decoded.funcs[0].code[2]) {
            (Instr::F32Const(a), Instr::F64Const(b)) => {
                assert_eq!(a.to_bits(), 1.5e-30f32.to_bits());
                assert_eq!(b.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bulk_memory_roundtrip() {
        let mut m = Module::default();
        m.types.push(FuncType::new(&[], &[]));
        m.memories.push(Limits { min: 1, max: None });
        m.funcs.push(FuncBody {
            type_idx: 0,
            locals: vec![],
            code: vec![
                Instr::I32Const(0),
                Instr::I32Const(64),
                Instr::I32Const(16),
                Instr::MemoryCopy,
                Instr::I32Const(0),
                Instr::I32Const(0),
                Instr::I32Const(32),
                Instr::MemoryFill,
                Instr::End,
            ],
        });
        assert_eq!(decode(&encode(&m)).unwrap(), m);
    }
}

//! Module validation: the specification's type-checking algorithm.
//!
//! WaTZ inherits Wasm's safety argument — software fault isolation and
//! control-flow integrity — from validation, so this is a complete
//! implementation of the algorithm from the spec appendix (operand stack of
//! possibly-unknown types plus a control stack of frames), not a heuristic.

use crate::instr::Instr;
use crate::module::{ExportKind, Module};
use crate::types::{BlockType, FuncType, ValType};

/// Validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Index out of bounds for the given index space.
    OutOfBounds {
        /// Which index space.
        space: &'static str,
        /// The offending index.
        index: u32,
    },
    /// Operand stack type mismatch.
    TypeMismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// Operand stack underflow (popping past the current frame).
    StackUnderflow,
    /// Mismatched or missing `end`/`else`.
    MalformedControl,
    /// Values left on the stack at the end of a block.
    UnbalancedStack,
    /// A mutability rule was violated (e.g. `global.set` on an immutable).
    ImmutableGlobal(u32),
    /// More than one memory/table, or bad limits.
    BadDefinition(&'static str),
    /// Duplicate export name.
    DuplicateExport(String),
    /// The start function has a non-empty signature.
    BadStart,
    /// A constant initializer had the wrong type.
    BadInit,
    /// Alignment exponent larger than the access width.
    BadAlignment,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::OutOfBounds { space, index } => {
                write!(f, "{space} index {index} out of bounds")
            }
            ValidationError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValidationError::StackUnderflow => write!(f, "operand stack underflow"),
            ValidationError::MalformedControl => write!(f, "malformed control structure"),
            ValidationError::UnbalancedStack => write!(f, "unbalanced operand stack"),
            ValidationError::ImmutableGlobal(i) => write!(f, "global {i} is immutable"),
            ValidationError::BadDefinition(what) => write!(f, "bad definition: {what}"),
            ValidationError::DuplicateExport(name) => write!(f, "duplicate export '{name}'"),
            ValidationError::BadStart => write!(f, "start function must have type [] -> []"),
            ValidationError::BadInit => write!(f, "bad constant initializer"),
            ValidationError::BadAlignment => write!(f, "alignment exceeds access width"),
        }
    }
}

impl std::error::Error for ValidationError {}

type VResult = Result<(), ValidationError>;

/// Validates an entire module.
///
/// # Errors
///
/// Returns the first [`ValidationError`] found.
pub fn validate(module: &Module) -> VResult {
    // Types referenced by imports and functions.
    for imp in &module.func_imports {
        check_type_idx(module, imp.type_idx)?;
    }
    for f in &module.funcs {
        check_type_idx(module, f.type_idx)?;
    }

    // Memories: at most one, sane limits.
    if module.memories.len() > 1 {
        return Err(ValidationError::BadDefinition("multiple memories"));
    }
    for m in &module.memories {
        if let Some(max) = m.max {
            if max < m.min {
                return Err(ValidationError::BadDefinition("memory max < min"));
            }
        }
    }
    if module.tables.len() > 1 {
        return Err(ValidationError::BadDefinition("multiple tables"));
    }
    for t in &module.tables {
        if let Some(max) = t.max {
            if max < t.min {
                return Err(ValidationError::BadDefinition("table max < min"));
            }
        }
    }

    // Globals: constant initializer of matching type.
    for g in &module.globals {
        let init_ty = match g.init {
            Instr::I32Const(_) => ValType::I32,
            Instr::I64Const(_) => ValType::I64,
            Instr::F32Const(_) => ValType::F32,
            Instr::F64Const(_) => ValType::F64,
            _ => return Err(ValidationError::BadInit),
        };
        if init_ty != g.ty.val_type {
            return Err(ValidationError::BadInit);
        }
    }

    // Exports: indices in bounds, unique names.
    let mut names = std::collections::HashSet::new();
    for e in &module.exports {
        if !names.insert(e.name.as_str()) {
            return Err(ValidationError::DuplicateExport(e.name.clone()));
        }
        let (space, bound) = match e.kind {
            ExportKind::Func => ("function", module.func_count()),
            ExportKind::Table => ("table", module.tables.len()),
            ExportKind::Memory => ("memory", module.memories.len()),
            ExportKind::Global => ("global", module.globals.len()),
        };
        if e.index as usize >= bound {
            return Err(ValidationError::OutOfBounds {
                space,
                index: e.index,
            });
        }
    }

    // Start function: exists, [] -> [].
    if let Some(start) = module.start {
        let ty_idx = module
            .func_type_idx(start)
            .ok_or(ValidationError::OutOfBounds {
                space: "function",
                index: start,
            })?;
        let ty = &module.types[ty_idx as usize];
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidationError::BadStart);
        }
    }

    // Element segments.
    for e in &module.elems {
        if e.table as usize >= module.tables.len() {
            return Err(ValidationError::OutOfBounds {
                space: "table",
                index: e.table,
            });
        }
        if !matches!(e.offset, Instr::I32Const(_)) {
            return Err(ValidationError::BadInit);
        }
        for func in &e.funcs {
            if *func as usize >= module.func_count() {
                return Err(ValidationError::OutOfBounds {
                    space: "function",
                    index: *func,
                });
            }
        }
    }

    // Data segments.
    for d in &module.data {
        if d.memory as usize >= module.memories.len() {
            return Err(ValidationError::OutOfBounds {
                space: "memory",
                index: d.memory,
            });
        }
        if !matches!(d.offset, Instr::I32Const(_)) {
            return Err(ValidationError::BadInit);
        }
    }

    // Function bodies.
    for f in &module.funcs {
        let ty = &module.types[f.type_idx as usize];
        let mut checker = FuncChecker::new(module, ty, &f.locals);
        checker.check(&f.code)?;
    }

    Ok(())
}

fn check_type_idx(module: &Module, idx: u32) -> VResult {
    if idx as usize >= module.types.len() {
        return Err(ValidationError::OutOfBounds {
            space: "type",
            index: idx,
        });
    }
    Ok(())
}

/// An operand type on the checker stack: a concrete type or unknown
/// (produced by stack-polymorphic instructions after `unreachable`).
type OpType = Option<ValType>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Func,
    Block,
    Loop,
    If,
    Else,
}

#[derive(Debug)]
struct CtrlFrame {
    kind: FrameKind,
    start_types: Vec<ValType>,
    end_types: Vec<ValType>,
    height: usize,
    unreachable: bool,
}

struct FuncChecker<'m> {
    module: &'m Module,
    locals: Vec<ValType>,
    vals: Vec<OpType>,
    ctrls: Vec<CtrlFrame>,
}

impl<'m> FuncChecker<'m> {
    fn new(module: &'m Module, ty: &FuncType, extra_locals: &[ValType]) -> Self {
        let mut locals = ty.params.clone();
        locals.extend_from_slice(extra_locals);
        let mut checker = FuncChecker {
            module,
            locals,
            vals: Vec::new(),
            ctrls: Vec::new(),
        };
        checker.ctrls.push(CtrlFrame {
            kind: FrameKind::Func,
            start_types: Vec::new(),
            end_types: ty.results.clone(),
            height: 0,
            unreachable: false,
        });
        checker
    }

    fn block_types(&self, bt: BlockType) -> Result<(Vec<ValType>, Vec<ValType>), ValidationError> {
        match bt {
            BlockType::Empty => Ok((Vec::new(), Vec::new())),
            BlockType::Value(t) => Ok((Vec::new(), vec![t])),
            BlockType::Func(idx) => {
                let ty =
                    self.module
                        .types
                        .get(idx as usize)
                        .ok_or(ValidationError::OutOfBounds {
                            space: "type",
                            index: idx,
                        })?;
                Ok((ty.params.clone(), ty.results.clone()))
            }
        }
    }

    fn push(&mut self, t: ValType) {
        self.vals.push(Some(t));
    }

    fn push_unknown(&mut self) {
        self.vals.push(None);
    }

    fn pop_any(&mut self) -> Result<OpType, ValidationError> {
        let frame = self.ctrls.last().ok_or(ValidationError::MalformedControl)?;
        if self.vals.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(ValidationError::StackUnderflow);
        }
        Ok(self.vals.pop().expect("checked non-empty"))
    }

    fn pop(&mut self, expect: ValType) -> VResult {
        match self.pop_any()? {
            None => Ok(()),
            Some(t) if t == expect => Ok(()),
            Some(t) => Err(ValidationError::TypeMismatch {
                expected: expect.to_string(),
                found: t.to_string(),
            }),
        }
    }

    fn pop_many(&mut self, types: &[ValType]) -> VResult {
        for t in types.iter().rev() {
            self.pop(*t)?;
        }
        Ok(())
    }

    fn push_many(&mut self, types: &[ValType]) {
        for t in types {
            self.push(*t);
        }
    }

    fn push_frame(&mut self, kind: FrameKind, start: Vec<ValType>, end: Vec<ValType>) {
        let height = self.vals.len();
        self.push_many(&start.clone());
        self.ctrls.push(CtrlFrame {
            kind,
            start_types: start,
            end_types: end,
            height,
            unreachable: false,
        });
    }

    fn pop_frame(&mut self) -> Result<CtrlFrame, ValidationError> {
        let frame_end = self
            .ctrls
            .last()
            .ok_or(ValidationError::MalformedControl)?
            .end_types
            .clone();
        self.pop_many(&frame_end)?;
        let frame = self.ctrls.pop().expect("checked non-empty");
        if self.vals.len() != frame.height {
            return Err(ValidationError::UnbalancedStack);
        }
        Ok(frame)
    }

    fn mark_unreachable(&mut self) -> VResult {
        let frame = self
            .ctrls
            .last_mut()
            .ok_or(ValidationError::MalformedControl)?;
        self.vals.truncate(frame.height);
        frame.unreachable = true;
        Ok(())
    }

    fn label_types(&self, depth: u32) -> Result<Vec<ValType>, ValidationError> {
        let idx = self.ctrls.len().checked_sub(1 + depth as usize).ok_or(
            ValidationError::OutOfBounds {
                space: "label",
                index: depth,
            },
        )?;
        let frame = &self.ctrls[idx];
        Ok(if frame.kind == FrameKind::Loop {
            frame.start_types.clone()
        } else {
            frame.end_types.clone()
        })
    }

    fn local(&self, idx: u32) -> Result<ValType, ValidationError> {
        self.locals
            .get(idx as usize)
            .copied()
            .ok_or(ValidationError::OutOfBounds {
                space: "local",
                index: idx,
            })
    }

    fn global(&self, idx: u32) -> Result<(ValType, bool), ValidationError> {
        self.module
            .globals
            .get(idx as usize)
            .map(|g| (g.ty.val_type, g.ty.mutable))
            .ok_or(ValidationError::OutOfBounds {
                space: "global",
                index: idx,
            })
    }

    fn require_memory(&self) -> VResult {
        if self.module.memories.is_empty() {
            return Err(ValidationError::BadDefinition("no memory defined"));
        }
        Ok(())
    }

    fn check_load(&mut self, t: ValType, width_log2: u32, align: u32) -> VResult {
        self.require_memory()?;
        if align > width_log2 {
            return Err(ValidationError::BadAlignment);
        }
        self.pop(ValType::I32)?;
        self.push(t);
        Ok(())
    }

    fn check_store(&mut self, t: ValType, width_log2: u32, align: u32) -> VResult {
        self.require_memory()?;
        if align > width_log2 {
            return Err(ValidationError::BadAlignment);
        }
        self.pop(t)?;
        self.pop(ValType::I32)?;
        Ok(())
    }

    fn unop(&mut self, t: ValType) -> VResult {
        self.pop(t)?;
        self.push(t);
        Ok(())
    }

    fn binop(&mut self, t: ValType) -> VResult {
        self.pop(t)?;
        self.pop(t)?;
        self.push(t);
        Ok(())
    }

    fn relop(&mut self, t: ValType) -> VResult {
        self.pop(t)?;
        self.pop(t)?;
        self.push(ValType::I32);
        Ok(())
    }

    fn cvt(&mut self, from: ValType, to: ValType) -> VResult {
        self.pop(from)?;
        self.push(to);
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn check(&mut self, code: &[Instr]) -> VResult {
        use Instr::*;
        use ValType::{F32, F64, I32, I64};
        for instr in code {
            match instr {
                Unreachable => self.mark_unreachable()?,
                Nop => {}
                Block(bt) => {
                    let (start, end) = self.block_types(*bt)?;
                    self.pop_many(&start)?;
                    self.push_frame(FrameKind::Block, start, end);
                }
                Loop(bt) => {
                    let (start, end) = self.block_types(*bt)?;
                    self.pop_many(&start)?;
                    self.push_frame(FrameKind::Loop, start, end);
                }
                If(bt) => {
                    self.pop(I32)?;
                    let (start, end) = self.block_types(*bt)?;
                    self.pop_many(&start)?;
                    self.push_frame(FrameKind::If, start, end);
                }
                Else => {
                    let frame = self.pop_frame()?;
                    if frame.kind != FrameKind::If {
                        return Err(ValidationError::MalformedControl);
                    }
                    self.push_frame(FrameKind::Else, frame.start_types, frame.end_types);
                }
                End => {
                    let frame = self.pop_frame()?;
                    // An `if` without `else` must have matching in/out types.
                    if frame.kind == FrameKind::If && frame.start_types != frame.end_types {
                        return Err(ValidationError::MalformedControl);
                    }
                    self.push_many(&frame.end_types);
                    if self.ctrls.is_empty() {
                        // That was the function's final End; nothing may follow.
                        continue;
                    }
                }
                Br(depth) => {
                    let types = self.label_types(*depth)?;
                    self.pop_many(&types)?;
                    self.mark_unreachable()?;
                }
                BrIf(depth) => {
                    self.pop(I32)?;
                    let types = self.label_types(*depth)?;
                    self.pop_many(&types)?;
                    self.push_many(&types);
                }
                BrTable { targets, default } => {
                    self.pop(I32)?;
                    let default_types = self.label_types(*default)?;
                    for t in targets {
                        let types = self.label_types(*t)?;
                        if types.len() != default_types.len() {
                            return Err(ValidationError::MalformedControl);
                        }
                    }
                    self.pop_many(&default_types)?;
                    self.mark_unreachable()?;
                }
                Return => {
                    let types = self.ctrls[0].end_types.clone();
                    self.pop_many(&types)?;
                    self.mark_unreachable()?;
                }
                Call(func_idx) => {
                    let ty_idx = self.module.func_type_idx(*func_idx).ok_or(
                        ValidationError::OutOfBounds {
                            space: "function",
                            index: *func_idx,
                        },
                    )?;
                    let ty = self.module.types[ty_idx as usize].clone();
                    self.pop_many(&ty.params)?;
                    self.push_many(&ty.results);
                }
                CallIndirect { type_idx, table } => {
                    if *table as usize >= self.module.tables.len() {
                        return Err(ValidationError::OutOfBounds {
                            space: "table",
                            index: *table,
                        });
                    }
                    check_type_idx(self.module, *type_idx)?;
                    let ty = self.module.types[*type_idx as usize].clone();
                    self.pop(I32)?;
                    self.pop_many(&ty.params)?;
                    self.push_many(&ty.results);
                }
                Drop => {
                    self.pop_any()?;
                }
                Select => {
                    self.pop(I32)?;
                    let a = self.pop_any()?;
                    let b = self.pop_any()?;
                    match (a, b) {
                        (Some(x), Some(y)) if x != y => {
                            return Err(ValidationError::TypeMismatch {
                                expected: x.to_string(),
                                found: y.to_string(),
                            })
                        }
                        (Some(x), _) => self.push(x),
                        (None, Some(y)) => self.push(y),
                        (None, None) => self.push_unknown(),
                    }
                }
                LocalGet(i) => {
                    let t = self.local(*i)?;
                    self.push(t);
                }
                LocalSet(i) => {
                    let t = self.local(*i)?;
                    self.pop(t)?;
                }
                LocalTee(i) => {
                    let t = self.local(*i)?;
                    self.pop(t)?;
                    self.push(t);
                }
                GlobalGet(i) => {
                    let (t, _) = self.global(*i)?;
                    self.push(t);
                }
                GlobalSet(i) => {
                    let (t, mutable) = self.global(*i)?;
                    if !mutable {
                        return Err(ValidationError::ImmutableGlobal(*i));
                    }
                    self.pop(t)?;
                }
                I32Load(m) => self.check_load(I32, 2, m.align)?,
                I64Load(m) => self.check_load(I64, 3, m.align)?,
                F32Load(m) => self.check_load(F32, 2, m.align)?,
                F64Load(m) => self.check_load(F64, 3, m.align)?,
                I32Load8S(m) | I32Load8U(m) => self.check_load(I32, 0, m.align)?,
                I32Load16S(m) | I32Load16U(m) => self.check_load(I32, 1, m.align)?,
                I64Load8S(m) | I64Load8U(m) => self.check_load(I64, 0, m.align)?,
                I64Load16S(m) | I64Load16U(m) => self.check_load(I64, 1, m.align)?,
                I64Load32S(m) | I64Load32U(m) => self.check_load(I64, 2, m.align)?,
                I32Store(m) => self.check_store(I32, 2, m.align)?,
                I64Store(m) => self.check_store(I64, 3, m.align)?,
                F32Store(m) => self.check_store(F32, 2, m.align)?,
                F64Store(m) => self.check_store(F64, 3, m.align)?,
                I32Store8(m) => self.check_store(I32, 0, m.align)?,
                I32Store16(m) => self.check_store(I32, 1, m.align)?,
                I64Store8(m) => self.check_store(I64, 0, m.align)?,
                I64Store16(m) => self.check_store(I64, 1, m.align)?,
                I64Store32(m) => self.check_store(I64, 2, m.align)?,
                MemorySize => {
                    self.require_memory()?;
                    self.push(I32);
                }
                MemoryGrow => {
                    self.require_memory()?;
                    self.pop(I32)?;
                    self.push(I32);
                }
                MemoryCopy | MemoryFill => {
                    self.require_memory()?;
                    self.pop(I32)?;
                    self.pop(I32)?;
                    self.pop(I32)?;
                }
                I32Const(_) => self.push(I32),
                I64Const(_) => self.push(I64),
                F32Const(_) => self.push(F32),
                F64Const(_) => self.push(F64),
                I32Eqz => self.cvt(I32, I32)?,
                I64Eqz => self.cvt(I64, I32)?,
                I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
                | I32GeU => self.relop(I32)?,
                I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
                | I64GeU => self.relop(I64)?,
                F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => self.relop(F32)?,
                F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => self.relop(F64)?,
                I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => self.unop(I32)?,
                I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => {
                    self.unop(I64)?
                }
                I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And
                | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => {
                    self.binop(I32)?
                }
                I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And
                | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => {
                    self.binop(I64)?
                }
                F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => {
                    self.unop(F32)?
                }
                F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => {
                    self.unop(F64)?
                }
                F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => {
                    self.binop(F32)?
                }
                F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                    self.binop(F64)?
                }
                I32WrapI64 => self.cvt(I64, I32)?,
                I32TruncF32S | I32TruncF32U => self.cvt(F32, I32)?,
                I32TruncF64S | I32TruncF64U => self.cvt(F64, I32)?,
                I64ExtendI32S | I64ExtendI32U => self.cvt(I32, I64)?,
                I64TruncF32S | I64TruncF32U => self.cvt(F32, I64)?,
                I64TruncF64S | I64TruncF64U => self.cvt(F64, I64)?,
                F32ConvertI32S | F32ConvertI32U => self.cvt(I32, F32)?,
                F32ConvertI64S | F32ConvertI64U => self.cvt(I64, F32)?,
                F32DemoteF64 => self.cvt(F64, F32)?,
                F64ConvertI32S | F64ConvertI32U => self.cvt(I32, F64)?,
                F64ConvertI64S | F64ConvertI64U => self.cvt(I64, F64)?,
                F64PromoteF32 => self.cvt(F32, F64)?,
                I32ReinterpretF32 => self.cvt(F32, I32)?,
                I64ReinterpretF64 => self.cvt(F64, I64)?,
                F32ReinterpretI32 => self.cvt(I32, F32)?,
                F64ReinterpretI64 => self.cvt(I64, F64)?,
            }
        }
        if !self.ctrls.is_empty() {
            return Err(ValidationError::MalformedControl);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::BlockType;

    fn check(build: impl FnOnce(&mut ModuleBuilder)) -> VResult {
        let mut b = ModuleBuilder::new();
        build(&mut b);
        validate(b.module())
    }

    #[test]
    fn valid_add_function() {
        check(|b| {
            let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
            let f = b.add_func(
                ty,
                &[],
                vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::I32Add,
                    Instr::End,
                ],
            );
            b.export_func("add", f);
        })
        .unwrap();
    }

    #[test]
    fn type_mismatch_caught() {
        let err = check(|b| {
            let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
            b.add_func(
                ty,
                &[],
                vec![Instr::LocalGet(0), Instr::F64Sqrt, Instr::End],
            );
        })
        .unwrap_err();
        assert!(matches!(err, ValidationError::TypeMismatch { .. }));
    }

    #[test]
    fn stack_underflow_caught() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_func(ty, &[], vec![Instr::I32Add, Instr::End]);
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::StackUnderflow);
    }

    #[test]
    fn leftover_values_caught() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_func(ty, &[], vec![Instr::I32Const(1), Instr::End]);
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::UnbalancedStack);
    }

    #[test]
    fn missing_result_caught() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[ValType::I32]);
            b.add_func(ty, &[], vec![Instr::End]);
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::StackUnderflow);
    }

    #[test]
    fn unreachable_is_stack_polymorphic() {
        check(|b| {
            let ty = b.add_type(&[], &[ValType::I32]);
            b.add_func(ty, &[], vec![Instr::Unreachable, Instr::End]);
        })
        .unwrap();
    }

    #[test]
    fn br_to_outer_label() {
        check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_func(
                ty,
                &[],
                vec![
                    Instr::Block(BlockType::Empty),
                    Instr::Br(0),
                    Instr::End,
                    Instr::End,
                ],
            );
        })
        .unwrap();
    }

    #[test]
    fn br_depth_out_of_bounds() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_func(ty, &[], vec![Instr::Br(5), Instr::End]);
        })
        .unwrap_err();
        assert!(matches!(
            err,
            ValidationError::OutOfBounds { space: "label", .. }
        ));
    }

    #[test]
    fn if_without_else_needs_matching_types() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[ValType::I32]);
            b.add_func(
                ty,
                &[],
                vec![
                    Instr::I32Const(1),
                    Instr::If(BlockType::Value(ValType::I32)),
                    Instr::I32Const(2),
                    Instr::End,
                    Instr::End,
                ],
            );
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::MalformedControl);
    }

    #[test]
    fn immutable_global_set_rejected() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_global(ValType::I32, false, Instr::I32Const(0));
            b.add_func(
                ty,
                &[],
                vec![Instr::I32Const(1), Instr::GlobalSet(0), Instr::End],
            );
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::ImmutableGlobal(0));
    }

    #[test]
    fn memory_ops_require_memory() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[ValType::I32]);
            b.add_func(
                ty,
                &[],
                vec![
                    Instr::I32Const(0),
                    Instr::I32Load(crate::instr::MemArg::align(2)),
                    Instr::End,
                ],
            );
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::BadDefinition("no memory defined"));
    }

    #[test]
    fn over_aligned_access_rejected() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[ValType::I32]);
            b.add_memory(1, None);
            b.add_func(
                ty,
                &[],
                vec![
                    Instr::I32Const(0),
                    Instr::I32Load(crate::instr::MemArg::align(3)),
                    Instr::End,
                ],
            );
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::BadAlignment);
    }

    #[test]
    fn call_type_checked() {
        let err = check(|b| {
            let ty_ii = b.add_type(&[ValType::I64], &[]);
            let ty_v = b.add_type(&[], &[]);
            let callee = b.add_func(ty_ii, &[], vec![Instr::End]);
            b.add_func(
                ty_v,
                &[],
                vec![Instr::I32Const(0), Instr::Call(callee), Instr::End],
            );
        })
        .unwrap_err();
        assert!(matches!(err, ValidationError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_export_rejected() {
        let err = check(|b| {
            let ty = b.add_type(&[], &[]);
            let f = b.add_func(ty, &[], vec![Instr::End]);
            b.export_func("x", f);
            b.export_func("x", f);
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::DuplicateExport("x".into()));
    }

    #[test]
    fn start_must_be_nullary() {
        let err = check(|b| {
            let ty = b.add_type(&[ValType::I32], &[]);
            let f = b.add_func(ty, &[], vec![Instr::End]);
            b.set_start(f);
        })
        .unwrap_err();
        assert_eq!(err, ValidationError::BadStart);
    }

    #[test]
    fn br_table_checked() {
        check(|b| {
            let ty = b.add_type(&[ValType::I32], &[]);
            b.add_func(
                ty,
                &[],
                vec![
                    Instr::Block(BlockType::Empty),
                    Instr::Block(BlockType::Empty),
                    Instr::LocalGet(0),
                    Instr::BrTable {
                        targets: vec![0, 1],
                        default: 1,
                    },
                    Instr::End,
                    Instr::End,
                    Instr::End,
                ],
            );
        })
        .unwrap();
    }

    #[test]
    fn loop_label_takes_params() {
        check(|b| {
            let ty = b.add_type(&[], &[]);
            b.add_func(
                ty,
                &[ValType::I32],
                vec![
                    Instr::Loop(BlockType::Empty),
                    Instr::LocalGet(0),
                    Instr::I32Const(1),
                    Instr::I32Add,
                    Instr::LocalTee(0),
                    Instr::I32Const(10),
                    Instr::I32LtS,
                    Instr::BrIf(0),
                    Instr::End,
                    Instr::End,
                ],
            );
        })
        .unwrap();
    }
}

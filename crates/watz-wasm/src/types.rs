//! Core WebAssembly type definitions.

/// A WebAssembly value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
}

impl ValType {
    /// The binary encoding of this type.
    #[must_use]
    pub fn to_byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Parses the binary encoding.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }
}

impl std::fmt::Display for ValType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        write!(f, "{s}")
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types.
    pub params: Vec<ValType>,
    /// Result types.
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Builds a signature from slices.
    #[must_use]
    pub fn new(params: &[ValType], results: &[ValType]) -> Self {
        FuncType {
            params: params.to_vec(),
            results: results.to_vec(),
        }
    }
}

/// Size limits for memories and tables (in pages / elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Minimum size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

/// A global variable's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalType {
    /// The value type stored in the global.
    pub val_type: ValType,
    /// Whether the global may be written after instantiation.
    pub mutable: bool,
}

/// The type of a structured control instruction (block/loop/if).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockType {
    /// No parameters, no results.
    Empty,
    /// No parameters, a single result.
    Value(ValType),
    /// An index into the type section (multi-value form; decoded but the
    /// validator restricts it to what the rest of the toolchain emits).
    Func(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn functype_equality() {
        let a = FuncType::new(&[ValType::I32], &[ValType::I64]);
        let b = FuncType::new(&[ValType::I32], &[ValType::I64]);
        assert_eq!(a, b);
        let c = FuncType::new(&[ValType::I32], &[]);
        assert_ne!(a, c);
    }
}

//! Programmatic module construction.
//!
//! Used by the MiniC compiler backend and by tests/benches that need
//! synthetic modules (e.g. the unrolled 1–9 MB applications of the Fig 4
//! startup experiment).

use crate::encode::encode;
use crate::instr::Instr;
use crate::module::{
    DataSegment, ElemSegment, Export, ExportKind, FuncBody, FuncImport, Global, Module,
};
use crate::types::{FuncType, GlobalType, Limits, ValType};

/// Incremental builder for a [`Module`].
#[derive(Debug, Default, Clone)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or reuses) a function type, returning its index.
    pub fn add_type(&mut self, params: &[ValType], results: &[ValType]) -> u32 {
        let ty = FuncType::new(params, results);
        if let Some(idx) = self.module.types.iter().position(|t| *t == ty) {
            return idx as u32;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as u32
    }

    /// Declares a function import; must be called before any `add_func`.
    ///
    /// Returns the function index of the import.
    ///
    /// # Panics
    ///
    /// Panics if a defined function was already added (the Wasm index space
    /// places all imports first).
    pub fn import_func(&mut self, module: &str, name: &str, type_idx: u32) -> u32 {
        assert!(
            self.module.funcs.is_empty(),
            "imports must be declared before defined functions"
        );
        self.module.func_imports.push(FuncImport {
            module: module.to_string(),
            name: name.to_string(),
            type_idx,
        });
        (self.module.func_imports.len() - 1) as u32
    }

    /// Adds a defined function; returns its function index.
    pub fn add_func(&mut self, type_idx: u32, locals: &[ValType], code: Vec<Instr>) -> u32 {
        self.module.funcs.push(FuncBody {
            type_idx,
            locals: locals.to_vec(),
            code,
        });
        (self.module.func_imports.len() + self.module.funcs.len() - 1) as u32
    }

    /// Declares the module's linear memory (min/max in 64 KiB pages).
    pub fn add_memory(&mut self, min_pages: u32, max_pages: Option<u32>) -> &mut Self {
        self.module.memories.push(Limits {
            min: min_pages,
            max: max_pages,
        });
        self
    }

    /// Declares a funcref table.
    pub fn add_table(&mut self, min: u32, max: Option<u32>) -> u32 {
        self.module.tables.push(Limits { min, max });
        (self.module.tables.len() - 1) as u32
    }

    /// Adds a global; returns its index.
    pub fn add_global(&mut self, val_type: ValType, mutable: bool, init: Instr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType { val_type, mutable },
            init,
        });
        (self.module.globals.len() - 1) as u32
    }

    /// Exports a function under `name`.
    pub fn export_func(&mut self, name: &str, func_idx: u32) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Func,
            index: func_idx,
        });
        self
    }

    /// Exports memory 0 under `name`.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            kind: ExportKind::Memory,
            index: 0,
        });
        self
    }

    /// Adds an active data segment at a constant offset.
    pub fn add_data(&mut self, offset: u32, bytes: &[u8]) -> &mut Self {
        self.module.data.push(DataSegment {
            memory: 0,
            offset: Instr::I32Const(offset as i32),
            bytes: bytes.to_vec(),
        });
        self
    }

    /// Adds an active element segment into table 0 at a constant offset.
    pub fn add_elems(&mut self, offset: u32, funcs: &[u32]) -> &mut Self {
        self.module.elems.push(ElemSegment {
            table: 0,
            offset: Instr::I32Const(offset as i32),
            funcs: funcs.to_vec(),
        });
        self
    }

    /// Sets the start function.
    pub fn set_start(&mut self, func_idx: u32) -> &mut Self {
        self.module.start = Some(func_idx);
        self
    }

    /// Returns the module under construction.
    #[must_use]
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Finishes and encodes to binary.
    #[must_use]
    pub fn build(&self) -> Vec<u8> {
        encode(&self.module)
    }

    /// Finishes, returning the in-memory module.
    #[must_use]
    pub fn into_module(self) -> Module {
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_deduplication() {
        let mut b = ModuleBuilder::new();
        let t1 = b.add_type(&[ValType::I32], &[]);
        let t2 = b.add_type(&[ValType::I32], &[]);
        let t3 = b.add_type(&[ValType::I64], &[]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn import_then_func_indices() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[]);
        let imp = b.import_func("env", "f", ty);
        let f = b.add_func(ty, &[], vec![Instr::End]);
        assert_eq!(imp, 0);
        assert_eq!(f, 1);
    }

    #[test]
    #[should_panic(expected = "imports must be declared")]
    fn late_import_panics() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[]);
        b.add_func(ty, &[], vec![Instr::End]);
        b.import_func("env", "f", ty);
    }

    #[test]
    fn built_module_decodes() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(ty, &[], vec![Instr::I32Const(7), Instr::End]);
        b.export_func("seven", f);
        b.add_memory(1, Some(2));
        b.add_data(0, b"data");
        let bytes = b.build();
        let m = crate::decode::decode(&bytes).unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.data[0].bytes, b"data");
    }
}

//! Execution: instantiation, the tree-walking interpreter, and dispatch to
//! the flat engine.
//!
//! WAMR (the runtime WaTZ embeds) offers interpreted, JIT and AOT execution;
//! WaTZ uses AOT, reporting it "on average 28× faster than with
//! interpretation" (§III). We reproduce the *mode structure* portably as a
//! five-stage story:
//!
//! 1. **Tree-walking interpreter** ([`ExecMode::Interpreted`]): executes the
//!    structured instruction sequence directly, re-discovering each block's
//!    `end`/`else` by scanning forward at runtime, over an enum-tagged
//!    [`Value`] stack — the classic naive interpreter, kept as the
//!    differential oracle.
//! 2. **Pre-resolved side tables** (the original `Aot` implementation, now
//!    retired): same walker, but branch targets resolved once at load time.
//!    It removed the scanning, not the tagging or the structured dispatch.
//! 3. **Flattened engine** ([`ExecMode::Aot`], [`crate::flat`]): function
//!    bodies are lowered at load time to a flat linear opcode array where
//!    every branch is an absolute jump with its stack fix-up inlined, and
//!    the operand stack is untagged 64-bit slots. This is the portable
//!    analogue of WAMR's AOT step — translate once, run on a representation
//!    built for execution rather than decoding.
//! 4. **Superinstruction fusion** (on by default for [`ExecMode::Aot`]): a
//!    load-time peephole pass over the flat code rewrites common adjacent
//!    windows — local/const operand feeds, sinks into locals or memory,
//!    array-address tails, compare-and-branch sequences — into single fused
//!    opcodes with direct frame-slot addressing (see [`crate::flat`]).
//!    `WATZ_NO_FUSE=1` or [`Instance::instantiate_with_fusion`] disables
//!    just this pass (stage 5 still applies to the unfused code; combine
//!    with `WATZ_NO_REG=1` — or use [`Instance::instantiate_with_engine`]
//!    with both flags off — to pin the bare stage-3 engine).
//! 5. **Register allocation** (on by default for [`ExecMode::Aot`],
//!    [`crate::reg`]): an abstract-stack simulation rewrites the (fused)
//!    flat code so every op carries explicit source/destination frame-slot
//!    indices — `local.get`s forward into their consumers, intermediates
//!    live at fixed slots, and the dispatch loop never pushes or pops an
//!    operand stack (stack-polymorphic edges keep explicit move fix-ups).
//!    `WATZ_NO_REG=1` or [`Instance::instantiate_with_engine`] pins the
//!    stack-form stage-4 engine; counters are exposed as
//!    [`crate::reg::RegStats`].
//!
//! All live engines share one semantics (identical results *and* identical
//! traps) and are differentially tested against each other across the full
//! PolyBench/speedtest/Genann suites plus randomized MiniC kernels, in
//! every fused/unfused × register/stack combination. Because our engines
//! stop short of native code generation, the speedup over interpretation
//! is smaller than WAMR's 28× (see EXPERIMENTS.md for measured ratios).

use std::collections::HashMap;

use crate::flat;
use crate::instr::Instr;
use crate::module::{ExportKind, Module};
use crate::profile::{classify, ExecProfile, NoProfile, ProfileMode, Profiler};
use crate::types::{BlockType, FuncType, ValType};
use crate::PAGE_SIZE;

/// Maximum call depth before a `CallStackExhausted` trap.
///
/// Guest recursion maps onto host recursion, so this is sized to stay well
/// inside a default 2 MiB thread stack even in debug builds. OP-TEE TAs run
/// with kilobyte-scale stacks, so a tight limit is also faithful.
pub const MAX_CALL_DEPTH: usize = 200;

/// Hard cap on memory growth (pages) when a module declares no maximum.
pub const DEFAULT_MAX_PAGES: u32 = 1024; // 64 MiB

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type.
    #[must_use]
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Zero value of the given type.
    #[must_use]
    pub fn zero(ty: ValType) -> Self {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    fn as_i32(self) -> i32 {
        match self {
            Value::I32(v) => v,
            _ => unreachable!("validated module: expected i32"),
        }
    }

    fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            _ => unreachable!("validated module: expected i64"),
        }
    }

    fn as_f32(self) -> f32 {
        match self {
            Value::F32(v) => v,
            _ => unreachable!("validated module: expected f32"),
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Value::F64(v) => v,
            _ => unreachable!("validated module: expected f64"),
        }
    }

    /// Interprets as an unsigned 32-bit integer.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.as_i32() as u32
    }
}

/// A runtime trap, aborting guest execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` executed.
    Unreachable,
    /// Out-of-bounds linear memory access.
    MemoryOutOfBounds,
    /// Integer division (or remainder) by zero.
    DivisionByZero,
    /// `i32::MIN / -1`-style overflow.
    IntegerOverflow,
    /// Float-to-int conversion of NaN or out-of-range value.
    BadConversion,
    /// Guest recursion exceeded [`MAX_CALL_DEPTH`].
    CallStackExhausted,
    /// `call_indirect` through a null table slot.
    UndefinedTableElement,
    /// `call_indirect` signature mismatch.
    IndirectTypeMismatch,
    /// `call_indirect` index outside the table.
    TableOutOfBounds,
    /// An unresolved import was called.
    UnresolvedImport {
        /// Import module namespace.
        module: String,
        /// Import field name.
        name: String,
    },
    /// A host function reported an error.
    Host(String),
    /// The guest requested a clean exit (e.g. WASI `proc_exit`).
    Exit(i32),
    /// Instantiation failed (bad segment bounds, missing export, bad args).
    Instantiation(String),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds => write!(f, "out-of-bounds memory access"),
            Trap::DivisionByZero => write!(f, "integer division by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::BadConversion => write!(f, "invalid float-to-int conversion"),
            Trap::CallStackExhausted => write!(f, "call stack exhausted"),
            Trap::UndefinedTableElement => write!(f, "undefined table element"),
            Trap::IndirectTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::TableOutOfBounds => write!(f, "table index out of bounds"),
            Trap::UnresolvedImport { module, name } => {
                write!(f, "unresolved import {module}.{name}")
            }
            Trap::Host(msg) => write!(f, "host error: {msg}"),
            Trap::Exit(code) => write!(f, "guest exit with code {code}"),
            Trap::Instantiation(msg) => write!(f, "instantiation failed: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Execution mode for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Naive structured interpretation (branch targets found by scanning).
    Interpreted,
    /// Ahead-of-time lowering to the flattened engine: absolute jumps,
    /// inlined immediates, untagged operand slots (see [`crate::flat`]).
    Aot,
}

/// The embedder interface: resolves and executes imported functions.
pub trait HostEnv {
    /// Invoked for every call to an imported function.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] to abort guest execution.
    fn call(
        &mut self,
        module: &str,
        name: &str,
        memory: &mut Memory,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap>;
}

/// A host environment that rejects every import.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHost;

impl HostEnv for NoHost {
    fn call(
        &mut self,
        module: &str,
        name: &str,
        _memory: &mut Memory,
        _args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        Err(Trap::UnresolvedImport {
            module: module.to_string(),
            name: name.to_string(),
        })
    }
}

/// Guest linear memory.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    max_pages: u32,
}

impl Memory {
    /// Creates a memory with `min` pages, growable to `max` pages.
    #[must_use]
    pub fn new(min: u32, max: Option<u32>) -> Self {
        Memory {
            data: vec![0; min as usize * PAGE_SIZE],
            max_pages: max.unwrap_or(DEFAULT_MAX_PAGES),
        }
    }

    /// Current size in pages.
    #[must_use]
    pub fn size_pages(&self) -> u32 {
        (self.data.len() / PAGE_SIZE) as u32
    }

    /// Grows by `delta` pages; returns the previous size, or -1 on failure.
    pub fn grow(&mut self, delta: u32) -> i32 {
        let max_pages = self.max_pages;
        Self::grow_raw(&mut self.data, max_pages, delta)
    }

    /// [`Memory::grow`] on raw contents: the dispatch loops cache the data
    /// vec locally (see [`Memory::take_data`]) and grow it in place.
    pub(crate) fn grow_raw(data: &mut Vec<u8>, max_pages: u32, delta: u32) -> i32 {
        let old = (data.len() / PAGE_SIZE) as u32;
        let Some(new) = old.checked_add(delta) else {
            return -1;
        };
        if new > max_pages {
            return -1;
        }
        data.resize(new as usize * PAGE_SIZE, 0);
        old as i32
    }

    /// The growth limit in pages.
    pub(crate) fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Moves the contents out, leaving the memory empty. The execution
    /// engines hold the contents locally for a whole dispatch loop (one
    /// borrow per run instead of one per load/store) and hand them back —
    /// via [`Memory::put_data`] — on exit (every `Ok`/`Trap` path) and
    /// around host calls, the only points where the embedder can observe
    /// the memory. A *panic* mid-dispatch (a violated internal invariant,
    /// or a panicking host function) unwinds past the restore and leaves
    /// the memory empty — instances are not reusable after a caught
    /// panic, which was already the engine's contract.
    pub(crate) fn take_data(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.data)
    }

    /// Restores contents taken by [`Memory::take_data`].
    pub(crate) fn put_data(&mut self, data: Vec<u8>) {
        self.data = data;
    }

    /// Raw view of the memory contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Raw mutable view of the memory contents.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::MemoryOutOfBounds`] past the end of memory.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let start = addr as usize;
        let end = start
            .checked_add(len as usize)
            .ok_or(Trap::MemoryOutOfBounds)?;
        self.data.get(start..end).ok_or(Trap::MemoryOutOfBounds)
    }

    /// Writes `bytes` at `addr`.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::MemoryOutOfBounds`] past the end of memory.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Trap> {
        let start = addr as usize;
        let end = start
            .checked_add(bytes.len())
            .ok_or(Trap::MemoryOutOfBounds)?;
        self.data
            .get_mut(start..end)
            .ok_or(Trap::MemoryOutOfBounds)?
            .copy_from_slice(bytes);
        Ok(())
    }

    pub(crate) fn load<const N: usize>(&self, base: i32, offset: u32) -> Result<[u8; N], Trap> {
        mem_load(&self.data, base, offset)
    }

    pub(crate) fn store(&mut self, base: i32, offset: u32, bytes: &[u8]) -> Result<(), Trap> {
        mem_store(&mut self.data, base, offset, bytes)
    }
}

/// Loads `N` bytes at `base + offset` from raw memory contents.
///
/// Hot path: the effective address is computed in u64 (it cannot overflow
/// there, and `usize` could wrap on 32-bit hosts), then a single slice
/// lookup doubles as the bounds check — the `try_into` length check folds
/// away since the range width is N.
///
/// # Errors
///
/// Traps with [`Trap::MemoryOutOfBounds`] past the end of memory.
#[inline]
pub(crate) fn mem_load<const N: usize>(
    mem: &[u8],
    base: i32,
    offset: u32,
) -> Result<[u8; N], Trap> {
    let ea = u64::from(base as u32) + u64::from(offset);
    let a = usize::try_from(ea).map_err(|_| Trap::MemoryOutOfBounds)?;
    let end = a.checked_add(N).ok_or(Trap::MemoryOutOfBounds)?;
    let bytes: &[u8; N] = mem
        .get(a..end)
        .and_then(|s| s.try_into().ok())
        .ok_or(Trap::MemoryOutOfBounds)?;
    Ok(*bytes)
}

/// A check-free memory access missed its statically proven bound.
///
/// Unreachable by construction: the elision pass only emits check-free
/// opcodes for accesses the range analysis proved `< min_memory_size`,
/// memory never shrinks, and the verifier re-derives every proof before
/// a verified instance runs. Kept out of line so the check-free dispatch
/// arms stay branch-light.
#[cold]
#[inline(never)]
pub(crate) fn nc_violation() -> ! {
    panic!("check-free memory access out of bounds: elision proof violated")
}

/// Loads `N` bytes at `base + offset` for a check-free (statically
/// proven in-bounds) access. The slice lookup stays — safe code — but
/// the trap plumbing is gone: a miss is an analysis bug, not a guest
/// error.
#[inline]
pub(crate) fn nc_load<const N: usize>(mem: &[u8], base: i32, offset: u32) -> [u8; N] {
    let ea = u64::from(base as u32) + u64::from(offset);
    let bytes = usize::try_from(ea)
        .ok()
        .and_then(|a| a.checked_add(N).and_then(|end| mem.get(a..end)))
        .and_then(|s| <&[u8; N]>::try_from(s).ok());
    match bytes {
        Some(b) => *b,
        None => nc_violation(),
    }
}

/// Stores `bytes` at `base + offset` for a check-free access.
#[inline]
pub(crate) fn nc_store(mem: &mut [u8], base: i32, offset: u32, bytes: &[u8]) {
    let ea = u64::from(base as u32) + u64::from(offset);
    let slot = usize::try_from(ea).ok().and_then(|a| {
        a.checked_add(bytes.len())
            .and_then(move |end| mem.get_mut(a..end))
    });
    match slot {
        Some(s) => s.copy_from_slice(bytes),
        None => nc_violation(),
    }
}

/// Guards the host-call boundary: a [`HostEnv`] returning a result count
/// other than the import's declared arity would silently diverge the
/// engines (stale slots in the register engine, corrupted operand-stack
/// height in the stack engines), so every engine turns the mismatch into
/// the same [`Trap::Host`] instead.
pub(crate) fn check_host_results(
    module: &str,
    name: &str,
    returned: usize,
    declared: usize,
) -> Result<(), Trap> {
    if returned == declared {
        Ok(())
    } else {
        Err(Trap::Host(format!(
            "import {module}.{name} returned {returned} results, declared {declared}"
        )))
    }
}

/// Stores `bytes` at `base + offset` into raw memory contents.
///
/// # Errors
///
/// Traps with [`Trap::MemoryOutOfBounds`] past the end of memory.
#[inline]
pub(crate) fn mem_store(mem: &mut [u8], base: i32, offset: u32, bytes: &[u8]) -> Result<(), Trap> {
    let ea = u64::from(base as u32) + u64::from(offset);
    let a = usize::try_from(ea).map_err(|_| Trap::MemoryOutOfBounds)?;
    let end = a.checked_add(bytes.len()).ok_or(Trap::MemoryOutOfBounds)?;
    mem.get_mut(a..end)
        .ok_or(Trap::MemoryOutOfBounds)?
        .copy_from_slice(bytes);
    Ok(())
}

/// Scans forward from an opener pc for its matching `End` (and `Else`).
fn scan_block(code: &[Instr], opener_pc: usize) -> (usize, Option<usize>) {
    let mut depth = 0usize;
    let mut else_pc = None;
    let mut pc = opener_pc + 1;
    while pc < code.len() {
        match &code[pc] {
            i if i.opens_block() => depth += 1,
            Instr::Else if depth == 0 => else_pc = Some(pc),
            Instr::End => {
                if depth == 0 {
                    return (pc, else_pc);
                }
                depth -= 1;
            }
            _ => {}
        }
        pc += 1;
    }
    unreachable!("validated code has matching end");
}

#[derive(Debug)]
struct PreparedFunc {
    type_idx: u32,
    locals: Vec<ValType>,
    code: Vec<Instr>,
}

#[derive(Debug)]
enum FuncDef {
    Import {
        module: String,
        name: String,
        type_idx: u32,
    },
    Local {
        body: usize,
    },
}

/// Runtime label on the control stack.
#[derive(Debug, Clone, Copy)]
struct Label {
    /// pc to jump to when branching to this label.
    target: usize,
    /// Values transferred on a branch.
    arity: usize,
    /// Operand stack height below the label.
    height: usize,
    /// Loops keep their label alive after a branch.
    is_loop: bool,
}

/// An instantiated module ready to execute.
#[derive(Debug)]
pub struct Instance {
    types: Vec<FuncType>,
    funcs: Vec<FuncDef>,
    bodies: Vec<PreparedFunc>,
    /// Flat code, prepared at instantiation for [`ExecMode::Aot`].
    flat: Option<flat::FlatModule>,
    memory: Memory,
    globals: Vec<Value>,
    table: Vec<Option<u32>>,
    exports: HashMap<String, (ExportKind, u32)>,
    mode: ExecMode,
    /// Live counters when the instance was created with
    /// [`ProfileMode::Count`]; `None` keeps the unprofiled hot path.
    profile: Option<Box<ExecProfile>>,
    /// Verifier counters when the compiled IR was verified at
    /// instantiation (`WATZ_VERIFY_IR` or the explicit entry point).
    verify: Option<crate::verify::VerifyStats>,
}

impl Instance {
    /// Instantiates a validated module: allocates memory/table, applies data
    /// and element segments, prepares code for the chosen mode and runs the
    /// start function (if any).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Instantiation`] for out-of-bounds segments, or any
    /// trap raised by the start function.
    pub fn instantiate(
        module: &Module,
        mode: ExecMode,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        Self::instantiate_with_engine(
            module,
            mode,
            !flat::fusion_disabled_by_env(),
            !crate::reg::reg_disabled_by_env(),
            host,
        )
    }

    /// [`Instance::instantiate`] with explicit control over superinstruction
    /// fusion in the flat engine (`fuse` is ignored in
    /// [`ExecMode::Interpreted`]). The register pass follows the
    /// `WATZ_NO_REG` environment switch.
    ///
    /// `instantiate` follows the `WATZ_NO_FUSE` environment switch; this
    /// entry point exists for fused-vs-unfused A/B comparison and
    /// bisection.
    ///
    /// # Errors
    ///
    /// Same contract as [`Instance::instantiate`].
    pub fn instantiate_with_fusion(
        module: &Module,
        mode: ExecMode,
        fuse: bool,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        Self::instantiate_with_engine(module, mode, fuse, !crate::reg::reg_disabled_by_env(), host)
    }

    /// [`Instance::instantiate`] with explicit control over both flat-engine
    /// passes: superinstruction fusion (`fuse`) and register allocation
    /// (`reg`). Both are ignored in [`ExecMode::Interpreted`]. This is the
    /// full A/B matrix entry point — `WATZ_NO_FUSE`/`WATZ_NO_REG` reach the
    /// same combinations without code changes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Instance::instantiate`].
    pub fn instantiate_with_engine(
        module: &Module,
        mode: ExecMode,
        fuse: bool,
        reg: bool,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        Self::instantiate_with_profile(module, mode, fuse, reg, ProfileMode::from_env(), host)
    }

    /// [`Instance::instantiate_with_engine`] with explicit control over
    /// execution profiling. [`ProfileMode::Count`] maintains an
    /// [`ExecProfile`] (retired guest instructions, dispatch ops,
    /// per-class histogram, back edges, traps) readable via
    /// [`Instance::profile`]; [`ProfileMode::Off`] — the default, and
    /// what every other entry point selects unless `WATZ_PROFILE` is set
    /// — runs the unchanged unprofiled dispatch loops.
    ///
    /// # Errors
    ///
    /// Same contract as [`Instance::instantiate`].
    pub fn instantiate_with_profile(
        module: &Module,
        mode: ExecMode,
        fuse: bool,
        reg: bool,
        profile: ProfileMode,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        Self::instantiate_inner(
            module,
            mode,
            fuse,
            reg,
            !crate::analysis::elision_disabled_by_env(),
            crate::verify::strict(),
            profile,
            host,
        )
    }

    /// [`Instance::instantiate_with_engine`] with explicit control over the
    /// static-analysis passes: `elide` enables the bounds-check-elision
    /// rewrite (range-analysis proofs are still computed and counted when it
    /// is off), and `verify` runs the independent IR verifier over every
    /// compiled rung before the instance can execute. The environment
    /// switches `WATZ_NO_ELIDE` / `WATZ_VERIFY_IR` reach the same
    /// combinations without code changes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Instance::instantiate`], plus
    /// [`Trap::Instantiation`] when `verify` is set and the compiled IR
    /// fails verification.
    pub fn instantiate_with_analysis(
        module: &Module,
        mode: ExecMode,
        fuse: bool,
        reg: bool,
        elide: bool,
        verify: bool,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        Self::instantiate_inner(
            module,
            mode,
            fuse,
            reg,
            elide,
            verify,
            ProfileMode::from_env(),
            host,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn instantiate_inner(
        module: &Module,
        mode: ExecMode,
        fuse: bool,
        reg: bool,
        elide: bool,
        verify: bool,
        profile: ProfileMode,
        host: &mut dyn HostEnv,
    ) -> Result<Self, Trap> {
        let memory = module
            .memories
            .first()
            .map_or_else(|| Memory::new(0, Some(0)), |l| Memory::new(l.min, l.max));

        let mut funcs = Vec::with_capacity(module.func_count());
        for imp in &module.func_imports {
            funcs.push(FuncDef::Import {
                module: imp.module.clone(),
                name: imp.name.clone(),
                type_idx: imp.type_idx,
            });
        }
        let mut bodies = Vec::with_capacity(module.funcs.len());
        for f in &module.funcs {
            funcs.push(FuncDef::Local { body: bodies.len() });
            // Aot instances execute flat code only; keeping the structured
            // bodies would double per-instance code memory for nothing
            // (func_type() needs just the type index).
            let (locals, code) = match mode {
                ExecMode::Interpreted => (f.locals.clone(), f.code.clone()),
                ExecMode::Aot => (Vec::new(), Vec::new()),
            };
            bodies.push(PreparedFunc {
                type_idx: f.type_idx,
                locals,
                code,
            });
        }

        // The AOT preparation step: lower every body to flat code once, at
        // load time (replacing the old end/else side tables), then run the
        // superinstruction fusion pass and the register-allocation pass
        // unless they are switched off.
        let flat = match mode {
            ExecMode::Aot => Some(flat::FlatModule::compile_full(module, fuse, reg, elide)?),
            ExecMode::Interpreted => None,
        };

        // Independent re-verification of everything the lowering pipeline
        // produced: abstract interpretation from the flat bodies alone, no
        // shared state with the lowering code above.
        let verify_stats = match &flat {
            Some(fm) if verify => Some(
                crate::verify::verify_module(fm, &module.types)
                    .map_err(|e| Trap::Instantiation(format!("IR verification: {e}")))?,
            ),
            _ => None,
        };

        let globals = module
            .globals
            .iter()
            .map(|g| match g.init {
                Instr::I32Const(v) => Value::I32(v),
                Instr::I64Const(v) => Value::I64(v),
                Instr::F32Const(v) => Value::F32(v),
                Instr::F64Const(v) => Value::F64(v),
                _ => unreachable!("validated initializer"),
            })
            .collect();

        let mut table = vec![None; module.tables.first().map_or(0, |t| t.min as usize)];
        for elem in &module.elems {
            let Instr::I32Const(offset) = elem.offset else {
                unreachable!("validated offset")
            };
            let offset = offset as usize;
            if offset + elem.funcs.len() > table.len() {
                return Err(Trap::Instantiation("element segment out of bounds".into()));
            }
            for (i, f) in elem.funcs.iter().enumerate() {
                table[offset + i] = Some(*f);
            }
        }

        let mut instance = Instance {
            types: module.types.clone(),
            funcs,
            bodies,
            flat,
            memory,
            globals,
            table,
            exports: module
                .exports
                .iter()
                .map(|e| (e.name.clone(), (e.kind, e.index)))
                .collect(),
            mode,
            profile: match profile {
                ProfileMode::Count => Some(Box::default()),
                ProfileMode::Off => None,
            },
            verify: verify_stats,
        };

        for data in &module.data {
            let Instr::I32Const(offset) = data.offset else {
                unreachable!("validated offset")
            };
            instance
                .memory
                .write_bytes(offset as u32, &data.bytes)
                .map_err(|_| Trap::Instantiation("data segment out of bounds".into()))?;
        }

        if let Some(start) = module.start {
            instance.call_function(host, start, &[], 0)?;
        }

        Ok(instance)
    }

    /// The execution mode this instance was prepared for.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Superinstruction counts from the flat lowering (`None` for
    /// interpreted instances; all-zero when fusion was disabled).
    #[must_use]
    pub fn fusion_stats(&self) -> Option<flat::FusionStats> {
        self.flat.as_ref().map(flat::FlatModule::fusion_stats)
    }

    /// Register-allocation counts from the flat lowering (`None` for
    /// interpreted instances and when the register pass is disabled or
    /// fell back to the stack-form engine).
    #[must_use]
    pub fn reg_stats(&self) -> Option<crate::reg::RegStats> {
        self.flat.as_ref().and_then(flat::FlatModule::reg_stats)
    }

    /// Verifier counters from instantiation-time IR verification (`None`
    /// for interpreted instances and when verification was not requested —
    /// neither `WATZ_VERIFY_IR` nor [`Instance::instantiate_with_analysis`]
    /// with `verify` set).
    #[must_use]
    pub fn verify_stats(&self) -> Option<crate::verify::VerifyStats> {
        self.verify
    }

    /// Range-analysis counters from the flat lowering (`None` for
    /// interpreted instances). Proof counts are maintained even when the
    /// elision rewrite itself is off (`WATZ_NO_ELIDE`), so A/B runs can
    /// confirm the same accesses were proven.
    #[must_use]
    pub fn range_stats(&self) -> Option<crate::analysis::RangeStats> {
        self.flat.as_ref().map(|f| f.analysis)
    }

    /// Re-runs the independent IR verifier over this instance's compiled
    /// code and returns fresh counters; `None` for interpreted instances
    /// (there is no compiled IR to verify).
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::verify::VerifyError`] found, as at
    /// instantiation.
    pub fn verify_ir(
        &self,
    ) -> Option<Result<crate::verify::VerifyStats, crate::verify::VerifyError>> {
        self.flat
            .as_ref()
            .map(|fm| crate::verify::verify_module(fm, &self.types))
    }

    /// Live execution counters, when the instance was created with
    /// [`ProfileMode::Count`] (or `WATZ_PROFILE` was set). Counters
    /// accumulate across invocations, including the start function.
    #[must_use]
    pub fn profile(&self) -> Option<&ExecProfile> {
        self.profile.as_deref()
    }

    /// The instance's linear memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the linear memory.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Invokes an exported function by name.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Instantiation`] for unknown exports or argument
    /// type/count mismatches, or any [`Trap`] raised during execution.
    pub fn invoke(
        &mut self,
        host: &mut dyn HostEnv,
        name: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, Trap> {
        let (kind, idx) = *self
            .exports
            .get(name)
            .ok_or_else(|| Trap::Instantiation(format!("no export '{name}'")))?;
        if kind != ExportKind::Func {
            return Err(Trap::Instantiation(format!(
                "export '{name}' is not a function"
            )));
        }
        let ty = self.func_type(idx).clone();
        if ty.params.len() != args.len() || ty.params.iter().zip(args).any(|(p, a)| *p != a.ty()) {
            return Err(Trap::Instantiation(format!(
                "argument mismatch for '{name}'"
            )));
        }
        let result = self.call_function(host, idx, args, 0);
        if result.is_err() {
            if let Some(p) = &mut self.profile {
                p.traps += 1;
            }
        }
        result
    }

    fn func_type(&self, func_idx: u32) -> &FuncType {
        let type_idx = match &self.funcs[func_idx as usize] {
            FuncDef::Import { type_idx, .. } => *type_idx,
            FuncDef::Local { body } => self.bodies[*body].type_idx,
        };
        &self.types[type_idx as usize]
    }

    fn call_function(
        &mut self,
        host: &mut dyn HostEnv,
        func_idx: u32,
        args: &[Value],
        _depth: usize,
    ) -> Result<Vec<Value>, Trap> {
        // Aot instances run on the flat engine — register form when the
        // register pass prepared one, stack form otherwise; the structured
        // bodies below are only walked in Interpreted mode.
        if let Some(flat) = &self.flat {
            return if flat.reg.is_some() {
                crate::reg::run(
                    flat,
                    &self.types,
                    &self.table,
                    &mut self.memory,
                    &mut self.globals,
                    host,
                    func_idx,
                    args,
                    self.profile.as_deref_mut(),
                )
            } else {
                flat::run(
                    flat,
                    &self.types,
                    &self.table,
                    &mut self.memory,
                    &mut self.globals,
                    host,
                    func_idx,
                    args,
                    self.profile.as_deref_mut(),
                )
            };
        }
        match &self.funcs[func_idx as usize] {
            FuncDef::Import { module, name, .. } => {
                let (module, name) = (module.clone(), name.clone());
                let declared = self.func_type(func_idx).results.len();
                let results = host.call(&module, &name, &mut self.memory, args)?;
                check_host_results(&module, &name, results.len(), declared)?;
                Ok(results)
            }
            FuncDef::Local { body } => {
                let body_idx = *body;
                let mut locals: Vec<Value> = args.to_vec();
                for ty in &self.bodies[body_idx].locals {
                    locals.push(Value::zero(*ty));
                }
                // Take the profile out for the duration of the walk so the
                // generic loop can borrow it alongside `&mut self`.
                match self.profile.take() {
                    Some(mut p) => {
                        let result = self.exec_body(host, body_idx, locals, &mut *p);
                        self.profile = Some(p);
                        result
                    }
                    None => self.exec_body(host, body_idx, locals, &mut NoProfile),
                }
            }
        }
    }

    /// Resolves the `(end, else)` targets of the opener at `pc` by scanning
    /// (the tree interpreter's naive runtime discovery).
    fn block_targets(&self, body_idx: usize, pc: usize) -> (usize, Option<usize>) {
        scan_block(&self.bodies[body_idx].code, pc)
    }

    fn block_arities(&self, bt: BlockType) -> (usize, usize) {
        match bt {
            BlockType::Empty => (0, 0),
            BlockType::Value(_) => (0, 1),
            BlockType::Func(idx) => {
                let ty = &self.types[idx as usize];
                (ty.params.len(), ty.results.len())
            }
        }
    }

    /// Executes a function body on an explicit frame stack.
    ///
    /// Guest calls do **not** consume host stack frames: each `call` pushes a
    /// [`Frame`] onto a heap-allocated vector, so [`MAX_CALL_DEPTH`] levels of
    /// guest recursion are safe regardless of the host's stack size.
    #[allow(clippy::too_many_lines)]
    fn exec_body<P: Profiler>(
        &mut self,
        host: &mut dyn HostEnv,
        mut body_idx: usize,
        mut locals: Vec<Value>,
        prof: &mut P,
    ) -> Result<Vec<Value>, Trap> {
        let mut result_arity = self.types[self.bodies[body_idx].type_idx as usize]
            .results
            .len();
        let mut code_len = self.bodies[body_idx].code.len();
        let mut stack: Vec<Value> = Vec::with_capacity(32);
        let mut labels: Vec<Label> = Vec::with_capacity(8);
        let mut pc: usize = 0;
        let mut stack_base: usize = 0;
        let mut frames: Vec<Frame> = Vec::new();

        /// Saved caller state for a guest-level call.
        struct Frame {
            body_idx: usize,
            locals: Vec<Value>,
            labels: Vec<Label>,
            pc: usize,
            stack_base: usize,
            result_arity: usize,
        }

        macro_rules! enter_function {
            ($f:expr, $n_params:expr) => {{
                let callee_body = match &self.funcs[$f as usize] {
                    FuncDef::Local { body } => *body,
                    FuncDef::Import { .. } => unreachable!("imports handled by caller"),
                };
                if frames.len() + 1 >= MAX_CALL_DEPTH {
                    return Err(Trap::CallStackExhausted);
                }
                let mut new_locals: Vec<Value> = stack.split_off(stack.len() - $n_params);
                for ty in &self.bodies[callee_body].locals {
                    new_locals.push(Value::zero(*ty));
                }
                frames.push(Frame {
                    body_idx,
                    locals: std::mem::take(&mut locals),
                    labels: std::mem::take(&mut labels),
                    pc,
                    stack_base,
                    result_arity,
                });
                body_idx = callee_body;
                locals = new_locals;
                pc = 0;
                stack_base = stack.len();
                result_arity = self.types[self.bodies[callee_body].type_idx as usize]
                    .results
                    .len();
                code_len = self.bodies[callee_body].code.len();
                continue;
            }};
        }

        macro_rules! leave_function {
            () => {{
                // The top `result_arity` values are the results; discard the
                // frame's leftover operands beneath them.
                let results_start = stack.len() - result_arity;
                stack.drain(stack_base..results_start);
                match frames.pop() {
                    Some(frame) => {
                        body_idx = frame.body_idx;
                        locals = frame.locals;
                        labels = frame.labels;
                        pc = frame.pc;
                        stack_base = frame.stack_base;
                        result_arity = frame.result_arity;
                        code_len = self.bodies[body_idx].code.len();
                        continue;
                    }
                    None => return Ok(stack),
                }
            }};
        }

        macro_rules! instr_at {
            ($pc:expr) => {
                // Clone is cheap for all but BrTable; BrTable is cloned only
                // when executed.
                self.bodies[body_idx].code[$pc].clone()
            };
        }

        macro_rules! binop {
            ($as:ident, $wrap:ident, $f:expr) => {{
                let b = stack.pop().expect("validated").$as();
                let a = stack.pop().expect("validated").$as();
                stack.push(Value::$wrap($f(a, b)));
            }};
        }
        macro_rules! unop {
            ($as:ident, $wrap:ident, $f:expr) => {{
                let a = stack.pop().expect("validated").$as();
                stack.push(Value::$wrap($f(a)));
            }};
        }
        macro_rules! relop {
            ($as:ident, $f:expr) => {{
                let b = stack.pop().expect("validated").$as();
                let a = stack.pop().expect("validated").$as();
                stack.push(Value::I32(i32::from($f(a, b))));
            }};
        }
        macro_rules! load {
            ($m:expr, $n:expr, $conv:expr) => {{
                let base = stack.pop().expect("validated").as_i32();
                let bytes: [u8; $n] = self.memory.load(base, $m.offset)?;
                stack.push($conv(bytes));
            }};
        }
        macro_rules! store {
            ($m:expr, $as:ident, $conv:expr) => {{
                let v = stack.pop().expect("validated").$as();
                let base = stack.pop().expect("validated").as_i32();
                self.memory.store(base, $m.offset, &$conv(v))?;
            }};
        }

        /// Performs a branch to relative label depth `d`.
        macro_rules! do_branch {
            ($d:expr) => {{
                let idx = labels.len() - 1 - $d as usize;
                let label = labels[idx];
                let keep = stack.len() - label.arity;
                stack.drain(label.height..keep);
                pc = label.target;
                if label.is_loop {
                    if P::ENABLED {
                        prof.backedge();
                    }
                    labels.truncate(idx + 1);
                } else {
                    labels.truncate(idx);
                }
                continue;
            }};
        }

        loop {
            if pc >= code_len {
                leave_function!();
            }
            let instr = instr_at!(pc);
            pc += 1;
            // Retirement is inclusive at fetch: the instruction counts
            // before it executes (and so before it can trap). Shape-only
            // opcodes classify to weight 0 but still count as a dispatch.
            if P::ENABLED {
                let (cls, weight) = classify(&instr);
                prof.retire1(cls, weight);
            }
            match instr {
                Instr::Unreachable => return Err(Trap::Unreachable),
                Instr::Nop => {}
                Instr::Block(bt) => {
                    let (end, _) = self.block_targets(body_idx, pc - 1);
                    let (params, results) = self.block_arities(bt);
                    labels.push(Label {
                        target: end + 1,
                        arity: results,
                        height: stack.len() - params,
                        is_loop: false,
                    });
                }
                Instr::Loop(bt) => {
                    let (params, _) = self.block_arities(bt);
                    labels.push(Label {
                        target: pc, // re-enter just after the Loop opcode
                        arity: params,
                        height: stack.len() - params,
                        is_loop: true,
                    });
                }
                Instr::If(bt) => {
                    let cond = stack.pop().expect("validated").as_i32();
                    let (end, else_pc) = self.block_targets(body_idx, pc - 1);
                    let (params, results) = self.block_arities(bt);
                    if cond != 0 {
                        labels.push(Label {
                            target: end + 1,
                            arity: results,
                            height: stack.len() - params,
                            is_loop: false,
                        });
                    } else if let Some(else_pc) = else_pc {
                        labels.push(Label {
                            target: end + 1,
                            arity: results,
                            height: stack.len() - params,
                            is_loop: false,
                        });
                        pc = else_pc + 1;
                    } else {
                        // No else: validation guarantees params == results.
                        pc = end + 1;
                    }
                }
                Instr::Else => {
                    // Fell out of the then-branch: jump past the End.
                    let label = labels.pop().expect("validated control");
                    pc = label.target;
                }
                Instr::End => {
                    if labels.pop().is_none() {
                        leave_function!();
                    }
                }
                Instr::Br(d) => do_branch!(d),
                Instr::BrIf(d) => {
                    let cond = stack.pop().expect("validated").as_i32();
                    if cond != 0 {
                        do_branch!(d);
                    }
                }
                Instr::BrTable { targets, default } => {
                    let i = stack.pop().expect("validated").as_u32() as usize;
                    let d = targets.get(i).copied().unwrap_or(default);
                    do_branch!(d);
                }
                Instr::Return => leave_function!(),
                Instr::Call(f) => {
                    let ty = self.func_type(f);
                    let (n_params, n_results) = (ty.params.len(), ty.results.len());
                    if let FuncDef::Import { module, name, .. } = &self.funcs[f as usize] {
                        let (module, name) = (module.clone(), name.clone());
                        let args: Vec<Value> = stack.split_off(stack.len() - n_params);
                        let results = host.call(&module, &name, &mut self.memory, &args)?;
                        check_host_results(&module, &name, results.len(), n_results)?;
                        stack.extend(results);
                    } else {
                        enter_function!(f, n_params);
                    }
                }
                Instr::CallIndirect { type_idx, .. } => {
                    let i = stack.pop().expect("validated").as_u32() as usize;
                    let slot = *self.table.get(i).ok_or(Trap::TableOutOfBounds)?;
                    let f = slot.ok_or(Trap::UndefinedTableElement)?;
                    let expected = &self.types[type_idx as usize];
                    if self.func_type(f) != expected {
                        return Err(Trap::IndirectTypeMismatch);
                    }
                    let (n_params, n_results) = (expected.params.len(), expected.results.len());
                    if let FuncDef::Import { module, name, .. } = &self.funcs[f as usize] {
                        let (module, name) = (module.clone(), name.clone());
                        let args: Vec<Value> = stack.split_off(stack.len() - n_params);
                        let results = host.call(&module, &name, &mut self.memory, &args)?;
                        check_host_results(&module, &name, results.len(), n_results)?;
                        stack.extend(results);
                    } else {
                        enter_function!(f, n_params);
                    }
                }
                Instr::Drop => {
                    stack.pop();
                }
                Instr::Select => {
                    let c = stack.pop().expect("validated").as_i32();
                    let b = stack.pop().expect("validated");
                    let a = stack.pop().expect("validated");
                    stack.push(if c != 0 { a } else { b });
                }
                Instr::LocalGet(i) => stack.push(locals[i as usize]),
                Instr::LocalSet(i) => locals[i as usize] = stack.pop().expect("validated"),
                Instr::LocalTee(i) => locals[i as usize] = *stack.last().expect("validated"),
                Instr::GlobalGet(i) => stack.push(self.globals[i as usize]),
                Instr::GlobalSet(i) => {
                    self.globals[i as usize] = stack.pop().expect("validated");
                }

                Instr::I32Load(m) => load!(m, 4, |b| Value::I32(i32::from_le_bytes(b))),
                Instr::I64Load(m) => load!(m, 8, |b| Value::I64(i64::from_le_bytes(b))),
                Instr::F32Load(m) => load!(m, 4, |b| Value::F32(f32::from_le_bytes(b))),
                Instr::F64Load(m) => load!(m, 8, |b| Value::F64(f64::from_le_bytes(b))),
                Instr::I32Load8S(m) => {
                    load!(m, 1, |b: [u8; 1]| Value::I32(i32::from(b[0] as i8)))
                }
                Instr::I32Load8U(m) => load!(m, 1, |b: [u8; 1]| Value::I32(i32::from(b[0]))),
                Instr::I32Load16S(m) => {
                    load!(m, 2, |b| Value::I32(i32::from(i16::from_le_bytes(b))))
                }
                Instr::I32Load16U(m) => {
                    load!(m, 2, |b| Value::I32(i32::from(u16::from_le_bytes(b))))
                }
                Instr::I64Load8S(m) => {
                    load!(m, 1, |b: [u8; 1]| Value::I64(i64::from(b[0] as i8)))
                }
                Instr::I64Load8U(m) => load!(m, 1, |b: [u8; 1]| Value::I64(i64::from(b[0]))),
                Instr::I64Load16S(m) => {
                    load!(m, 2, |b| Value::I64(i64::from(i16::from_le_bytes(b))))
                }
                Instr::I64Load16U(m) => {
                    load!(m, 2, |b| Value::I64(i64::from(u16::from_le_bytes(b))))
                }
                Instr::I64Load32S(m) => {
                    load!(m, 4, |b| Value::I64(i64::from(i32::from_le_bytes(b))))
                }
                Instr::I64Load32U(m) => {
                    load!(m, 4, |b| Value::I64(i64::from(u32::from_le_bytes(b))))
                }
                Instr::I32Store(m) => store!(m, as_i32, |v: i32| v.to_le_bytes()),
                Instr::I64Store(m) => store!(m, as_i64, |v: i64| v.to_le_bytes()),
                Instr::F32Store(m) => store!(m, as_f32, |v: f32| v.to_le_bytes()),
                Instr::F64Store(m) => store!(m, as_f64, |v: f64| v.to_le_bytes()),
                Instr::I32Store8(m) => store!(m, as_i32, |v: i32| [(v & 0xff) as u8]),
                Instr::I32Store16(m) => {
                    store!(m, as_i32, |v: i32| (v as u16).to_le_bytes())
                }
                Instr::I64Store8(m) => store!(m, as_i64, |v: i64| [(v & 0xff) as u8]),
                Instr::I64Store16(m) => {
                    store!(m, as_i64, |v: i64| (v as u16).to_le_bytes())
                }
                Instr::I64Store32(m) => {
                    store!(m, as_i64, |v: i64| (v as u32).to_le_bytes())
                }
                Instr::MemorySize => stack.push(Value::I32(self.memory.size_pages() as i32)),
                Instr::MemoryGrow => {
                    let delta = stack.pop().expect("validated").as_u32();
                    stack.push(Value::I32(self.memory.grow(delta)));
                }
                Instr::MemoryCopy => {
                    let len = stack.pop().expect("validated").as_u32();
                    let src = stack.pop().expect("validated").as_u32();
                    let dst = stack.pop().expect("validated").as_u32();
                    let mem_len = self.memory.data.len() as u64;
                    if u64::from(src) + u64::from(len) > mem_len
                        || u64::from(dst) + u64::from(len) > mem_len
                    {
                        return Err(Trap::MemoryOutOfBounds);
                    }
                    self.memory
                        .data
                        .copy_within(src as usize..(src + len) as usize, dst as usize);
                }
                Instr::MemoryFill => {
                    let len = stack.pop().expect("validated").as_u32();
                    let val = stack.pop().expect("validated").as_i32() as u8;
                    let dst = stack.pop().expect("validated").as_u32();
                    if u64::from(dst) + u64::from(len) > self.memory.data.len() as u64 {
                        return Err(Trap::MemoryOutOfBounds);
                    }
                    self.memory.data[dst as usize..(dst + len) as usize].fill(val);
                }

                Instr::I32Const(v) => stack.push(Value::I32(v)),
                Instr::I64Const(v) => stack.push(Value::I64(v)),
                Instr::F32Const(v) => stack.push(Value::F32(v)),
                Instr::F64Const(v) => stack.push(Value::F64(v)),

                Instr::I32Eqz => unop!(as_i32, I32, |a: i32| i32::from(a == 0)),
                Instr::I64Eqz => {
                    let a = stack.pop().expect("validated").as_i64();
                    stack.push(Value::I32(i32::from(a == 0)));
                }
                Instr::I32Eq => relop!(as_i32, |a, b| a == b),
                Instr::I32Ne => relop!(as_i32, |a, b| a != b),
                Instr::I32LtS => relop!(as_i32, |a, b| a < b),
                Instr::I32LtU => relop!(as_i32, |a: i32, b: i32| (a as u32) < (b as u32)),
                Instr::I32GtS => relop!(as_i32, |a, b| a > b),
                Instr::I32GtU => relop!(as_i32, |a: i32, b: i32| (a as u32) > (b as u32)),
                Instr::I32LeS => relop!(as_i32, |a, b| a <= b),
                Instr::I32LeU => relop!(as_i32, |a: i32, b: i32| (a as u32) <= (b as u32)),
                Instr::I32GeS => relop!(as_i32, |a, b| a >= b),
                Instr::I32GeU => relop!(as_i32, |a: i32, b: i32| (a as u32) >= (b as u32)),
                Instr::I64Eq => relop!(as_i64, |a, b| a == b),
                Instr::I64Ne => relop!(as_i64, |a, b| a != b),
                Instr::I64LtS => relop!(as_i64, |a, b| a < b),
                Instr::I64LtU => relop!(as_i64, |a: i64, b: i64| (a as u64) < (b as u64)),
                Instr::I64GtS => relop!(as_i64, |a, b| a > b),
                Instr::I64GtU => relop!(as_i64, |a: i64, b: i64| (a as u64) > (b as u64)),
                Instr::I64LeS => relop!(as_i64, |a, b| a <= b),
                Instr::I64LeU => relop!(as_i64, |a: i64, b: i64| (a as u64) <= (b as u64)),
                Instr::I64GeS => relop!(as_i64, |a, b| a >= b),
                Instr::I64GeU => relop!(as_i64, |a: i64, b: i64| (a as u64) >= (b as u64)),
                Instr::F32Eq => relop!(as_f32, |a, b| a == b),
                Instr::F32Ne => relop!(as_f32, |a, b| a != b),
                Instr::F32Lt => relop!(as_f32, |a, b| a < b),
                Instr::F32Gt => relop!(as_f32, |a, b| a > b),
                Instr::F32Le => relop!(as_f32, |a, b| a <= b),
                Instr::F32Ge => relop!(as_f32, |a, b| a >= b),
                Instr::F64Eq => relop!(as_f64, |a, b| a == b),
                Instr::F64Ne => relop!(as_f64, |a, b| a != b),
                Instr::F64Lt => relop!(as_f64, |a, b| a < b),
                Instr::F64Gt => relop!(as_f64, |a, b| a > b),
                Instr::F64Le => relop!(as_f64, |a, b| a <= b),
                Instr::F64Ge => relop!(as_f64, |a, b| a >= b),

                Instr::I32Clz => unop!(as_i32, I32, |a: i32| a.leading_zeros() as i32),
                Instr::I32Ctz => unop!(as_i32, I32, |a: i32| a.trailing_zeros() as i32),
                Instr::I32Popcnt => unop!(as_i32, I32, |a: i32| a.count_ones() as i32),
                Instr::I32Add => binop!(as_i32, I32, i32::wrapping_add),
                Instr::I32Sub => binop!(as_i32, I32, i32::wrapping_sub),
                Instr::I32Mul => binop!(as_i32, I32, i32::wrapping_mul),
                Instr::I32DivS => {
                    let b = stack.pop().expect("validated").as_i32();
                    let a = stack.pop().expect("validated").as_i32();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (q, ov) = a.overflowing_div(b);
                    if ov {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I32(q));
                }
                Instr::I32DivU => {
                    let b = stack.pop().expect("validated").as_u32();
                    let a = stack.pop().expect("validated").as_u32();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a / b) as i32));
                }
                Instr::I32RemS => {
                    let b = stack.pop().expect("validated").as_i32();
                    let a = stack.pop().expect("validated").as_i32();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32(a.wrapping_rem(b)));
                }
                Instr::I32RemU => {
                    let b = stack.pop().expect("validated").as_u32();
                    let a = stack.pop().expect("validated").as_u32();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I32((a % b) as i32));
                }
                Instr::I32And => binop!(as_i32, I32, |a, b| a & b),
                Instr::I32Or => binop!(as_i32, I32, |a, b| a | b),
                Instr::I32Xor => binop!(as_i32, I32, |a, b| a ^ b),
                Instr::I32Shl => binop!(as_i32, I32, |a: i32, b: i32| a.wrapping_shl(b as u32)),
                Instr::I32ShrS => binop!(as_i32, I32, |a: i32, b: i32| a.wrapping_shr(b as u32)),
                Instr::I32ShrU => {
                    binop!(
                        as_i32,
                        I32,
                        |a: i32, b: i32| ((a as u32).wrapping_shr(b as u32)) as i32
                    )
                }
                Instr::I32Rotl => {
                    binop!(as_i32, I32, |a: i32, b: i32| a.rotate_left(b as u32 % 32))
                }
                Instr::I32Rotr => {
                    binop!(as_i32, I32, |a: i32, b: i32| a.rotate_right(b as u32 % 32))
                }

                Instr::I64Clz => unop!(as_i64, I64, |a: i64| i64::from(a.leading_zeros())),
                Instr::I64Ctz => unop!(as_i64, I64, |a: i64| i64::from(a.trailing_zeros())),
                Instr::I64Popcnt => unop!(as_i64, I64, |a: i64| i64::from(a.count_ones())),
                Instr::I64Add => binop!(as_i64, I64, i64::wrapping_add),
                Instr::I64Sub => binop!(as_i64, I64, i64::wrapping_sub),
                Instr::I64Mul => binop!(as_i64, I64, i64::wrapping_mul),
                Instr::I64DivS => {
                    let b = stack.pop().expect("validated").as_i64();
                    let a = stack.pop().expect("validated").as_i64();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    let (q, ov) = a.overflowing_div(b);
                    if ov {
                        return Err(Trap::IntegerOverflow);
                    }
                    stack.push(Value::I64(q));
                }
                Instr::I64DivU => {
                    let b = stack.pop().expect("validated").as_i64() as u64;
                    let a = stack.pop().expect("validated").as_i64() as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a / b) as i64));
                }
                Instr::I64RemS => {
                    let b = stack.pop().expect("validated").as_i64();
                    let a = stack.pop().expect("validated").as_i64();
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64(a.wrapping_rem(b)));
                }
                Instr::I64RemU => {
                    let b = stack.pop().expect("validated").as_i64() as u64;
                    let a = stack.pop().expect("validated").as_i64() as u64;
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    stack.push(Value::I64((a % b) as i64));
                }
                Instr::I64And => binop!(as_i64, I64, |a, b| a & b),
                Instr::I64Or => binop!(as_i64, I64, |a, b| a | b),
                Instr::I64Xor => binop!(as_i64, I64, |a, b| a ^ b),
                Instr::I64Shl => binop!(as_i64, I64, |a: i64, b: i64| a.wrapping_shl(b as u32)),
                Instr::I64ShrS => binop!(as_i64, I64, |a: i64, b: i64| a.wrapping_shr(b as u32)),
                Instr::I64ShrU => {
                    binop!(
                        as_i64,
                        I64,
                        |a: i64, b: i64| ((a as u64).wrapping_shr(b as u32)) as i64
                    )
                }
                Instr::I64Rotl => {
                    binop!(as_i64, I64, |a: i64, b: i64| a.rotate_left((b as u32) % 64))
                }
                Instr::I64Rotr => {
                    binop!(as_i64, I64, |a: i64, b: i64| a
                        .rotate_right((b as u32) % 64))
                }

                Instr::F32Abs => unop!(as_f32, F32, f32::abs),
                Instr::F32Neg => unop!(as_f32, F32, |a: f32| -a),
                Instr::F32Ceil => unop!(as_f32, F32, f32::ceil),
                Instr::F32Floor => unop!(as_f32, F32, f32::floor),
                Instr::F32Trunc => unop!(as_f32, F32, f32::trunc),
                Instr::F32Nearest => unop!(as_f32, F32, f32::round_ties_even),
                Instr::F32Sqrt => unop!(as_f32, F32, f32::sqrt),
                Instr::F32Add => binop!(as_f32, F32, |a, b| a + b),
                Instr::F32Sub => binop!(as_f32, F32, |a, b| a - b),
                Instr::F32Mul => binop!(as_f32, F32, |a, b| a * b),
                Instr::F32Div => binop!(as_f32, F32, |a, b| a / b),
                Instr::F32Min => binop!(as_f32, F32, wasm_fmin32),
                Instr::F32Max => binop!(as_f32, F32, wasm_fmax32),
                Instr::F32Copysign => binop!(as_f32, F32, f32::copysign),
                Instr::F64Abs => unop!(as_f64, F64, f64::abs),
                Instr::F64Neg => unop!(as_f64, F64, |a: f64| -a),
                Instr::F64Ceil => unop!(as_f64, F64, f64::ceil),
                Instr::F64Floor => unop!(as_f64, F64, f64::floor),
                Instr::F64Trunc => unop!(as_f64, F64, f64::trunc),
                Instr::F64Nearest => unop!(as_f64, F64, f64::round_ties_even),
                Instr::F64Sqrt => unop!(as_f64, F64, f64::sqrt),
                Instr::F64Add => binop!(as_f64, F64, |a, b| a + b),
                Instr::F64Sub => binop!(as_f64, F64, |a, b| a - b),
                Instr::F64Mul => binop!(as_f64, F64, |a, b| a * b),
                Instr::F64Div => binop!(as_f64, F64, |a, b| a / b),
                Instr::F64Min => binop!(as_f64, F64, wasm_fmin64),
                Instr::F64Max => binop!(as_f64, F64, wasm_fmax64),
                Instr::F64Copysign => binop!(as_f64, F64, f64::copysign),

                Instr::I32WrapI64 => {
                    let a = stack.pop().expect("validated").as_i64();
                    stack.push(Value::I32(a as i32));
                }
                Instr::I32TruncF32S => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::I32(trunc_f32_to_i32_s(a)?));
                }
                Instr::I32TruncF32U => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::I32(trunc_f32_to_u32(a)? as i32));
                }
                Instr::I32TruncF64S => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::I32(trunc_f64_to_i32_s(a)?));
                }
                Instr::I32TruncF64U => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::I32(trunc_f64_to_u32(a)? as i32));
                }
                Instr::I64ExtendI32S => {
                    let a = stack.pop().expect("validated").as_i32();
                    stack.push(Value::I64(i64::from(a)));
                }
                Instr::I64ExtendI32U => {
                    let a = stack.pop().expect("validated").as_u32();
                    stack.push(Value::I64(i64::from(a)));
                }
                Instr::I64TruncF32S => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::I64(trunc_f32_to_i64_s(a)?));
                }
                Instr::I64TruncF32U => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::I64(trunc_f32_to_u64(a)? as i64));
                }
                Instr::I64TruncF64S => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::I64(trunc_f64_to_i64_s(a)?));
                }
                Instr::I64TruncF64U => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::I64(trunc_f64_to_u64(a)? as i64));
                }
                Instr::F32ConvertI32S => {
                    let a = stack.pop().expect("validated").as_i32();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI32U => {
                    let a = stack.pop().expect("validated").as_u32();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI64S => {
                    let a = stack.pop().expect("validated").as_i64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32ConvertI64U => {
                    let a = stack.pop().expect("validated").as_i64() as u64;
                    stack.push(Value::F32(a as f32));
                }
                Instr::F32DemoteF64 => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::F32(a as f32));
                }
                Instr::F64ConvertI32S => {
                    let a = stack.pop().expect("validated").as_i32();
                    stack.push(Value::F64(f64::from(a)));
                }
                Instr::F64ConvertI32U => {
                    let a = stack.pop().expect("validated").as_u32();
                    stack.push(Value::F64(f64::from(a)));
                }
                Instr::F64ConvertI64S => {
                    let a = stack.pop().expect("validated").as_i64();
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64ConvertI64U => {
                    let a = stack.pop().expect("validated").as_i64() as u64;
                    stack.push(Value::F64(a as f64));
                }
                Instr::F64PromoteF32 => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::F64(f64::from(a)));
                }
                Instr::I32ReinterpretF32 => {
                    let a = stack.pop().expect("validated").as_f32();
                    stack.push(Value::I32(a.to_bits() as i32));
                }
                Instr::I64ReinterpretF64 => {
                    let a = stack.pop().expect("validated").as_f64();
                    stack.push(Value::I64(a.to_bits() as i64));
                }
                Instr::F32ReinterpretI32 => {
                    let a = stack.pop().expect("validated").as_i32();
                    stack.push(Value::F32(f32::from_bits(a as u32)));
                }
                Instr::F64ReinterpretI64 => {
                    let a = stack.pop().expect("validated").as_i64();
                    stack.push(Value::F64(f64::from_bits(a as u64)));
                }
                Instr::I32Extend8S => unop!(as_i32, I32, |a: i32| i32::from(a as i8)),
                Instr::I32Extend16S => unop!(as_i32, I32, |a: i32| i32::from(a as i16)),
                Instr::I64Extend8S => unop!(as_i64, I64, |a: i64| i64::from(a as i8)),
                Instr::I64Extend16S => unop!(as_i64, I64, |a: i64| i64::from(a as i16)),
                Instr::I64Extend32S => unop!(as_i64, I64, |a: i64| i64::from(a as i32)),
            }
        }
    }
}

pub(crate) fn wasm_fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

pub(crate) fn wasm_fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

pub(crate) fn trunc_f32_to_i32_s(a: f32) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if !(-2147483648.0..2147483648.0).contains(&t) {
        return Err(Trap::BadConversion);
    }
    Ok(t as i32)
}

pub(crate) fn trunc_f32_to_u32(a: f32) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if t >= 4294967296.0 || t <= -1.0 {
        return Err(Trap::BadConversion);
    }
    Ok(t as u32)
}

pub(crate) fn trunc_f64_to_i32_s(a: f64) -> Result<i32, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if !(-2147483648.0..2147483648.0).contains(&t) {
        return Err(Trap::BadConversion);
    }
    Ok(t as i32)
}

pub(crate) fn trunc_f64_to_u32(a: f64) -> Result<u32, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if t >= 4294967296.0 || t <= -1.0 {
        return Err(Trap::BadConversion);
    }
    Ok(t as u32)
}

pub(crate) fn trunc_f32_to_i64_s(a: f32) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::BadConversion);
    }
    Ok(t as i64)
}

pub(crate) fn trunc_f32_to_u64(a: f32) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if t >= 18446744073709551616.0 || t <= -1.0 {
        return Err(Trap::BadConversion);
    }
    Ok(t as u64)
}

pub(crate) fn trunc_f64_to_i64_s(a: f64) -> Result<i64, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::BadConversion);
    }
    Ok(t as i64)
}

pub(crate) fn trunc_f64_to_u64(a: f64) -> Result<u64, Trap> {
    if a.is_nan() {
        return Err(Trap::BadConversion);
    }
    let t = a.trunc();
    if t >= 18446744073709551616.0 || t <= -1.0 {
        return Err(Trap::BadConversion);
    }
    Ok(t as u64)
}

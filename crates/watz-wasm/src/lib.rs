//! A from-scratch WebAssembly engine, standing in for WAMR in the WaTZ
//! reproduction.
//!
//! The WaTZ paper embeds the WebAssembly Micro Runtime (WAMR) inside OP-TEE
//! and executes ahead-of-time (AOT) compiled bytecode. This crate provides
//! the equivalent machinery, built from scratch:
//!
//! * a binary **decoder** for the Wasm MVP format plus the bulk-memory and
//!   sign-extension operators that compiled C code relies on ([`decode`]);
//! * a complete single-pass **validator** implementing the spec's type
//!   checking algorithm ([`validate`]);
//! * an **executor** with two modes ([`exec`]):
//!   [`ExecMode::Interpreted`] walks structured opcodes and discovers branch
//!   targets by scanning, like a naive interpreter, while [`ExecMode::Aot`]
//!   runs the flattened pre-resolved engine: bodies lowered at load time to
//!   a linear opcode array with absolute jumps, inlined immediates and an
//!   untagged 64-bit operand stack, peephole-fused into superinstructions
//!   ([`flat`], [`FusionStats`]; disable with `WATZ_NO_FUSE=1`), then
//!   register-allocated so every op addresses fixed frame slots and the
//!   dispatch loop moves no operand stack at all ([`reg`], [`RegStats`];
//!   disable with `WATZ_NO_REG=1`) — the stand-in for WAMR's AOT mode (the
//!   real thing emits native code; ours stays portable, so the AOT/interp
//!   gap is smaller than the paper's 28x, as documented in
//!   EXPERIMENTS.md);
//! * an independent **IR verifier** and value-range **analysis** ([`verify`],
//!   [`analysis`]): abstract interpretation over the compiled rungs that
//!   re-proves every lowering invariant (`WATZ_VERIFY_IR=1` makes it a
//!   hard instantiation gate, [`VerifyStats`]) and proves memory accesses
//!   in bounds so the flat and register engines can run them check-free
//!   (`WATZ_NO_ELIDE=1` disables the rewrite, [`RangeStats`]);
//! * an **encoder** and a programmatic **builder** ([`encode`], [`builder`])
//!   used by the MiniC compiler (the reproduction's stand-in for WASI-SDK)
//!   and by tests.
//!
//! # Example
//!
//! ```
//! use watz_wasm::{builder::ModuleBuilder, types::ValType, instr::Instr};
//! use watz_wasm::exec::{Instance, ExecMode, Value, NoHost};
//!
//! // (module (func (export "add") (param i32 i32) (result i32)
//! //   local.get 0 local.get 1 i32.add))
//! let mut b = ModuleBuilder::new();
//! let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
//! let f = b.add_func(ty, &[], vec![
//!     Instr::LocalGet(0), Instr::LocalGet(1),
//!     Instr::I32Add, Instr::End,
//! ]);
//! b.export_func("add", f);
//! let bytes = b.build();
//!
//! let module = watz_wasm::decode::decode(&bytes).unwrap();
//! watz_wasm::validate::validate(&module).unwrap();
//! let mut inst = Instance::instantiate(&module, ExecMode::Aot, &mut NoHost).unwrap();
//! let out = inst.invoke(&mut NoHost, "add", &[Value::I32(2), Value::I32(40)]).unwrap();
//! assert_eq!(out, vec![Value::I32(42)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod decode;
pub mod encode;
pub mod exec;
pub mod flat;
pub mod instr;
pub mod leb128;
pub mod module;
pub mod profile;
pub mod reg;
pub mod types;
pub mod validate;
pub mod verify;

pub use analysis::RangeStats;
pub use decode::DecodeError;
pub use exec::{ExecMode, HostEnv, Instance, NoHost, Trap, Value};
pub use flat::FusionStats;
pub use module::Module;
pub use profile::{ExecProfile, ProfileMode};
pub use reg::RegStats;
pub use validate::ValidationError;
pub use verify::{VerifyError, VerifyStats};

/// Size of a WebAssembly linear-memory page (64 KiB).
pub const PAGE_SIZE: usize = 65536;

/// Decodes and validates a binary module in one step.
///
/// # Errors
///
/// Returns a [`LoadError`] wrapping the decode or validation failure.
pub fn load(bytes: &[u8]) -> Result<Module, LoadError> {
    let module = decode::decode(bytes).map_err(LoadError::Decode)?;
    validate::validate(&module).map_err(LoadError::Validate)?;
    Ok(module)
}

/// Error from [`load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The binary failed to parse.
    Decode(DecodeError),
    /// The module failed type checking.
    Validate(ValidationError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "decode error: {e}"),
            LoadError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

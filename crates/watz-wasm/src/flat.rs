//! The flattened, pre-resolved execution engine behind [`ExecMode::Aot`].
//!
//! At load time every function body is lowered from its structured
//! `Vec<Instr>` form into a flat linear array of `FlatOp`s:
//!
//! * `block`/`loop`/`if`/`else`/`end` disappear — every branch becomes an
//!   absolute jump target computed once, during lowering (this subsumes the
//!   old per-function `end`/`else` side tables);
//! * branches that discard operand-stack values carry the `keep`/`height`
//!   stack fix-up as immediates, so no label stack exists at run time;
//! * immediates (memory offsets, constants, call targets) are inlined, and
//!   constants of all four value types collapse into one raw-bits `Const`;
//! * the operand stack is untagged 64-bit slots (`Slot`): validation
//!   already guarantees types, so the enum tag the tree-walking interpreter
//!   carries on every value is dead weight on the hot path. Locals live at
//!   the base of the same stack, so a guest call is a frame-pointer bump,
//!   not a `Vec<Value>` allocation.
//!
//! Semantics (including every trap) are identical to the structured
//! tree-walking interpreter in [`crate::exec`], which serves as the
//! differential oracle: the PolyBench/speedtest/Genann suites and the
//! randomized MiniC property tests assert bit-identical results and
//! identical traps across both engines.
//!
//! [`ExecMode::Aot`]: crate::exec::ExecMode

use crate::exec::{
    trunc_f32_to_i32_s, trunc_f32_to_i64_s, trunc_f32_to_u32, trunc_f32_to_u64, trunc_f64_to_i32_s,
    trunc_f64_to_i64_s, trunc_f64_to_u32, trunc_f64_to_u64, wasm_fmax32, wasm_fmax64, wasm_fmin32,
    wasm_fmin64, HostEnv, Memory, Trap, Value, MAX_CALL_DEPTH,
};
use crate::instr::Instr;
use crate::module::{FuncBody, Module};
use crate::types::{BlockType, FuncType, ValType};

/// An untagged 64-bit operand-stack slot.
///
/// i32 values are stored zero-extended, i64 as-is, floats as their IEEE bit
/// patterns. Validation guarantees each slot is only ever read at the type
/// it was written with.
pub(crate) type Slot = u64;

#[inline]
fn from_i32(v: i32) -> Slot {
    u64::from(v as u32)
}
#[inline]
fn from_i64(v: i64) -> Slot {
    v as u64
}
#[inline]
fn from_f32(v: f32) -> Slot {
    u64::from(v.to_bits())
}
#[inline]
fn from_f64(v: f64) -> Slot {
    v.to_bits()
}
#[inline]
fn as_i32(s: Slot) -> i32 {
    s as u32 as i32
}
#[inline]
fn as_u32(s: Slot) -> u32 {
    s as u32
}
#[inline]
fn as_i64(s: Slot) -> i64 {
    s as i64
}
#[inline]
fn as_u64(s: Slot) -> u64 {
    s
}
#[inline]
fn as_f32(s: Slot) -> f32 {
    f32::from_bits(s as u32)
}
#[inline]
fn as_f64(s: Slot) -> f64 {
    f64::from_bits(s)
}

#[inline]
pub(crate) fn slot_from_value(v: Value) -> Slot {
    match v {
        Value::I32(x) => from_i32(x),
        Value::I64(x) => from_i64(x),
        Value::F32(x) => from_f32(x),
        Value::F64(x) => from_f64(x),
    }
}

#[inline]
pub(crate) fn value_from_slot(ty: ValType, s: Slot) -> Value {
    match ty {
        ValType::I32 => Value::I32(as_i32(s)),
        ValType::I64 => Value::I64(as_i64(s)),
        ValType::F32 => Value::F32(as_f32(s)),
        ValType::F64 => Value::F64(as_f64(s)),
    }
}

/// One `br_table` arm: absolute target plus the stack fix-up immediates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BrEntry {
    target: u32,
    keep: u32,
    height: u32,
}

/// A pre-resolved flat opcode.
///
/// Control flow is expressed purely as absolute jumps; `keep`/`height` on
/// the `Br*` forms encode the operand-stack fix-up a structured branch
/// performs (keep the top `keep` values, reset to operand height `height`).
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Numeric variants mirror the spec's instruction names 1:1.
pub(crate) enum FlatOp {
    Unreachable,
    /// Unconditional jump, no stack fix-up needed.
    Jump {
        target: u32,
    },
    /// Pops an i32, jumps if zero (lowered `if`).
    JumpIfZero {
        target: u32,
    },
    /// Pops an i32, jumps if non-zero (lowered `br_if` needing no fix-up).
    JumpIfNonZero {
        target: u32,
    },
    /// Unconditional branch with stack fix-up (lowered `br`).
    Br {
        target: u32,
        keep: u32,
        height: u32,
    },
    /// Conditional branch with stack fix-up (lowered `br_if`).
    BrIf {
        target: u32,
        keep: u32,
        height: u32,
    },
    /// Indexed branch; the last entry is the default arm.
    BrTable {
        entries: Box<[BrEntry]>,
    },
    Return,
    /// Call of a function defined in this module.
    CallLocal {
        func: u32,
    },
    /// Call of an imported (host) function.
    CallImport {
        func: u32,
    },
    CallIndirect {
        type_idx: u32,
    },

    Drop,
    Select,

    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    I32Load(u32),
    I64Load(u32),
    F32Load(u32),
    F64Load(u32),
    I32Load8S(u32),
    I32Load8U(u32),
    I32Load16S(u32),
    I32Load16U(u32),
    I64Load8S(u32),
    I64Load8U(u32),
    I64Load16S(u32),
    I64Load16U(u32),
    I64Load32S(u32),
    I64Load32U(u32),

    I32Store(u32),
    I64Store(u32),
    F32Store(u32),
    F64Store(u32),
    I32Store8(u32),
    I32Store16(u32),
    I64Store8(u32),
    I64Store16(u32),
    I64Store32(u32),

    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,

    /// All four constant forms, pre-encoded as a raw slot.
    Const(u64),

    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

/// An imported function, with its signature pre-split for slot/Value
/// conversion at the host boundary.
#[derive(Debug)]
pub(crate) struct FlatImport {
    module: String,
    name: String,
    params: Box<[ValType]>,
}

/// A lowered local function.
#[derive(Debug)]
pub(crate) struct FlatFunc {
    n_params: u32,
    /// Params + declared locals.
    n_locals: u32,
    n_results: u32,
    result_types: Box<[ValType]>,
    code: Box<[FlatOp]>,
}

/// One entry in the function index space.
#[derive(Debug)]
pub(crate) enum FlatFuncDef {
    Import(FlatImport),
    Local(FlatFunc),
}

/// A module lowered to flat code, ready for [`run`].
#[derive(Debug)]
pub(crate) struct FlatModule {
    funcs: Vec<FlatFuncDef>,
    func_type_idx: Box<[u32]>,
    global_types: Box<[ValType]>,
}

impl FlatModule {
    /// Lowers every function body of a **validated** module.
    pub(crate) fn compile(module: &Module) -> FlatModule {
        let mut funcs = Vec::with_capacity(module.func_count());
        let mut func_type_idx = Vec::with_capacity(module.func_count());
        for imp in &module.func_imports {
            let ty = &module.types[imp.type_idx as usize];
            funcs.push(FlatFuncDef::Import(FlatImport {
                module: imp.module.clone(),
                name: imp.name.clone(),
                params: ty.params.clone().into_boxed_slice(),
            }));
            func_type_idx.push(imp.type_idx);
        }
        for body in &module.funcs {
            funcs.push(FlatFuncDef::Local(lower(module, body)));
            func_type_idx.push(body.type_idx);
        }
        let global_types = module
            .globals
            .iter()
            .map(|g| g.ty.val_type)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlatModule {
            funcs,
            func_type_idx: func_type_idx.into_boxed_slice(),
            global_types,
        }
    }
}

/// A control frame tracked during lowering (compile time only).
struct Ctrl {
    is_loop: bool,
    /// Operand height just below the label's params.
    label_height: usize,
    params: usize,
    results: usize,
    /// Values a branch to this label transfers (params for loops).
    branch_arity: usize,
    /// Branch target for loops (known immediately).
    loop_target: u32,
    /// Ops whose target is this frame's end: `(op index, br_table slot)`;
    /// slot is `u32::MAX` for non-table ops.
    patches: Vec<(u32, u32)>,
    /// The `JumpIfZero` of an `if`, waiting for its else/end position.
    else_patch: Option<u32>,
    /// The remainder of this frame is statically unreachable.
    unreachable: bool,
}

fn block_arities(module: &Module, bt: BlockType) -> (usize, usize) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(idx) => {
            let ty = &module.types[idx as usize];
            (ty.params.len(), ty.results.len())
        }
    }
}

fn set_target(op: &mut FlatOp, slot: u32, target: u32) {
    match op {
        FlatOp::Jump { target: t }
        | FlatOp::JumpIfZero { target: t }
        | FlatOp::JumpIfNonZero { target: t }
        | FlatOp::Br { target: t, .. }
        | FlatOp::BrIf { target: t, .. } => *t = target,
        FlatOp::BrTable { entries } => entries[slot as usize].target = target,
        _ => unreachable!("patched op is a branch"),
    }
}

/// Lowers one function body to flat code.
#[allow(clippy::too_many_lines)]
fn lower(module: &Module, body: &FuncBody) -> FlatFunc {
    let ty = &module.types[body.type_idx as usize];
    let n_params = ty.params.len();
    let n_results = ty.results.len();
    let n_imports = module.func_imports.len() as u32;

    let mut ops: Vec<FlatOp> = Vec::with_capacity(body.code.len());
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        is_loop: false,
        label_height: 0,
        params: 0,
        results: n_results,
        branch_arity: n_results,
        loop_target: 0,
        patches: Vec::new(),
        else_patch: None,
        unreachable: false,
    }];
    let mut height: usize = 0;
    // Nesting depth of skipped (statically unreachable) blocks.
    let mut skip: usize = 0;

    // Emits the branch for a `br`/`br_if` to relative depth `d`; returns
    // nothing, registers patches on the target frame as needed.
    macro_rules! emit_branch {
        ($d:expr, $conditional:expr) => {{
            let idx = ctrl.len() - 1 - $d as usize;
            let keep = ctrl[idx].branch_arity;
            let lh = ctrl[idx].label_height;
            let no_adjust = height - keep == lh;
            let op = match (ctrl[idx].is_loop, $conditional, no_adjust) {
                (true, false, true) => FlatOp::Jump {
                    target: ctrl[idx].loop_target,
                },
                (true, true, true) => FlatOp::JumpIfNonZero {
                    target: ctrl[idx].loop_target,
                },
                (true, false, false) => FlatOp::Br {
                    target: ctrl[idx].loop_target,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (true, true, false) => FlatOp::BrIf {
                    target: ctrl[idx].loop_target,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (false, false, true) => FlatOp::Jump { target: 0 },
                (false, true, true) => FlatOp::JumpIfNonZero { target: 0 },
                (false, false, false) => FlatOp::Br {
                    target: 0,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (false, true, false) => FlatOp::BrIf {
                    target: 0,
                    keep: keep as u32,
                    height: lh as u32,
                },
            };
            if !ctrl[idx].is_loop {
                ctrl[idx].patches.push((ops.len() as u32, u32::MAX));
            }
            ops.push(op);
        }};
    }

    // Closes the innermost control frame at an `End`. When the function
    // frame itself closes, the terminating `Return` is emitted so branches
    // to the function label land on it.
    macro_rules! close_frame {
        () => {{
            let frame = ctrl.pop().expect("validated: balanced control");
            let end_pos = ops.len() as u32;
            if let Some(ep) = frame.else_patch {
                // `if` without `else`: the false path jumps straight here
                // (validation guarantees params == results in that case).
                set_target(&mut ops[ep as usize], u32::MAX, end_pos);
            }
            for (op_idx, slot) in frame.patches {
                set_target(&mut ops[op_idx as usize], slot, end_pos);
            }
            height = frame.label_height + frame.results;
            if ctrl.is_empty() {
                ops.push(FlatOp::Return);
            }
        }};
    }

    for instr in &body.code {
        // Inside statically unreachable code nothing is emitted; only the
        // block structure is tracked so the matching else/end is found.
        if ctrl.last().is_some_and(|c| c.unreachable) {
            match instr {
                i if i.opens_block() => skip += 1,
                Instr::Else if skip == 0 => {
                    let frame = ctrl.last_mut().expect("validated");
                    let ep = frame.else_patch.take().expect("unreachable then-branch");
                    frame.unreachable = false;
                    height = frame.label_height + frame.params;
                    let pos = ops.len() as u32;
                    set_target(&mut ops[ep as usize], u32::MAX, pos);
                }
                Instr::End => {
                    if skip > 0 {
                        skip -= 1;
                    } else {
                        close_frame!();
                    }
                }
                _ => {}
            }
            continue;
        }

        match instr {
            Instr::Nop => {}
            Instr::Unreachable => {
                ops.push(FlatOp::Unreachable);
                ctrl.last_mut().expect("validated").unreachable = true;
            }
            Instr::Block(bt) => {
                let (params, results) = block_arities(module, *bt);
                ctrl.push(Ctrl {
                    is_loop: false,
                    label_height: height - params,
                    params,
                    results,
                    branch_arity: results,
                    loop_target: 0,
                    patches: Vec::new(),
                    else_patch: None,
                    unreachable: false,
                });
            }
            Instr::Loop(bt) => {
                let (params, results) = block_arities(module, *bt);
                ctrl.push(Ctrl {
                    is_loop: true,
                    label_height: height - params,
                    params,
                    results,
                    branch_arity: params,
                    loop_target: ops.len() as u32,
                    patches: Vec::new(),
                    else_patch: None,
                    unreachable: false,
                });
            }
            Instr::If(bt) => {
                height -= 1; // condition
                let (params, results) = block_arities(module, *bt);
                let ep = ops.len() as u32;
                ops.push(FlatOp::JumpIfZero { target: 0 });
                ctrl.push(Ctrl {
                    is_loop: false,
                    label_height: height - params,
                    params,
                    results,
                    branch_arity: results,
                    loop_target: 0,
                    patches: Vec::new(),
                    else_patch: Some(ep),
                    unreachable: false,
                });
            }
            Instr::Else => {
                // Reachable then-branch falls through: jump over the else.
                let jmp = ops.len() as u32;
                ops.push(FlatOp::Jump { target: 0 });
                let frame = ctrl.last_mut().expect("validated");
                frame.patches.push((jmp, u32::MAX));
                let ep = frame.else_patch.take().expect("if has one else");
                height = frame.label_height + frame.params;
                let pos = ops.len() as u32;
                set_target(&mut ops[ep as usize], u32::MAX, pos);
            }
            Instr::End => close_frame!(),
            Instr::Br(d) => {
                emit_branch!(*d, false);
                ctrl.last_mut().expect("validated").unreachable = true;
            }
            Instr::BrIf(d) => {
                height -= 1; // condition
                emit_branch!(*d, true);
            }
            Instr::BrTable { targets, default } => {
                height -= 1; // index
                let op_idx = ops.len() as u32;
                let mut entries = Vec::with_capacity(targets.len() + 1);
                let mut pending: Vec<(usize, u32)> = Vec::new();
                for (slot, d) in targets.iter().chain(std::iter::once(default)).enumerate() {
                    let idx = ctrl.len() - 1 - *d as usize;
                    let keep = ctrl[idx].branch_arity as u32;
                    let h = ctrl[idx].label_height as u32;
                    if ctrl[idx].is_loop {
                        entries.push(BrEntry {
                            target: ctrl[idx].loop_target,
                            keep,
                            height: h,
                        });
                    } else {
                        entries.push(BrEntry {
                            target: 0,
                            keep,
                            height: h,
                        });
                        pending.push((idx, slot as u32));
                    }
                }
                for (frame_idx, slot) in pending {
                    ctrl[frame_idx].patches.push((op_idx, slot));
                }
                ops.push(FlatOp::BrTable {
                    entries: entries.into_boxed_slice(),
                });
                ctrl.last_mut().expect("validated").unreachable = true;
            }
            Instr::Return => {
                ops.push(FlatOp::Return);
                ctrl.last_mut().expect("validated").unreachable = true;
            }
            Instr::Call(f) => {
                let ty_idx = module.func_type_idx(*f).expect("validated call");
                let fty = &module.types[ty_idx as usize];
                height = height - fty.params.len() + fty.results.len();
                if *f < n_imports {
                    ops.push(FlatOp::CallImport { func: *f });
                } else {
                    ops.push(FlatOp::CallLocal { func: *f });
                }
            }
            Instr::CallIndirect { type_idx, .. } => {
                let fty = &module.types[*type_idx as usize];
                height = height - 1 - fty.params.len() + fty.results.len();
                ops.push(FlatOp::CallIndirect {
                    type_idx: *type_idx,
                });
            }
            other => {
                let (op, pops, pushes) = map_simple(other);
                height = height - pops + pushes;
                ops.push(op);
            }
        }
    }

    debug_assert!(ctrl.is_empty(), "validated code closes every frame");
    FlatFunc {
        n_params: n_params as u32,
        n_locals: (n_params + body.locals.len()) as u32,
        n_results: n_results as u32,
        result_types: ty.results.clone().into_boxed_slice(),
        code: ops.into_boxed_slice(),
    }
}

/// Maps a non-control instruction to its flat opcode and stack effect
/// `(pops, pushes)`.
#[allow(clippy::too_many_lines)]
fn map_simple(instr: &Instr) -> (FlatOp, usize, usize) {
    use FlatOp as F;
    use Instr as I;
    match instr {
        I::Drop => (F::Drop, 1, 0),
        I::Select => (F::Select, 3, 1),
        I::LocalGet(i) => (F::LocalGet(*i), 0, 1),
        I::LocalSet(i) => (F::LocalSet(*i), 1, 0),
        I::LocalTee(i) => (F::LocalTee(*i), 1, 1),
        I::GlobalGet(i) => (F::GlobalGet(*i), 0, 1),
        I::GlobalSet(i) => (F::GlobalSet(*i), 1, 0),

        I::I32Load(m) => (F::I32Load(m.offset), 1, 1),
        I::I64Load(m) => (F::I64Load(m.offset), 1, 1),
        I::F32Load(m) => (F::F32Load(m.offset), 1, 1),
        I::F64Load(m) => (F::F64Load(m.offset), 1, 1),
        I::I32Load8S(m) => (F::I32Load8S(m.offset), 1, 1),
        I::I32Load8U(m) => (F::I32Load8U(m.offset), 1, 1),
        I::I32Load16S(m) => (F::I32Load16S(m.offset), 1, 1),
        I::I32Load16U(m) => (F::I32Load16U(m.offset), 1, 1),
        I::I64Load8S(m) => (F::I64Load8S(m.offset), 1, 1),
        I::I64Load8U(m) => (F::I64Load8U(m.offset), 1, 1),
        I::I64Load16S(m) => (F::I64Load16S(m.offset), 1, 1),
        I::I64Load16U(m) => (F::I64Load16U(m.offset), 1, 1),
        I::I64Load32S(m) => (F::I64Load32S(m.offset), 1, 1),
        I::I64Load32U(m) => (F::I64Load32U(m.offset), 1, 1),

        I::I32Store(m) => (F::I32Store(m.offset), 2, 0),
        I::I64Store(m) => (F::I64Store(m.offset), 2, 0),
        I::F32Store(m) => (F::F32Store(m.offset), 2, 0),
        I::F64Store(m) => (F::F64Store(m.offset), 2, 0),
        I::I32Store8(m) => (F::I32Store8(m.offset), 2, 0),
        I::I32Store16(m) => (F::I32Store16(m.offset), 2, 0),
        I::I64Store8(m) => (F::I64Store8(m.offset), 2, 0),
        I::I64Store16(m) => (F::I64Store16(m.offset), 2, 0),
        I::I64Store32(m) => (F::I64Store32(m.offset), 2, 0),

        I::MemorySize => (F::MemorySize, 0, 1),
        I::MemoryGrow => (F::MemoryGrow, 1, 1),
        I::MemoryCopy => (F::MemoryCopy, 3, 0),
        I::MemoryFill => (F::MemoryFill, 3, 0),

        I::I32Const(v) => (F::Const(from_i32(*v)), 0, 1),
        I::I64Const(v) => (F::Const(from_i64(*v)), 0, 1),
        I::F32Const(v) => (F::Const(from_f32(*v)), 0, 1),
        I::F64Const(v) => (F::Const(from_f64(*v)), 0, 1),

        I::I32Eqz => (F::I32Eqz, 1, 1),
        I::I32Eq => (F::I32Eq, 2, 1),
        I::I32Ne => (F::I32Ne, 2, 1),
        I::I32LtS => (F::I32LtS, 2, 1),
        I::I32LtU => (F::I32LtU, 2, 1),
        I::I32GtS => (F::I32GtS, 2, 1),
        I::I32GtU => (F::I32GtU, 2, 1),
        I::I32LeS => (F::I32LeS, 2, 1),
        I::I32LeU => (F::I32LeU, 2, 1),
        I::I32GeS => (F::I32GeS, 2, 1),
        I::I32GeU => (F::I32GeU, 2, 1),
        I::I64Eqz => (F::I64Eqz, 1, 1),
        I::I64Eq => (F::I64Eq, 2, 1),
        I::I64Ne => (F::I64Ne, 2, 1),
        I::I64LtS => (F::I64LtS, 2, 1),
        I::I64LtU => (F::I64LtU, 2, 1),
        I::I64GtS => (F::I64GtS, 2, 1),
        I::I64GtU => (F::I64GtU, 2, 1),
        I::I64LeS => (F::I64LeS, 2, 1),
        I::I64LeU => (F::I64LeU, 2, 1),
        I::I64GeS => (F::I64GeS, 2, 1),
        I::I64GeU => (F::I64GeU, 2, 1),
        I::F32Eq => (F::F32Eq, 2, 1),
        I::F32Ne => (F::F32Ne, 2, 1),
        I::F32Lt => (F::F32Lt, 2, 1),
        I::F32Gt => (F::F32Gt, 2, 1),
        I::F32Le => (F::F32Le, 2, 1),
        I::F32Ge => (F::F32Ge, 2, 1),
        I::F64Eq => (F::F64Eq, 2, 1),
        I::F64Ne => (F::F64Ne, 2, 1),
        I::F64Lt => (F::F64Lt, 2, 1),
        I::F64Gt => (F::F64Gt, 2, 1),
        I::F64Le => (F::F64Le, 2, 1),
        I::F64Ge => (F::F64Ge, 2, 1),

        I::I32Clz => (F::I32Clz, 1, 1),
        I::I32Ctz => (F::I32Ctz, 1, 1),
        I::I32Popcnt => (F::I32Popcnt, 1, 1),
        I::I32Add => (F::I32Add, 2, 1),
        I::I32Sub => (F::I32Sub, 2, 1),
        I::I32Mul => (F::I32Mul, 2, 1),
        I::I32DivS => (F::I32DivS, 2, 1),
        I::I32DivU => (F::I32DivU, 2, 1),
        I::I32RemS => (F::I32RemS, 2, 1),
        I::I32RemU => (F::I32RemU, 2, 1),
        I::I32And => (F::I32And, 2, 1),
        I::I32Or => (F::I32Or, 2, 1),
        I::I32Xor => (F::I32Xor, 2, 1),
        I::I32Shl => (F::I32Shl, 2, 1),
        I::I32ShrS => (F::I32ShrS, 2, 1),
        I::I32ShrU => (F::I32ShrU, 2, 1),
        I::I32Rotl => (F::I32Rotl, 2, 1),
        I::I32Rotr => (F::I32Rotr, 2, 1),

        I::I64Clz => (F::I64Clz, 1, 1),
        I::I64Ctz => (F::I64Ctz, 1, 1),
        I::I64Popcnt => (F::I64Popcnt, 1, 1),
        I::I64Add => (F::I64Add, 2, 1),
        I::I64Sub => (F::I64Sub, 2, 1),
        I::I64Mul => (F::I64Mul, 2, 1),
        I::I64DivS => (F::I64DivS, 2, 1),
        I::I64DivU => (F::I64DivU, 2, 1),
        I::I64RemS => (F::I64RemS, 2, 1),
        I::I64RemU => (F::I64RemU, 2, 1),
        I::I64And => (F::I64And, 2, 1),
        I::I64Or => (F::I64Or, 2, 1),
        I::I64Xor => (F::I64Xor, 2, 1),
        I::I64Shl => (F::I64Shl, 2, 1),
        I::I64ShrS => (F::I64ShrS, 2, 1),
        I::I64ShrU => (F::I64ShrU, 2, 1),
        I::I64Rotl => (F::I64Rotl, 2, 1),
        I::I64Rotr => (F::I64Rotr, 2, 1),

        I::F32Abs => (F::F32Abs, 1, 1),
        I::F32Neg => (F::F32Neg, 1, 1),
        I::F32Ceil => (F::F32Ceil, 1, 1),
        I::F32Floor => (F::F32Floor, 1, 1),
        I::F32Trunc => (F::F32Trunc, 1, 1),
        I::F32Nearest => (F::F32Nearest, 1, 1),
        I::F32Sqrt => (F::F32Sqrt, 1, 1),
        I::F32Add => (F::F32Add, 2, 1),
        I::F32Sub => (F::F32Sub, 2, 1),
        I::F32Mul => (F::F32Mul, 2, 1),
        I::F32Div => (F::F32Div, 2, 1),
        I::F32Min => (F::F32Min, 2, 1),
        I::F32Max => (F::F32Max, 2, 1),
        I::F32Copysign => (F::F32Copysign, 2, 1),

        I::F64Abs => (F::F64Abs, 1, 1),
        I::F64Neg => (F::F64Neg, 1, 1),
        I::F64Ceil => (F::F64Ceil, 1, 1),
        I::F64Floor => (F::F64Floor, 1, 1),
        I::F64Trunc => (F::F64Trunc, 1, 1),
        I::F64Nearest => (F::F64Nearest, 1, 1),
        I::F64Sqrt => (F::F64Sqrt, 1, 1),
        I::F64Add => (F::F64Add, 2, 1),
        I::F64Sub => (F::F64Sub, 2, 1),
        I::F64Mul => (F::F64Mul, 2, 1),
        I::F64Div => (F::F64Div, 2, 1),
        I::F64Min => (F::F64Min, 2, 1),
        I::F64Max => (F::F64Max, 2, 1),
        I::F64Copysign => (F::F64Copysign, 2, 1),

        I::I32WrapI64 => (F::I32WrapI64, 1, 1),
        I::I32TruncF32S => (F::I32TruncF32S, 1, 1),
        I::I32TruncF32U => (F::I32TruncF32U, 1, 1),
        I::I32TruncF64S => (F::I32TruncF64S, 1, 1),
        I::I32TruncF64U => (F::I32TruncF64U, 1, 1),
        I::I64ExtendI32S => (F::I64ExtendI32S, 1, 1),
        I::I64ExtendI32U => (F::I64ExtendI32U, 1, 1),
        I::I64TruncF32S => (F::I64TruncF32S, 1, 1),
        I::I64TruncF32U => (F::I64TruncF32U, 1, 1),
        I::I64TruncF64S => (F::I64TruncF64S, 1, 1),
        I::I64TruncF64U => (F::I64TruncF64U, 1, 1),
        I::F32ConvertI32S => (F::F32ConvertI32S, 1, 1),
        I::F32ConvertI32U => (F::F32ConvertI32U, 1, 1),
        I::F32ConvertI64S => (F::F32ConvertI64S, 1, 1),
        I::F32ConvertI64U => (F::F32ConvertI64U, 1, 1),
        I::F32DemoteF64 => (F::F32DemoteF64, 1, 1),
        I::F64ConvertI32S => (F::F64ConvertI32S, 1, 1),
        I::F64ConvertI32U => (F::F64ConvertI32U, 1, 1),
        I::F64ConvertI64S => (F::F64ConvertI64S, 1, 1),
        I::F64ConvertI64U => (F::F64ConvertI64U, 1, 1),
        I::F64PromoteF32 => (F::F64PromoteF32, 1, 1),
        I::I32ReinterpretF32 => (F::I32ReinterpretF32, 1, 1),
        I::I64ReinterpretF64 => (F::I64ReinterpretF64, 1, 1),
        I::F32ReinterpretI32 => (F::F32ReinterpretI32, 1, 1),
        I::F64ReinterpretI64 => (F::F64ReinterpretI64, 1, 1),
        I::I32Extend8S => (F::I32Extend8S, 1, 1),
        I::I32Extend16S => (F::I32Extend16S, 1, 1),
        I::I64Extend8S => (F::I64Extend8S, 1, 1),
        I::I64Extend16S => (F::I64Extend16S, 1, 1),
        I::I64Extend32S => (F::I64Extend32S, 1, 1),

        _ => unreachable!("control instructions are lowered structurally"),
    }
}

/// Saved caller state for a guest-level call inside the flat engine.
struct Frame<'a> {
    func: &'a FlatFunc,
    pc: usize,
    base: usize,
}

/// Invokes function `func_idx` on the flat engine.
///
/// # Errors
///
/// Returns exactly the traps the tree-walking interpreter would.
#[allow(clippy::too_many_arguments)] // One borrow per disjoint Instance field.
pub(crate) fn run(
    flat: &FlatModule,
    types: &[FuncType],
    table: &[Option<u32>],
    memory: &mut Memory,
    globals: &mut [Value],
    host: &mut dyn HostEnv,
    func_idx: u32,
    args: &[Value],
) -> Result<Vec<Value>, Trap> {
    let entry = match &flat.funcs[func_idx as usize] {
        FlatFuncDef::Import(imp) => {
            return host.call(&imp.module, &imp.name, memory, args);
        }
        FlatFuncDef::Local(f) => f,
    };

    let mut stack: Vec<Slot> = Vec::with_capacity(64);
    for v in args {
        stack.push(slot_from_value(*v));
    }
    stack.resize(entry.n_locals as usize, 0);

    let mut frames: Vec<Frame> = Vec::new();
    let mut cur: &FlatFunc = entry;
    let mut base: usize = 0;
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack.pop().expect("validated")
        };
    }
    macro_rules! top {
        () => {
            stack.last_mut().expect("validated")
        };
    }
    // In-place unary op: rewrites the top of stack.
    macro_rules! unop {
        ($as:ident, $from:ident, $f:expr) => {{
            let t = top!();
            *t = $from($f($as(*t)));
        }};
    }
    // In-place binary op: pops b, rewrites a in place.
    macro_rules! binop {
        ($as:ident, $from:ident, $f:expr) => {{
            let b = $as(pop!());
            let t = top!();
            *t = $from($f($as(*t), b));
        }};
    }
    macro_rules! relop {
        ($as:ident, $f:expr) => {{
            let b = $as(pop!());
            let t = top!();
            *t = u64::from($f($as(*t), b));
        }};
    }
    macro_rules! load {
        ($off:expr, $n:expr, $conv:expr) => {{
            let t = top!();
            let addr = as_i32(*t);
            let bytes: [u8; $n] = memory.load(addr, $off)?;
            *t = $conv(bytes);
        }};
    }
    macro_rules! store {
        ($off:expr, $conv:expr) => {{
            let v = pop!();
            let addr = as_i32(pop!());
            memory.store(addr, $off, &$conv(v))?;
        }};
    }
    // Branch stack fix-up + jump: keep the top `keep` slots, reset the
    // operand stack to height `height` above this frame's operand base.
    macro_rules! do_br {
        ($target:expr, $keep:expr, $height:expr) => {{
            let dest = base + cur.n_locals as usize + $height as usize;
            let keep = $keep as usize;
            let src = stack.len() - keep;
            if src != dest {
                stack.copy_within(src.., dest);
                stack.truncate(dest + keep);
            }
            pc = $target as usize;
        }};
    }
    macro_rules! call_local {
        ($callee:expr) => {{
            let callee: &FlatFunc = $callee;
            if frames.len() + 1 >= MAX_CALL_DEPTH {
                return Err(Trap::CallStackExhausted);
            }
            let new_base = stack.len() - callee.n_params as usize;
            stack.resize(new_base + callee.n_locals as usize, 0);
            frames.push(Frame {
                func: cur,
                pc,
                base,
            });
            cur = callee;
            base = new_base;
            pc = 0;
        }};
    }
    macro_rules! call_import {
        ($imp:expr) => {{
            let imp: &FlatImport = $imp;
            let split = stack.len() - imp.params.len();
            let host_args: Vec<Value> = imp
                .params
                .iter()
                .zip(&stack[split..])
                .map(|(ty, s)| value_from_slot(*ty, *s))
                .collect();
            stack.truncate(split);
            let results = host.call(&imp.module, &imp.name, memory, &host_args)?;
            stack.extend(results.into_iter().map(slot_from_value));
        }};
    }

    loop {
        let op = &cur.code[pc];
        pc += 1;
        match op {
            FlatOp::Unreachable => return Err(Trap::Unreachable),
            FlatOp::Jump { target } => pc = *target as usize,
            FlatOp::JumpIfZero { target } => {
                if as_u32(pop!()) == 0 {
                    pc = *target as usize;
                }
            }
            FlatOp::JumpIfNonZero { target } => {
                if as_u32(pop!()) != 0 {
                    pc = *target as usize;
                }
            }
            FlatOp::Br {
                target,
                keep,
                height,
            } => do_br!(*target, *keep, *height),
            FlatOp::BrIf {
                target,
                keep,
                height,
            } => {
                if as_u32(pop!()) != 0 {
                    do_br!(*target, *keep, *height);
                }
            }
            FlatOp::BrTable { entries } => {
                let i = as_u32(pop!()) as usize;
                let e = entries[i.min(entries.len() - 1)];
                do_br!(e.target, e.keep, e.height);
            }
            FlatOp::Return => {
                let n = cur.n_results as usize;
                let rs = stack.len() - n;
                if rs != base {
                    stack.copy_within(rs.., base);
                    stack.truncate(base + n);
                }
                match frames.pop() {
                    Some(fr) => {
                        cur = fr.func;
                        pc = fr.pc;
                        base = fr.base;
                    }
                    None => {
                        return Ok(cur
                            .result_types
                            .iter()
                            .zip(&stack[base..])
                            .map(|(ty, s)| value_from_slot(*ty, *s))
                            .collect());
                    }
                }
            }
            FlatOp::CallLocal { func } => {
                let FlatFuncDef::Local(callee) = &flat.funcs[*func as usize] else {
                    unreachable!("resolved at lowering")
                };
                call_local!(callee);
            }
            FlatOp::CallImport { func } => {
                let FlatFuncDef::Import(imp) = &flat.funcs[*func as usize] else {
                    unreachable!("resolved at lowering")
                };
                call_import!(imp);
            }
            FlatOp::CallIndirect { type_idx } => {
                let i = as_u32(pop!()) as usize;
                let slot = *table.get(i).ok_or(Trap::TableOutOfBounds)?;
                let f = slot.ok_or(Trap::UndefinedTableElement)?;
                let actual = &types[flat.func_type_idx[f as usize] as usize];
                let expected = &types[*type_idx as usize];
                if actual != expected {
                    return Err(Trap::IndirectTypeMismatch);
                }
                match &flat.funcs[f as usize] {
                    FlatFuncDef::Import(imp) => call_import!(imp),
                    FlatFuncDef::Local(callee) => call_local!(callee),
                }
            }

            FlatOp::Drop => {
                pop!();
            }
            FlatOp::Select => {
                let c = as_u32(pop!());
                let b = pop!();
                if c == 0 {
                    *top!() = b;
                }
            }

            FlatOp::LocalGet(i) => {
                let v = stack[base + *i as usize];
                stack.push(v);
            }
            FlatOp::LocalSet(i) => stack[base + *i as usize] = pop!(),
            FlatOp::LocalTee(i) => {
                let v = *stack.last().expect("validated");
                stack[base + *i as usize] = v;
            }
            FlatOp::GlobalGet(i) => stack.push(slot_from_value(globals[*i as usize])),
            FlatOp::GlobalSet(i) => {
                globals[*i as usize] = value_from_slot(flat.global_types[*i as usize], pop!());
            }

            FlatOp::I32Load(off) => load!(*off, 4, |b| from_i32(i32::from_le_bytes(b))),
            FlatOp::I64Load(off) => load!(*off, 8, |b| from_i64(i64::from_le_bytes(b))),
            FlatOp::F32Load(off) => load!(*off, 4, |b| u64::from(u32::from_le_bytes(b))),
            FlatOp::F64Load(off) => load!(*off, 8, u64::from_le_bytes),
            FlatOp::I32Load8S(off) => {
                load!(*off, 1, |b: [u8; 1]| from_i32(i32::from(b[0] as i8)))
            }
            FlatOp::I32Load8U(off) => load!(*off, 1, |b: [u8; 1]| u64::from(b[0])),
            FlatOp::I32Load16S(off) => {
                load!(*off, 2, |b| from_i32(i32::from(i16::from_le_bytes(b))))
            }
            FlatOp::I32Load16U(off) => load!(*off, 2, |b| u64::from(u16::from_le_bytes(b))),
            FlatOp::I64Load8S(off) => {
                load!(*off, 1, |b: [u8; 1]| from_i64(i64::from(b[0] as i8)))
            }
            FlatOp::I64Load8U(off) => load!(*off, 1, |b: [u8; 1]| u64::from(b[0])),
            FlatOp::I64Load16S(off) => {
                load!(*off, 2, |b| from_i64(i64::from(i16::from_le_bytes(b))))
            }
            FlatOp::I64Load16U(off) => load!(*off, 2, |b| u64::from(u16::from_le_bytes(b))),
            FlatOp::I64Load32S(off) => {
                load!(*off, 4, |b| from_i64(i64::from(i32::from_le_bytes(b))))
            }
            FlatOp::I64Load32U(off) => load!(*off, 4, |b| u64::from(u32::from_le_bytes(b))),

            FlatOp::I32Store(off) => store!(*off, |v| (v as u32).to_le_bytes()),
            FlatOp::I64Store(off) => store!(*off, |v: u64| v.to_le_bytes()),
            FlatOp::F32Store(off) => store!(*off, |v| (v as u32).to_le_bytes()),
            FlatOp::F64Store(off) => store!(*off, |v: u64| v.to_le_bytes()),
            FlatOp::I32Store8(off) => store!(*off, |v| [(v & 0xff) as u8]),
            FlatOp::I32Store16(off) => store!(*off, |v| (v as u16).to_le_bytes()),
            FlatOp::I64Store8(off) => store!(*off, |v| [(v & 0xff) as u8]),
            FlatOp::I64Store16(off) => store!(*off, |v| (v as u16).to_le_bytes()),
            FlatOp::I64Store32(off) => store!(*off, |v| (v as u32).to_le_bytes()),

            FlatOp::MemorySize => stack.push(from_i32(memory.size_pages() as i32)),
            FlatOp::MemoryGrow => {
                let t = top!();
                let delta = as_u32(*t);
                *t = from_i32(memory.grow(delta));
            }
            FlatOp::MemoryCopy => {
                let len = as_u32(pop!());
                let src = as_u32(pop!());
                let dst = as_u32(pop!());
                let mem_len = memory.data().len() as u64;
                if u64::from(src) + u64::from(len) > mem_len
                    || u64::from(dst) + u64::from(len) > mem_len
                {
                    return Err(Trap::MemoryOutOfBounds);
                }
                memory
                    .data_mut()
                    .copy_within(src as usize..(src + len) as usize, dst as usize);
            }
            FlatOp::MemoryFill => {
                let len = as_u32(pop!());
                let val = as_u32(pop!()) as u8;
                let dst = as_u32(pop!());
                if u64::from(dst) + u64::from(len) > memory.data().len() as u64 {
                    return Err(Trap::MemoryOutOfBounds);
                }
                memory.data_mut()[dst as usize..(dst + len) as usize].fill(val);
            }

            FlatOp::Const(v) => stack.push(*v),

            FlatOp::I32Eqz => {
                let t = top!();
                *t = u64::from(as_u32(*t) == 0);
            }
            FlatOp::I64Eqz => {
                let t = top!();
                *t = u64::from(*t == 0);
            }
            FlatOp::I32Eq => relop!(as_i32, |a, b| a == b),
            FlatOp::I32Ne => relop!(as_i32, |a, b| a != b),
            FlatOp::I32LtS => relop!(as_i32, |a, b| a < b),
            FlatOp::I32LtU => relop!(as_u32, |a, b| a < b),
            FlatOp::I32GtS => relop!(as_i32, |a, b| a > b),
            FlatOp::I32GtU => relop!(as_u32, |a, b| a > b),
            FlatOp::I32LeS => relop!(as_i32, |a, b| a <= b),
            FlatOp::I32LeU => relop!(as_u32, |a, b| a <= b),
            FlatOp::I32GeS => relop!(as_i32, |a, b| a >= b),
            FlatOp::I32GeU => relop!(as_u32, |a, b| a >= b),
            FlatOp::I64Eq => relop!(as_i64, |a, b| a == b),
            FlatOp::I64Ne => relop!(as_i64, |a, b| a != b),
            FlatOp::I64LtS => relop!(as_i64, |a, b| a < b),
            FlatOp::I64LtU => relop!(as_u64, |a, b| a < b),
            FlatOp::I64GtS => relop!(as_i64, |a, b| a > b),
            FlatOp::I64GtU => relop!(as_u64, |a, b| a > b),
            FlatOp::I64LeS => relop!(as_i64, |a, b| a <= b),
            FlatOp::I64LeU => relop!(as_u64, |a, b| a <= b),
            FlatOp::I64GeS => relop!(as_i64, |a, b| a >= b),
            FlatOp::I64GeU => relop!(as_u64, |a, b| a >= b),
            FlatOp::F32Eq => relop!(as_f32, |a, b| a == b),
            FlatOp::F32Ne => relop!(as_f32, |a, b| a != b),
            FlatOp::F32Lt => relop!(as_f32, |a, b| a < b),
            FlatOp::F32Gt => relop!(as_f32, |a, b| a > b),
            FlatOp::F32Le => relop!(as_f32, |a, b| a <= b),
            FlatOp::F32Ge => relop!(as_f32, |a, b| a >= b),
            FlatOp::F64Eq => relop!(as_f64, |a, b| a == b),
            FlatOp::F64Ne => relop!(as_f64, |a, b| a != b),
            FlatOp::F64Lt => relop!(as_f64, |a, b| a < b),
            FlatOp::F64Gt => relop!(as_f64, |a, b| a > b),
            FlatOp::F64Le => relop!(as_f64, |a, b| a <= b),
            FlatOp::F64Ge => relop!(as_f64, |a, b| a >= b),

            FlatOp::I32Clz => unop!(as_i32, from_i32, |a: i32| a.leading_zeros() as i32),
            FlatOp::I32Ctz => unop!(as_i32, from_i32, |a: i32| a.trailing_zeros() as i32),
            FlatOp::I32Popcnt => unop!(as_i32, from_i32, |a: i32| a.count_ones() as i32),
            FlatOp::I32Add => binop!(as_i32, from_i32, i32::wrapping_add),
            FlatOp::I32Sub => binop!(as_i32, from_i32, i32::wrapping_sub),
            FlatOp::I32Mul => binop!(as_i32, from_i32, i32::wrapping_mul),
            FlatOp::I32DivS => {
                let b = as_i32(pop!());
                let t = top!();
                let a = as_i32(*t);
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                let (q, ov) = a.overflowing_div(b);
                if ov {
                    return Err(Trap::IntegerOverflow);
                }
                *t = from_i32(q);
            }
            FlatOp::I32DivU => {
                let b = as_u32(pop!());
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t = u64::from(as_u32(*t) / b);
            }
            FlatOp::I32RemS => {
                let b = as_i32(pop!());
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t = from_i32(as_i32(*t).wrapping_rem(b));
            }
            FlatOp::I32RemU => {
                let b = as_u32(pop!());
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t = u64::from(as_u32(*t) % b);
            }
            FlatOp::I32And => binop!(as_i32, from_i32, |a, b| a & b),
            FlatOp::I32Or => binop!(as_i32, from_i32, |a, b| a | b),
            FlatOp::I32Xor => binop!(as_i32, from_i32, |a, b| a ^ b),
            FlatOp::I32Shl => binop!(as_i32, from_i32, |a: i32, b: i32| a.wrapping_shl(b as u32)),
            FlatOp::I32ShrS => binop!(as_i32, from_i32, |a: i32, b: i32| a.wrapping_shr(b as u32)),
            FlatOp::I32ShrU => binop!(as_u32, from_i32, |a: u32, b: u32| a.wrapping_shr(b) as i32),
            FlatOp::I32Rotl => {
                binop!(as_i32, from_i32, |a: i32, b: i32| a
                    .rotate_left(b as u32 % 32))
            }
            FlatOp::I32Rotr => {
                binop!(as_i32, from_i32, |a: i32, b: i32| a
                    .rotate_right(b as u32 % 32))
            }

            FlatOp::I64Clz => unop!(as_i64, from_i64, |a: i64| i64::from(a.leading_zeros())),
            FlatOp::I64Ctz => unop!(as_i64, from_i64, |a: i64| i64::from(a.trailing_zeros())),
            FlatOp::I64Popcnt => unop!(as_i64, from_i64, |a: i64| i64::from(a.count_ones())),
            FlatOp::I64Add => binop!(as_i64, from_i64, i64::wrapping_add),
            FlatOp::I64Sub => binop!(as_i64, from_i64, i64::wrapping_sub),
            FlatOp::I64Mul => binop!(as_i64, from_i64, i64::wrapping_mul),
            FlatOp::I64DivS => {
                let b = as_i64(pop!());
                let t = top!();
                let a = as_i64(*t);
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                let (q, ov) = a.overflowing_div(b);
                if ov {
                    return Err(Trap::IntegerOverflow);
                }
                *t = from_i64(q);
            }
            FlatOp::I64DivU => {
                let b = pop!();
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t /= b;
            }
            FlatOp::I64RemS => {
                let b = as_i64(pop!());
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t = from_i64(as_i64(*t).wrapping_rem(b));
            }
            FlatOp::I64RemU => {
                let b = pop!();
                let t = top!();
                if b == 0 {
                    return Err(Trap::DivisionByZero);
                }
                *t %= b;
            }
            FlatOp::I64And => binop!(as_i64, from_i64, |a, b| a & b),
            FlatOp::I64Or => binop!(as_i64, from_i64, |a, b| a | b),
            FlatOp::I64Xor => binop!(as_i64, from_i64, |a, b| a ^ b),
            FlatOp::I64Shl => binop!(as_i64, from_i64, |a: i64, b: i64| a.wrapping_shl(b as u32)),
            FlatOp::I64ShrS => binop!(as_i64, from_i64, |a: i64, b: i64| a.wrapping_shr(b as u32)),
            FlatOp::I64ShrU => binop!(
                as_u64,
                from_i64,
                |a: u64, b: u64| (a.wrapping_shr(b as u32)) as i64
            ),
            FlatOp::I64Rotl => binop!(as_i64, from_i64, |a: i64, b: i64| a
                .rotate_left((b as u32) % 64)),
            FlatOp::I64Rotr => binop!(as_i64, from_i64, |a: i64, b: i64| a
                .rotate_right((b as u32) % 64)),

            FlatOp::F32Abs => unop!(as_f32, from_f32, f32::abs),
            FlatOp::F32Neg => unop!(as_f32, from_f32, |a: f32| -a),
            FlatOp::F32Ceil => unop!(as_f32, from_f32, f32::ceil),
            FlatOp::F32Floor => unop!(as_f32, from_f32, f32::floor),
            FlatOp::F32Trunc => unop!(as_f32, from_f32, f32::trunc),
            FlatOp::F32Nearest => unop!(as_f32, from_f32, f32::round_ties_even),
            FlatOp::F32Sqrt => unop!(as_f32, from_f32, f32::sqrt),
            FlatOp::F32Add => binop!(as_f32, from_f32, |a, b| a + b),
            FlatOp::F32Sub => binop!(as_f32, from_f32, |a, b| a - b),
            FlatOp::F32Mul => binop!(as_f32, from_f32, |a, b| a * b),
            FlatOp::F32Div => binop!(as_f32, from_f32, |a, b| a / b),
            FlatOp::F32Min => binop!(as_f32, from_f32, wasm_fmin32),
            FlatOp::F32Max => binop!(as_f32, from_f32, wasm_fmax32),
            FlatOp::F32Copysign => binop!(as_f32, from_f32, f32::copysign),

            FlatOp::F64Abs => unop!(as_f64, from_f64, f64::abs),
            FlatOp::F64Neg => unop!(as_f64, from_f64, |a: f64| -a),
            FlatOp::F64Ceil => unop!(as_f64, from_f64, f64::ceil),
            FlatOp::F64Floor => unop!(as_f64, from_f64, f64::floor),
            FlatOp::F64Trunc => unop!(as_f64, from_f64, f64::trunc),
            FlatOp::F64Nearest => unop!(as_f64, from_f64, f64::round_ties_even),
            FlatOp::F64Sqrt => unop!(as_f64, from_f64, f64::sqrt),
            FlatOp::F64Add => binop!(as_f64, from_f64, |a, b| a + b),
            FlatOp::F64Sub => binop!(as_f64, from_f64, |a, b| a - b),
            FlatOp::F64Mul => binop!(as_f64, from_f64, |a, b| a * b),
            FlatOp::F64Div => binop!(as_f64, from_f64, |a, b| a / b),
            FlatOp::F64Min => binop!(as_f64, from_f64, wasm_fmin64),
            FlatOp::F64Max => binop!(as_f64, from_f64, wasm_fmax64),
            FlatOp::F64Copysign => binop!(as_f64, from_f64, f64::copysign),

            FlatOp::I32WrapI64 => {
                let t = top!();
                *t = from_i32(as_i64(*t) as i32);
            }
            FlatOp::I32TruncF32S => {
                let t = top!();
                *t = from_i32(trunc_f32_to_i32_s(as_f32(*t))?);
            }
            FlatOp::I32TruncF32U => {
                let t = top!();
                *t = u64::from(trunc_f32_to_u32(as_f32(*t))?);
            }
            FlatOp::I32TruncF64S => {
                let t = top!();
                *t = from_i32(trunc_f64_to_i32_s(as_f64(*t))?);
            }
            FlatOp::I32TruncF64U => {
                let t = top!();
                *t = u64::from(trunc_f64_to_u32(as_f64(*t))?);
            }
            FlatOp::I64ExtendI32S => {
                let t = top!();
                *t = from_i64(i64::from(as_i32(*t)));
            }
            FlatOp::I64ExtendI32U => {
                let t = top!();
                *t = u64::from(as_u32(*t));
            }
            FlatOp::I64TruncF32S => {
                let t = top!();
                *t = from_i64(trunc_f32_to_i64_s(as_f32(*t))?);
            }
            FlatOp::I64TruncF32U => {
                let t = top!();
                *t = trunc_f32_to_u64(as_f32(*t))?;
            }
            FlatOp::I64TruncF64S => {
                let t = top!();
                *t = from_i64(trunc_f64_to_i64_s(as_f64(*t))?);
            }
            FlatOp::I64TruncF64U => {
                let t = top!();
                *t = trunc_f64_to_u64(as_f64(*t))?;
            }
            FlatOp::F32ConvertI32S => unop!(as_i32, from_f32, |a: i32| a as f32),
            FlatOp::F32ConvertI32U => unop!(as_u32, from_f32, |a: u32| a as f32),
            FlatOp::F32ConvertI64S => unop!(as_i64, from_f32, |a: i64| a as f32),
            FlatOp::F32ConvertI64U => unop!(as_u64, from_f32, |a: u64| a as f32),
            FlatOp::F32DemoteF64 => unop!(as_f64, from_f32, |a: f64| a as f32),
            FlatOp::F64ConvertI32S => unop!(as_i32, from_f64, f64::from),
            FlatOp::F64ConvertI32U => unop!(as_u32, from_f64, f64::from),
            FlatOp::F64ConvertI64S => unop!(as_i64, from_f64, |a: i64| a as f64),
            FlatOp::F64ConvertI64U => unop!(as_u64, from_f64, |a: u64| a as f64),
            FlatOp::F64PromoteF32 => unop!(as_f32, from_f64, f64::from),
            // Reinterprets are no-ops on raw slots (i32/f32 both occupy the
            // low 32 bits; i64/f64 the full slot).
            FlatOp::I32ReinterpretF32
            | FlatOp::I64ReinterpretF64
            | FlatOp::F32ReinterpretI32
            | FlatOp::F64ReinterpretI64 => {}
            FlatOp::I32Extend8S => unop!(as_i32, from_i32, |a: i32| i32::from(a as i8)),
            FlatOp::I32Extend16S => unop!(as_i32, from_i32, |a: i32| i32::from(a as i16)),
            FlatOp::I64Extend8S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i8)),
            FlatOp::I64Extend16S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i16)),
            FlatOp::I64Extend32S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::exec::{ExecMode, Instance, NoHost};
    use crate::instr::Instr as I;
    use crate::types::BlockType;

    fn run_both(bytes: &[u8], name: &str, args: &[Value]) -> [Result<Vec<Value>, Trap>; 2] {
        let module = crate::load(bytes).unwrap();
        [ExecMode::Interpreted, ExecMode::Aot].map(|mode| {
            let mut inst = Instance::instantiate(&module, mode, &mut NoHost).unwrap();
            inst.invoke(&mut NoHost, name, args)
        })
    }

    #[test]
    fn nested_blocks_and_branches_agree() {
        // A br 1 carrying a value out of a doubly-nested block.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(1),
                I::Br(1),
                I::End,
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(1)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(1)]);
    }

    #[test]
    fn loop_with_br_if_counts() {
        // Sums 0..n with a loop + br_if back-edge.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32, ValType::I32],
            vec![
                I::Loop(BlockType::Empty),
                // sum += i
                I::LocalGet(1),
                I::LocalGet(2),
                I::I32Add,
                I::LocalSet(2),
                // i += 1
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                // if i < n continue
                I::LocalGet(1),
                I::LocalGet(0),
                I::I32LtS,
                I::BrIf(0),
                I::End,
                I::LocalGet(2),
                I::End,
            ],
        );
        b.export_func("sum", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "sum", &[Value::I32(10)]);
        assert_eq!(interp.unwrap(), vec![Value::I32(45)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(45)]);
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::LocalGet(0),
                I::If(BlockType::Value(ValType::I32)),
                I::I32Const(100),
                I::Else,
                I::I32Const(-100),
                I::End,
                I::End,
            ],
        );
        b.export_func("pick", f);
        let bytes = b.build();
        for (arg, want) in [(1, 100), (0, -100)] {
            let [interp, flat] = run_both(&bytes, "pick", &[Value::I32(arg)]);
            assert_eq!(interp.unwrap(), vec![Value::I32(want)]);
            assert_eq!(flat.unwrap(), vec![Value::I32(want)]);
        }
    }

    #[test]
    fn br_table_selects_all_arms() {
        // br_table over three nested blocks returning distinct constants.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::LocalGet(0),
                I::BrTable {
                    targets: vec![0, 1],
                    default: 2,
                },
                I::End,
                I::I32Const(10),
                I::Return,
                I::End,
                I::I32Const(20),
                I::Return,
                I::End,
                I::I32Const(30),
                I::End,
            ],
        );
        b.export_func("route", f);
        let bytes = b.build();
        for (arg, want) in [(0, 10), (1, 20), (2, 30), (99, 30)] {
            let [interp, flat] = run_both(&bytes, "route", &[Value::I32(arg)]);
            assert_eq!(interp.unwrap(), vec![Value::I32(want)], "arg {arg}");
            assert_eq!(flat.unwrap(), vec![Value::I32(want)], "arg {arg}");
        }
    }

    #[test]
    fn traps_match_tree_interpreter() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![I::LocalGet(0), I::LocalGet(1), I::I32DivS, I::End],
        );
        b.export_func("div", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "div", &[Value::I32(1), Value::I32(0)]);
        assert_eq!(interp.unwrap_err(), Trap::DivisionByZero);
        assert_eq!(flat.unwrap_err(), Trap::DivisionByZero);
        let [interp, flat] = run_both(&bytes, "div", &[Value::I32(i32::MIN), Value::I32(-1)]);
        assert_eq!(interp.unwrap_err(), Trap::IntegerOverflow);
        assert_eq!(flat.unwrap_err(), Trap::IntegerOverflow);
    }

    #[test]
    fn recursion_depth_trap_matches() {
        // infinite recursion traps with CallStackExhausted in both modes.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[]);
        let f = b.add_func(ty, &[], vec![I::Call(0), I::End]);
        b.export_func("rec", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "rec", &[]);
        assert_eq!(interp.unwrap_err(), Trap::CallStackExhausted);
        assert_eq!(flat.unwrap_err(), Trap::CallStackExhausted);
    }

    #[test]
    fn branch_discards_excess_operands() {
        // A br out of a block with extra values on the stack must keep only
        // the label arity; the flat engine encodes the fix-up statically.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(7),
                I::I32Const(8),
                I::I32Const(42),
                I::Br(0),
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(42)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(42)]);
    }

    #[test]
    fn unreachable_code_after_br_is_skipped() {
        // Ops after a br in the same block never execute; the lowering
        // skips them entirely (they would otherwise corrupt bookkeeping).
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(5),
                I::Br(0),
                I::I32Const(1),
                I::I32Const(2),
                I::I32Add,
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(5)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(5)]);
    }

    #[test]
    fn float_bits_roundtrip_through_slots() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let s = slot_from_value(Value::F64(v));
            assert_eq!(value_from_slot(ValType::F64, s), Value::F64(v));
        }
        let nan = f64::NAN;
        let s = slot_from_value(Value::F64(nan));
        match value_from_slot(ValType::F64, s) {
            Value::F64(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            _ => panic!(),
        }
        for v in [0.0f32, -0.0, 3.25, f32::MIN_POSITIVE] {
            let s = slot_from_value(Value::F32(v));
            assert_eq!(value_from_slot(ValType::F32, s), Value::F32(v));
        }
    }
}

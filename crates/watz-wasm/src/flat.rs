//! The flattened, pre-resolved execution engine behind [`ExecMode::Aot`].
//!
//! At load time every function body is lowered from its structured
//! `Vec<Instr>` form into a flat linear array of `FlatOp`s:
//!
//! * `block`/`loop`/`if`/`else`/`end` disappear — every branch becomes an
//!   absolute jump target computed once, during lowering (this subsumes the
//!   old per-function `end`/`else` side tables);
//! * branches that discard operand-stack values carry the `keep`/`height`
//!   stack fix-up as immediates, so no label stack exists at run time;
//! * immediates (memory offsets, constants, call targets) are inlined, and
//!   constants of all four value types collapse into one raw-bits `Const`;
//! * the operand stack is untagged 64-bit slots (`Slot`): validation
//!   already guarantees types, so the enum tag the tree-walking interpreter
//!   carries on every value is dead weight on the hot path. Locals live at
//!   the base of the same stack, so a guest call is a frame-pointer bump,
//!   not a `Vec<Value>` allocation.
//!
//! # Superinstruction fusion
//!
//! After lowering, a peephole pass rewrites common adjacent sequences into
//! fused superinstructions that execute with direct frame-slot addressing
//! and no intermediate operand-stack traffic, collapsing 2–4 dispatch-loop
//! iterations into one:
//!
//! | pattern | fused form |
//! |---|---|
//! | `local.get a; local.get b; binop` | [`FlatOp::FusedBinopLL`] |
//! | `local.get a; const k; binop` | [`FlatOp::FusedBinopLK`] |
//! | `local.get a; local.get b; binop; local.set d` | [`FlatOp::FusedBinopLLSet`] |
//! | `local.get a; const k; binop; local.set d` | [`FlatOp::FusedBinopLKSet`] |
//! | `binop; local.set d` (operands on the stack) | [`FlatOp::FusedBinopSet`] |
//! | `local.get s; local.set d` | [`FlatOp::LocalCopy`] |
//! | `local.get a; load` | [`FlatOp::FusedLoadL`] |
//! | `local.get v; store` (address on the stack) | [`FlatOp::FusedStoreL`] |
//! | `i32.add; load` (address computed on the stack) | [`FlatOp::FusedAddLoad`] |
//!
//! `binop` is any two-operand numeric or relational operator
//! ([`BinOpKind`]); trapping operators (`div`/`rem`) keep their exact trap
//! semantics inside the fused forms. Matching is greedy
//! (longest-window-first) and purely local.
//!
//! **Jump-remap invariant:** a fusion window never *starts past* or
//! *covers* a jump target — every branch destination stays the first op of
//! a window, so after compaction each old target maps 1:1 to a new index.
//! All absolute jumps, `br_table` entries and their `keep`/`height`
//! fix-ups are re-pointed through that map, and a load-time check
//! ([`check_jump_targets`]) verifies every remapped target lands on a real
//! instruction before the code is ever executed. Because fused windows are
//! straight-line (no branch in or out mid-window), operand-stack heights
//! at window boundaries are unchanged and the `keep`/`height` immediates
//! remain valid.
//!
//! The pass can be disabled with the `WATZ_NO_FUSE` environment switch
//! (any non-empty value other than `0`), or per-instance via
//! [`Instance::instantiate_with_fusion`], keeping the unfused flat engine
//! reachable for bisection. Per-kind emission counts are reported through
//! [`FusionStats`].
//!
//! # Register allocation on top
//!
//! The (fused) flat code is lowered one step further by [`crate::reg`]
//! into register form, which eliminates the operand stack from hot
//! dispatch entirely. The key invariant this module maintains for that
//! pass is the **entry-height table**: [`lower`] records, for every flat
//! op it emits, the operand-stack height at the op's entry (before its
//! own pops) — heights are compile-time constants under validation, which
//! is exactly what lets the register pass pin the value "at height `h`"
//! to the fixed frame slot `n_locals + h`. Fusion carries the table
//! through compaction (a window inherits its first op's entry height;
//! windows are straight-line, so that is the fused op's entry height
//! too). The register pass re-points every jump through its own old→new
//! map and re-validates the result, mirroring [`check_jump_targets`]
//! here. `WATZ_NO_REG=1` (or [`Instance::instantiate_with_engine`]) pins
//! the stack-form engine in this module.
//!
//! Semantics (including every trap) are identical to the structured
//! tree-walking interpreter in [`crate::exec`], which serves as the
//! differential oracle: the PolyBench/speedtest/Genann suites and the
//! randomized MiniC property tests assert bit-identical results and
//! identical traps across all engines, in every fused/unfused ×
//! register/stack combination.
//!
//! [`Instance::instantiate_with_engine`]: crate::exec::Instance::instantiate_with_engine
//!
//! [`ExecMode::Aot`]: crate::exec::ExecMode
//! [`Instance::instantiate_with_fusion`]: crate::exec::Instance::instantiate_with_fusion

use crate::exec::{
    trunc_f32_to_i32_s, trunc_f32_to_i64_s, trunc_f32_to_u32, trunc_f32_to_u64, trunc_f64_to_i32_s,
    trunc_f64_to_i64_s, trunc_f64_to_u32, trunc_f64_to_u64, wasm_fmax32, wasm_fmax64, wasm_fmin32,
    wasm_fmin64, HostEnv, Memory, Trap, Value, MAX_CALL_DEPTH,
};
use crate::instr::Instr;
use crate::module::{FuncBody, Module};
use crate::profile::{OpClass, ProfOp, Profiler};
use crate::types::{BlockType, FuncType, ValType};

/// An untagged 64-bit operand-stack slot.
///
/// i32 values are stored zero-extended, i64 as-is, floats as their IEEE bit
/// patterns. Validation guarantees each slot is only ever read at the type
/// it was written with.
pub(crate) type Slot = u64;

#[inline]
pub(crate) fn from_i32(v: i32) -> Slot {
    u64::from(v as u32)
}
#[inline]
pub(crate) fn from_i64(v: i64) -> Slot {
    v as u64
}
#[inline]
pub(crate) fn from_f32(v: f32) -> Slot {
    u64::from(v.to_bits())
}
#[inline]
pub(crate) fn from_f64(v: f64) -> Slot {
    v.to_bits()
}
#[inline]
pub(crate) fn as_i32(s: Slot) -> i32 {
    s as u32 as i32
}
#[inline]
pub(crate) fn as_u32(s: Slot) -> u32 {
    s as u32
}
#[inline]
pub(crate) fn as_i64(s: Slot) -> i64 {
    s as i64
}
#[inline]
pub(crate) fn as_u64(s: Slot) -> u64 {
    s
}
#[inline]
pub(crate) fn as_f32(s: Slot) -> f32 {
    f32::from_bits(s as u32)
}
#[inline]
pub(crate) fn as_f64(s: Slot) -> f64 {
    f64::from_bits(s)
}

#[inline]
pub(crate) fn slot_from_value(v: Value) -> Slot {
    match v {
        Value::I32(x) => from_i32(x),
        Value::I64(x) => from_i64(x),
        Value::F32(x) => from_f32(x),
        Value::F64(x) => from_f64(x),
    }
}

#[inline]
pub(crate) fn value_from_slot(ty: ValType, s: Slot) -> Value {
    match ty {
        ValType::I32 => Value::I32(as_i32(s)),
        ValType::I64 => Value::I64(as_i64(s)),
        ValType::F32 => Value::F32(as_f32(s)),
        ValType::F64 => Value::F64(as_f64(s)),
    }
}

// ---------------------------------------------------------------------------
// Shared trapping-operator semantics. These helpers are the single source
// of truth for `div`/`rem` traps: the plain dispatch arms and every fused
// superinstruction route through them, so the fused paths cannot drift
// from the tree interpreter on `INT_MIN / -1`, `INT_MIN % -1` (== 0, no
// trap) or division by zero.
// ---------------------------------------------------------------------------

#[inline]
fn i32_div_s(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    match a.overflowing_div(b) {
        (_, true) => Err(Trap::IntegerOverflow),
        (q, false) => Ok(q),
    }
}

#[inline]
fn i32_div_u(a: u32, b: u32) -> Result<u32, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a / b)
}

#[inline]
fn i32_rem_s(a: i32, b: i32) -> Result<i32, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a.wrapping_rem(b))
}

#[inline]
fn i32_rem_u(a: u32, b: u32) -> Result<u32, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a % b)
}

#[inline]
fn i64_div_s(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    match a.overflowing_div(b) {
        (_, true) => Err(Trap::IntegerOverflow),
        (q, false) => Ok(q),
    }
}

#[inline]
fn i64_div_u(a: u64, b: u64) -> Result<u64, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a / b)
}

#[inline]
fn i64_rem_s(a: i64, b: i64) -> Result<i64, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a.wrapping_rem(b))
}

#[inline]
fn i64_rem_u(a: u64, b: u64) -> Result<u64, Trap> {
    if b == 0 {
        return Err(Trap::DivisionByZero);
    }
    Ok(a % b)
}

/// A fusable two-operand numeric or relational operator, shared by every
/// fused superinstruction form. Variants mirror the spec's instruction
/// names 1:1. (`Hash` feeds the value-numbering keys in
/// [`crate::analysis`].)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub(crate) enum BinOpKind {
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,
}

impl BinOpKind {
    /// Whether the operator can trap (integer `div`/`rem`).
    ///
    /// Retired-instruction counting is inclusive at fetch, so exact
    /// cross-rung instret parity on trapping inputs requires that a
    /// trap-capable binop is always the *last* guest op of its fused
    /// window — [`binop_follow`] refuses to extend past one.
    pub(crate) fn traps(self) -> bool {
        matches!(
            self,
            BinOpKind::I32DivS
                | BinOpKind::I32DivU
                | BinOpKind::I32RemS
                | BinOpKind::I32RemU
                | BinOpKind::I64DivS
                | BinOpKind::I64DivU
                | BinOpKind::I64RemS
                | BinOpKind::I64RemU
        )
    }
}

/// Applies a fusable binary operator to two raw slots.
///
/// # Errors
///
/// Exactly the traps the corresponding plain opcode raises (`div`/`rem`
/// route through the shared helpers above).
#[inline]
#[allow(clippy::too_many_lines)]
pub(crate) fn apply_binop(op: BinOpKind, a: Slot, b: Slot) -> Result<Slot, Trap> {
    use BinOpKind as B;
    Ok(match op {
        B::I32Add => from_i32(as_i32(a).wrapping_add(as_i32(b))),
        B::I32Sub => from_i32(as_i32(a).wrapping_sub(as_i32(b))),
        B::I32Mul => from_i32(as_i32(a).wrapping_mul(as_i32(b))),
        B::I32DivS => from_i32(i32_div_s(as_i32(a), as_i32(b))?),
        B::I32DivU => u64::from(i32_div_u(as_u32(a), as_u32(b))?),
        B::I32RemS => from_i32(i32_rem_s(as_i32(a), as_i32(b))?),
        B::I32RemU => u64::from(i32_rem_u(as_u32(a), as_u32(b))?),
        B::I32And => from_i32(as_i32(a) & as_i32(b)),
        B::I32Or => from_i32(as_i32(a) | as_i32(b)),
        B::I32Xor => from_i32(as_i32(a) ^ as_i32(b)),
        B::I32Shl => from_i32(as_i32(a).wrapping_shl(as_u32(b))),
        B::I32ShrS => from_i32(as_i32(a).wrapping_shr(as_u32(b))),
        B::I32ShrU => from_i32(as_u32(a).wrapping_shr(as_u32(b)) as i32),
        B::I32Rotl => from_i32(as_i32(a).rotate_left(as_u32(b) % 32)),
        B::I32Rotr => from_i32(as_i32(a).rotate_right(as_u32(b) % 32)),
        B::I64Add => from_i64(as_i64(a).wrapping_add(as_i64(b))),
        B::I64Sub => from_i64(as_i64(a).wrapping_sub(as_i64(b))),
        B::I64Mul => from_i64(as_i64(a).wrapping_mul(as_i64(b))),
        B::I64DivS => from_i64(i64_div_s(as_i64(a), as_i64(b))?),
        B::I64DivU => i64_div_u(as_u64(a), as_u64(b))?,
        B::I64RemS => from_i64(i64_rem_s(as_i64(a), as_i64(b))?),
        B::I64RemU => i64_rem_u(as_u64(a), as_u64(b))?,
        B::I64And => from_i64(as_i64(a) & as_i64(b)),
        B::I64Or => from_i64(as_i64(a) | as_i64(b)),
        B::I64Xor => from_i64(as_i64(a) ^ as_i64(b)),
        B::I64Shl => from_i64(as_i64(a).wrapping_shl(as_u64(b) as u32)),
        B::I64ShrS => from_i64(as_i64(a).wrapping_shr(as_u64(b) as u32)),
        B::I64ShrU => from_i64(as_u64(a).wrapping_shr(as_u64(b) as u32) as i64),
        B::I64Rotl => from_i64(as_i64(a).rotate_left((as_u64(b) as u32) % 64)),
        B::I64Rotr => from_i64(as_i64(a).rotate_right((as_u64(b) as u32) % 64)),
        B::F32Add => from_f32(as_f32(a) + as_f32(b)),
        B::F32Sub => from_f32(as_f32(a) - as_f32(b)),
        B::F32Mul => from_f32(as_f32(a) * as_f32(b)),
        B::F32Div => from_f32(as_f32(a) / as_f32(b)),
        B::F32Min => from_f32(wasm_fmin32(as_f32(a), as_f32(b))),
        B::F32Max => from_f32(wasm_fmax32(as_f32(a), as_f32(b))),
        B::F32Copysign => from_f32(as_f32(a).copysign(as_f32(b))),
        B::F64Add => from_f64(as_f64(a) + as_f64(b)),
        B::F64Sub => from_f64(as_f64(a) - as_f64(b)),
        B::F64Mul => from_f64(as_f64(a) * as_f64(b)),
        B::F64Div => from_f64(as_f64(a) / as_f64(b)),
        B::F64Min => from_f64(wasm_fmin64(as_f64(a), as_f64(b))),
        B::F64Max => from_f64(wasm_fmax64(as_f64(a), as_f64(b))),
        B::F64Copysign => from_f64(as_f64(a).copysign(as_f64(b))),
        B::I32Eq => u64::from(as_i32(a) == as_i32(b)),
        B::I32Ne => u64::from(as_i32(a) != as_i32(b)),
        B::I32LtS => u64::from(as_i32(a) < as_i32(b)),
        B::I32LtU => u64::from(as_u32(a) < as_u32(b)),
        B::I32GtS => u64::from(as_i32(a) > as_i32(b)),
        B::I32GtU => u64::from(as_u32(a) > as_u32(b)),
        B::I32LeS => u64::from(as_i32(a) <= as_i32(b)),
        B::I32LeU => u64::from(as_u32(a) <= as_u32(b)),
        B::I32GeS => u64::from(as_i32(a) >= as_i32(b)),
        B::I32GeU => u64::from(as_u32(a) >= as_u32(b)),
        B::I64Eq => u64::from(as_i64(a) == as_i64(b)),
        B::I64Ne => u64::from(as_i64(a) != as_i64(b)),
        B::I64LtS => u64::from(as_i64(a) < as_i64(b)),
        B::I64LtU => u64::from(as_u64(a) < as_u64(b)),
        B::I64GtS => u64::from(as_i64(a) > as_i64(b)),
        B::I64GtU => u64::from(as_u64(a) > as_u64(b)),
        B::I64LeS => u64::from(as_i64(a) <= as_i64(b)),
        B::I64LeU => u64::from(as_u64(a) <= as_u64(b)),
        B::I64GeS => u64::from(as_i64(a) >= as_i64(b)),
        B::I64GeU => u64::from(as_u64(a) >= as_u64(b)),
        B::F32Eq => u64::from(as_f32(a) == as_f32(b)),
        B::F32Ne => u64::from(as_f32(a) != as_f32(b)),
        B::F32Lt => u64::from(as_f32(a) < as_f32(b)),
        B::F32Gt => u64::from(as_f32(a) > as_f32(b)),
        B::F32Le => u64::from(as_f32(a) <= as_f32(b)),
        B::F32Ge => u64::from(as_f32(a) >= as_f32(b)),
        B::F64Eq => u64::from(as_f64(a) == as_f64(b)),
        B::F64Ne => u64::from(as_f64(a) != as_f64(b)),
        B::F64Lt => u64::from(as_f64(a) < as_f64(b)),
        B::F64Gt => u64::from(as_f64(a) > as_f64(b)),
        B::F64Le => u64::from(as_f64(a) <= as_f64(b)),
        B::F64Ge => u64::from(as_f64(a) >= as_f64(b)),
    })
}

/// The width/extension shape of a fused load. Variants mirror the spec's
/// load instruction names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum LoadKind {
    I32,
    I64,
    F32,
    F64,
    I32L8S,
    I32L8U,
    I32L16S,
    I32L16U,
    I64L8S,
    I64L8U,
    I64L16S,
    I64L16U,
    I64L32S,
    I64L32U,
}

/// The width shape of a fused store. Variants mirror the spec's store
/// instruction names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub(crate) enum StoreKind {
    I32,
    I64,
    F32,
    F64,
    I32S8,
    I32S16,
    I64S8,
    I64S16,
    I64S32,
}

/// Performs a fused load at `base + offset` on a raw memory slice (the
/// dispatch loops cache the memory contents locally — see [`run`]).
///
/// # Errors
///
/// Traps with [`Trap::MemoryOutOfBounds`] exactly like the plain opcode.
#[inline]
pub(crate) fn do_load(kind: LoadKind, mem: &[u8], base: i32, offset: u32) -> Result<Slot, Trap> {
    use crate::exec::mem_load as ld;
    Ok(match kind {
        LoadKind::I32 => from_i32(i32::from_le_bytes(ld(mem, base, offset)?)),
        LoadKind::I64 => from_i64(i64::from_le_bytes(ld(mem, base, offset)?)),
        LoadKind::F32 => u64::from(u32::from_le_bytes(ld(mem, base, offset)?)),
        LoadKind::F64 => u64::from_le_bytes(ld(mem, base, offset)?),
        LoadKind::I32L8S => {
            let b: [u8; 1] = ld(mem, base, offset)?;
            from_i32(i32::from(b[0] as i8))
        }
        LoadKind::I32L8U | LoadKind::I64L8U => {
            let b: [u8; 1] = ld(mem, base, offset)?;
            u64::from(b[0])
        }
        LoadKind::I32L16S => from_i32(i32::from(i16::from_le_bytes(ld(mem, base, offset)?))),
        LoadKind::I32L16U | LoadKind::I64L16U => {
            u64::from(u16::from_le_bytes(ld(mem, base, offset)?))
        }
        LoadKind::I64L8S => {
            let b: [u8; 1] = ld(mem, base, offset)?;
            from_i64(i64::from(b[0] as i8))
        }
        LoadKind::I64L16S => from_i64(i64::from(i16::from_le_bytes(ld(mem, base, offset)?))),
        LoadKind::I64L32S => from_i64(i64::from(i32::from_le_bytes(ld(mem, base, offset)?))),
        LoadKind::I64L32U => u64::from(u32::from_le_bytes(ld(mem, base, offset)?)),
    })
}

/// Performs a fused store of raw slot `v` at `base + offset` on a raw
/// memory slice.
///
/// # Errors
///
/// Traps with [`Trap::MemoryOutOfBounds`] exactly like the plain opcode.
#[inline]
pub(crate) fn do_store(
    kind: StoreKind,
    mem: &mut [u8],
    base: i32,
    offset: u32,
    v: Slot,
) -> Result<(), Trap> {
    use crate::exec::mem_store as st;
    match kind {
        StoreKind::I32 | StoreKind::F32 => st(mem, base, offset, &(v as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => st(mem, base, offset, &v.to_le_bytes()),
        StoreKind::I32S8 | StoreKind::I64S8 => st(mem, base, offset, &[(v & 0xff) as u8]),
        StoreKind::I32S16 | StoreKind::I64S16 => st(mem, base, offset, &(v as u16).to_le_bytes()),
        StoreKind::I64S32 => st(mem, base, offset, &(v as u32).to_le_bytes()),
    }
}

/// Performs a check-free load at `base + offset`: the elision pass
/// proved the access in bounds, so there is no trap path (see
/// [`crate::exec::nc_load`]).
#[inline]
pub(crate) fn do_load_nc(kind: LoadKind, mem: &[u8], base: i32, offset: u32) -> Slot {
    use crate::exec::nc_load as ld;
    match kind {
        LoadKind::I32 => from_i32(i32::from_le_bytes(ld(mem, base, offset))),
        LoadKind::I64 => from_i64(i64::from_le_bytes(ld(mem, base, offset))),
        LoadKind::F32 => u64::from(u32::from_le_bytes(ld(mem, base, offset))),
        LoadKind::F64 => u64::from_le_bytes(ld(mem, base, offset)),
        LoadKind::I32L8S => {
            let b: [u8; 1] = ld(mem, base, offset);
            from_i32(i32::from(b[0] as i8))
        }
        LoadKind::I32L8U | LoadKind::I64L8U => {
            let b: [u8; 1] = ld(mem, base, offset);
            u64::from(b[0])
        }
        LoadKind::I32L16S => from_i32(i32::from(i16::from_le_bytes(ld(mem, base, offset)))),
        LoadKind::I32L16U | LoadKind::I64L16U => {
            u64::from(u16::from_le_bytes(ld(mem, base, offset)))
        }
        LoadKind::I64L8S => {
            let b: [u8; 1] = ld(mem, base, offset);
            from_i64(i64::from(b[0] as i8))
        }
        LoadKind::I64L16S => from_i64(i64::from(i16::from_le_bytes(ld(mem, base, offset)))),
        LoadKind::I64L32S => from_i64(i64::from(i32::from_le_bytes(ld(mem, base, offset)))),
        LoadKind::I64L32U => u64::from(u32::from_le_bytes(ld(mem, base, offset))),
    }
}

/// Performs a check-free store of raw slot `v` at `base + offset`.
#[inline]
pub(crate) fn do_store_nc(kind: StoreKind, mem: &mut [u8], base: i32, offset: u32, v: Slot) {
    use crate::exec::nc_store as st;
    match kind {
        StoreKind::I32 | StoreKind::F32 => st(mem, base, offset, &(v as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => st(mem, base, offset, &v.to_le_bytes()),
        StoreKind::I32S8 | StoreKind::I64S8 => st(mem, base, offset, &[(v & 0xff) as u8]),
        StoreKind::I32S16 | StoreKind::I64S16 => st(mem, base, offset, &(v as u16).to_le_bytes()),
        StoreKind::I64S32 => st(mem, base, offset, &(v as u32).to_le_bytes()),
    }
}

/// One `br_table` arm: absolute target plus the stack fix-up immediates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BrEntry {
    pub(crate) target: u32,
    pub(crate) keep: u32,
    pub(crate) height: u32,
}

/// A pre-resolved flat opcode.
///
/// Control flow is expressed purely as absolute jumps; `keep`/`height` on
/// the `Br*` forms encode the operand-stack fix-up a structured branch
/// performs (keep the top `keep` values, reset to operand height `height`).
#[derive(Debug, Clone)]
#[allow(missing_docs)] // Numeric variants mirror the spec's instruction names 1:1.
pub(crate) enum FlatOp {
    Unreachable,
    /// Unconditional jump, no stack fix-up needed.
    Jump {
        target: u32,
    },
    /// Pops an i32, jumps if zero (lowered `if`).
    JumpIfZero {
        target: u32,
    },
    /// Pops an i32, jumps if non-zero (lowered `br_if` needing no fix-up).
    JumpIfNonZero {
        target: u32,
    },
    /// Unconditional branch with stack fix-up (lowered `br`).
    Br {
        target: u32,
        keep: u32,
        height: u32,
    },
    /// Conditional branch with stack fix-up (lowered `br_if`).
    BrIf {
        target: u32,
        keep: u32,
        height: u32,
    },
    /// Indexed branch; the last entry is the default arm.
    BrTable {
        entries: Box<[BrEntry]>,
    },
    Return,
    /// Call of a function defined in this module.
    CallLocal {
        func: u32,
    },
    /// Call of an imported (host) function.
    CallImport {
        func: u32,
    },
    CallIndirect {
        type_idx: u32,
    },

    Drop,
    Select,

    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),

    I32Load(u32),
    I64Load(u32),
    F32Load(u32),
    F64Load(u32),
    I32Load8S(u32),
    I32Load8U(u32),
    I32Load16S(u32),
    I32Load16U(u32),
    I64Load8S(u32),
    I64Load8U(u32),
    I64Load16S(u32),
    I64Load16U(u32),
    I64Load32S(u32),
    I64Load32U(u32),

    I32Store(u32),
    I64Store(u32),
    F32Store(u32),
    F64Store(u32),
    I32Store8(u32),
    I32Store16(u32),
    I64Store8(u32),
    I64Store16(u32),
    I64Store32(u32),

    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,

    /// All four constant forms, pre-encoded as a raw slot.
    Const(u64),

    /// Fused `local.get a; local.get b; binop`: pushes `op(local[a], local[b])`.
    FusedBinopLL {
        a: u32,
        b: u32,
        op: BinOpKind,
    },
    /// Fused `local.get a; const k; binop`: pushes `op(local[a], k)`.
    FusedBinopLK {
        a: u32,
        k: u64,
        op: BinOpKind,
    },
    /// Fused `local.get a; local.get b; binop; local.set dst`.
    FusedBinopLLSet {
        a: u32,
        b: u32,
        op: BinOpKind,
        dst: u32,
    },
    /// Fused `local.get a; const k; binop; local.set dst`. The constant is
    /// stored as a zero-extended `u32` to keep `FlatOp` at 16 bytes; the
    /// fusion pass only emits this form when the slot fits.
    FusedBinopLKSet {
        a: u32,
        k: u32,
        op: BinOpKind,
        dst: u32,
    },
    /// Fused `local.get b; binop` with the **left** operand already on the
    /// stack: rewrites the top of stack to `op(top, local[b])` (the
    /// `i*n + j` index shape).
    FusedBinopSL {
        b: u32,
        op: BinOpKind,
    },
    /// [`FlatOp::FusedBinopSL`] followed by `local.set dst`.
    FusedBinopSLSet {
        b: u32,
        op: BinOpKind,
        dst: u32,
    },
    /// [`FlatOp::FusedBinopSL`] followed by a store (address beneath the
    /// left operand on the stack).
    FusedBinopSLStore {
        b: u32,
        op: BinOpKind,
        offset: u32,
        kind: StoreKind,
    },
    /// Fused `local.get a; local.get b; binop; store`: computes
    /// `op(local[a], local[b])` and stores it at the address popped from
    /// the stack.
    FusedBinopLLStore {
        a: u32,
        b: u32,
        op: BinOpKind,
        offset: u32,
        kind: StoreKind,
    },
    /// Fused `binop; local.set dst`: operands popped from the stack, the
    /// result sunk straight into a frame slot.
    FusedBinopSet {
        op: BinOpKind,
        dst: u32,
    },
    /// Fused `local.get src; local.set dst`: a frame-slot copy with no
    /// operand-stack traffic.
    LocalCopy {
        src: u32,
        dst: u32,
    },
    /// Fused `local.get addr; load`: loads from `local[addr] + offset`.
    FusedLoadL {
        addr: u32,
        offset: u32,
        kind: LoadKind,
    },
    /// Fused `local.get val; store`: stores `local[val]` at the address
    /// popped from the stack (plus `offset`).
    FusedStoreL {
        val: u32,
        offset: u32,
        kind: StoreKind,
    },
    /// Fused `i32.add; load`: pops two i32 address parts, loads from their
    /// wrapping sum plus `offset` (the dominant array-indexing shape).
    FusedAddLoad {
        offset: u32,
        kind: LoadKind,
    },
    /// Fused `const k; binop`: pops one operand, pushes `op(a, k)` (the
    /// index-scaling / increment shape where the left operand is already
    /// on the stack).
    FusedBinopKS {
        k: u64,
        op: BinOpKind,
    },
    /// Fused `const k; i32.mul; i32.add`: pops an index, rewrites the base
    /// beneath it to `base + idx*k` — the element-scaling tail of every
    /// array address (`k` kept as a fitting u32).
    FusedScaleAdd {
        k: u32,
    },
    /// [`FlatOp::FusedScaleAdd`] plus the trailing load: pops an index,
    /// rewrites the base to `mem[base + idx*k + offset]`.
    FusedScaleAddLoad {
        k: u32,
        offset: u32,
        kind: LoadKind,
    },
    /// Fused `local.get z; i32.add; const k; i32.mul; i32.add`: pops a
    /// partial index, rewrites the base beneath it to
    /// `base + (partial + local[z])*k` — the 2-D row-column address tail.
    FusedIdxLAdd {
        z: u32,
        k: u32,
    },
    /// [`FlatOp::FusedIdxLAdd`] plus the trailing load.
    FusedIdxLAddLoad {
        z: u32,
        k: u32,
        offset: u32,
        kind: LoadKind,
    },
    /// Fused `binop; store`: computes `op(a, b)` from the stack and stores
    /// it at the address popped beneath (plus `offset`).
    FusedBinopStore {
        op: BinOpKind,
        offset: u32,
        kind: StoreKind,
    },
    /// Fused `binop; jump-if-zero` (also absorbs `binop; i32.eqz;
    /// jump-if-non-zero`): jumps when the result is zero.
    FusedCmpBrZ {
        op: BinOpKind,
        target: u32,
    },
    /// Fused `binop; jump-if-non-zero` (also absorbs `binop; i32.eqz;
    /// jump-if-zero`): jumps when the result is non-zero.
    FusedCmpBrNZ {
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrZ`] with both operands from frame slots — the
    /// `local.get i; local.get n; relop; i32.eqz; br_if` loop-exit shape,
    /// five dispatches collapsed into one.
    FusedCmpBrLLZ {
        a: u32,
        b: u32,
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrNZ`] with both operands from frame slots.
    FusedCmpBrLLNZ {
        a: u32,
        b: u32,
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrZ`] with a frame slot and an inline constant
    /// (zero-extended `u32`, like [`FlatOp::FusedBinopLKSet`]).
    FusedCmpBrLKZ {
        a: u32,
        k: u32,
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrNZ`] with a frame slot and an inline constant.
    FusedCmpBrLKNZ {
        a: u32,
        k: u32,
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrZ`] with the left operand on the stack and the
    /// right from a frame slot.
    FusedCmpBrSLZ {
        b: u32,
        op: BinOpKind,
        target: u32,
    },
    /// [`FlatOp::FusedCmpBrNZ`] with the left operand on the stack and the
    /// right from a frame slot.
    FusedCmpBrSLNZ {
        b: u32,
        op: BinOpKind,
        target: u32,
    },

    I32Eqz,
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I64Eqz,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,

    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,

    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,

    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,

    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,

    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,

    /// A plain load whose address the range analysis proved in bounds:
    /// same stack effect as the checked form, no trap path. Only the
    /// elision pass emits this, and the verifier re-derives the proof
    /// ([`crate::verify::VerifyError::UnprovenCheckFree`]).
    LoadNC {
        kind: LoadKind,
        offset: u32,
    },
    /// A plain store whose address the range analysis proved in bounds.
    StoreNC {
        kind: StoreKind,
        offset: u32,
    },
}

/// Per-kind counts of superinstructions emitted by the fusion pass over a
/// whole module, reported by
/// [`Instance::fusion_stats`](crate::exec::Instance::fusion_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `local.get; local.get; binop` windows fused.
    pub binop_ll: u64,
    /// `local.get; const; binop` windows fused.
    pub binop_lk: u64,
    /// `local.get; local.get; binop; local.set` windows fused.
    pub binop_ll_set: u64,
    /// `local.get; const; binop; local.set` windows fused.
    pub binop_lk_set: u64,
    /// `binop; local.set` sinks fused (operands from the stack).
    pub binop_set: u64,
    /// `local.get; local.set` frame-slot copies fused.
    pub local_copy: u64,
    /// `local.get; load` windows fused.
    pub load_l: u64,
    /// `local.get; store` windows fused.
    pub store_l: u64,
    /// `i32.add; load` address-computation windows fused.
    pub add_load: u64,
    /// `const; binop` windows fused (left operand on the stack).
    pub binop_ks: u64,
    /// `local.get; binop` windows fused (left operand on the stack).
    pub binop_sl: u64,
    /// `local.get; binop; local.set` windows fused (left operand on the
    /// stack).
    pub binop_sl_set: u64,
    /// `binop; store` sinks fused (any operand source).
    pub binop_store: u64,
    /// Array-address tails fused without a trailing load
    /// (`const; i32.mul; i32.add`, with or without the row `local.get;
    /// i32.add` prefix).
    pub idx_addr: u64,
    /// Array-address tails fused **with** the trailing load.
    pub idx_load: u64,
    /// Compare-and-branch windows fused (all operand sources, both
    /// polarities, `i32.eqz` inversions absorbed).
    pub cmp_br: u64,
    /// Bare `i32.eqz; jump-if` pairs rewritten into the inverted jump.
    pub eqz_br: u64,
}

impl FusionStats {
    /// Total superinstructions emitted across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts().iter().map(|(_, n)| n).sum()
    }

    /// Per-kind `(name, count)` pairs, for coverage assertions and logs.
    #[must_use]
    pub fn counts(&self) -> [(&'static str, u64); 17] {
        [
            ("binop_ll", self.binop_ll),
            ("binop_lk", self.binop_lk),
            ("binop_ll_set", self.binop_ll_set),
            ("binop_lk_set", self.binop_lk_set),
            ("binop_set", self.binop_set),
            ("local_copy", self.local_copy),
            ("load_l", self.load_l),
            ("store_l", self.store_l),
            ("add_load", self.add_load),
            ("binop_ks", self.binop_ks),
            ("binop_sl", self.binop_sl),
            ("binop_sl_set", self.binop_sl_set),
            ("binop_store", self.binop_store),
            ("idx_addr", self.idx_addr),
            ("idx_load", self.idx_load),
            ("cmp_br", self.cmp_br),
            ("eqz_br", self.eqz_br),
        ]
    }

    /// Accumulates another module's counts into this one.
    pub fn merge(&mut self, other: &FusionStats) {
        self.binop_ll += other.binop_ll;
        self.binop_lk += other.binop_lk;
        self.binop_ll_set += other.binop_ll_set;
        self.binop_lk_set += other.binop_lk_set;
        self.binop_set += other.binop_set;
        self.local_copy += other.local_copy;
        self.load_l += other.load_l;
        self.store_l += other.store_l;
        self.add_load += other.add_load;
        self.binop_ks += other.binop_ks;
        self.binop_sl += other.binop_sl;
        self.binop_sl_set += other.binop_sl_set;
        self.binop_store += other.binop_store;
        self.idx_addr += other.idx_addr;
        self.idx_load += other.idx_load;
        self.cmp_br += other.cmp_br;
        self.eqz_br += other.eqz_br;
    }
}

/// True when the `WATZ_NO_FUSE` environment switch (any non-empty value
/// other than `0`) disables the fusion pass, keeping the unfused flat
/// engine reachable for bisection.
pub(crate) fn fusion_disabled_by_env() -> bool {
    std::env::var_os("WATZ_NO_FUSE").is_some_and(|v| !v.is_empty() && v.to_str() != Some("0"))
}

/// Maps a plain flat opcode to its fusable binary-operator kind.
#[allow(clippy::too_many_lines)]
pub(crate) fn binop_kind(op: &FlatOp) -> Option<BinOpKind> {
    use BinOpKind as B;
    use FlatOp as F;
    Some(match op {
        F::I32Add => B::I32Add,
        F::I32Sub => B::I32Sub,
        F::I32Mul => B::I32Mul,
        F::I32DivS => B::I32DivS,
        F::I32DivU => B::I32DivU,
        F::I32RemS => B::I32RemS,
        F::I32RemU => B::I32RemU,
        F::I32And => B::I32And,
        F::I32Or => B::I32Or,
        F::I32Xor => B::I32Xor,
        F::I32Shl => B::I32Shl,
        F::I32ShrS => B::I32ShrS,
        F::I32ShrU => B::I32ShrU,
        F::I32Rotl => B::I32Rotl,
        F::I32Rotr => B::I32Rotr,
        F::I64Add => B::I64Add,
        F::I64Sub => B::I64Sub,
        F::I64Mul => B::I64Mul,
        F::I64DivS => B::I64DivS,
        F::I64DivU => B::I64DivU,
        F::I64RemS => B::I64RemS,
        F::I64RemU => B::I64RemU,
        F::I64And => B::I64And,
        F::I64Or => B::I64Or,
        F::I64Xor => B::I64Xor,
        F::I64Shl => B::I64Shl,
        F::I64ShrS => B::I64ShrS,
        F::I64ShrU => B::I64ShrU,
        F::I64Rotl => B::I64Rotl,
        F::I64Rotr => B::I64Rotr,
        F::F32Add => B::F32Add,
        F::F32Sub => B::F32Sub,
        F::F32Mul => B::F32Mul,
        F::F32Div => B::F32Div,
        F::F32Min => B::F32Min,
        F::F32Max => B::F32Max,
        F::F32Copysign => B::F32Copysign,
        F::F64Add => B::F64Add,
        F::F64Sub => B::F64Sub,
        F::F64Mul => B::F64Mul,
        F::F64Div => B::F64Div,
        F::F64Min => B::F64Min,
        F::F64Max => B::F64Max,
        F::F64Copysign => B::F64Copysign,
        F::I32Eq => B::I32Eq,
        F::I32Ne => B::I32Ne,
        F::I32LtS => B::I32LtS,
        F::I32LtU => B::I32LtU,
        F::I32GtS => B::I32GtS,
        F::I32GtU => B::I32GtU,
        F::I32LeS => B::I32LeS,
        F::I32LeU => B::I32LeU,
        F::I32GeS => B::I32GeS,
        F::I32GeU => B::I32GeU,
        F::I64Eq => B::I64Eq,
        F::I64Ne => B::I64Ne,
        F::I64LtS => B::I64LtS,
        F::I64LtU => B::I64LtU,
        F::I64GtS => B::I64GtS,
        F::I64GtU => B::I64GtU,
        F::I64LeS => B::I64LeS,
        F::I64LeU => B::I64LeU,
        F::I64GeS => B::I64GeS,
        F::I64GeU => B::I64GeU,
        F::F32Eq => B::F32Eq,
        F::F32Ne => B::F32Ne,
        F::F32Lt => B::F32Lt,
        F::F32Gt => B::F32Gt,
        F::F32Le => B::F32Le,
        F::F32Ge => B::F32Ge,
        F::F64Eq => B::F64Eq,
        F::F64Ne => B::F64Ne,
        F::F64Lt => B::F64Lt,
        F::F64Gt => B::F64Gt,
        F::F64Le => B::F64Le,
        F::F64Ge => B::F64Ge,
        _ => return None,
    })
}

/// Maps a plain load opcode to its fused `(kind, offset)` pair.
pub(crate) fn load_kind(op: &FlatOp) -> Option<(LoadKind, u32)> {
    use FlatOp as F;
    Some(match op {
        F::I32Load(o) => (LoadKind::I32, *o),
        F::I64Load(o) => (LoadKind::I64, *o),
        F::F32Load(o) => (LoadKind::F32, *o),
        F::F64Load(o) => (LoadKind::F64, *o),
        F::I32Load8S(o) => (LoadKind::I32L8S, *o),
        F::I32Load8U(o) => (LoadKind::I32L8U, *o),
        F::I32Load16S(o) => (LoadKind::I32L16S, *o),
        F::I32Load16U(o) => (LoadKind::I32L16U, *o),
        F::I64Load8S(o) => (LoadKind::I64L8S, *o),
        F::I64Load8U(o) => (LoadKind::I64L8U, *o),
        F::I64Load16S(o) => (LoadKind::I64L16S, *o),
        F::I64Load16U(o) => (LoadKind::I64L16U, *o),
        F::I64Load32S(o) => (LoadKind::I64L32S, *o),
        F::I64Load32U(o) => (LoadKind::I64L32U, *o),
        _ => return None,
    })
}

/// Maps a plain store opcode to its fused `(kind, offset)` pair.
pub(crate) fn store_kind(op: &FlatOp) -> Option<(StoreKind, u32)> {
    use FlatOp as F;
    Some(match op {
        F::I32Store(o) => (StoreKind::I32, *o),
        F::I64Store(o) => (StoreKind::I64, *o),
        F::F32Store(o) => (StoreKind::F32, *o),
        F::F64Store(o) => (StoreKind::F64, *o),
        F::I32Store8(o) => (StoreKind::I32S8, *o),
        F::I32Store16(o) => (StoreKind::I32S16, *o),
        F::I64Store8(o) => (StoreKind::I64S8, *o),
        F::I64Store16(o) => (StoreKind::I64S16, *o),
        F::I64Store32(o) => (StoreKind::I64S32, *o),
        _ => return None,
    })
}

/// An imported function, with its signature pre-split for slot/Value
/// conversion at the host boundary.
#[derive(Debug)]
pub(crate) struct FlatImport {
    pub(crate) module: String,
    pub(crate) name: String,
    pub(crate) params: Box<[ValType]>,
    /// Declared result count, enforced at the host boundary.
    pub(crate) n_results: usize,
}

/// A lowered local function.
#[derive(Debug)]
pub(crate) struct FlatFunc {
    pub(crate) n_params: u32,
    /// Params + declared locals.
    pub(crate) n_locals: u32,
    pub(crate) n_results: u32,
    pub(crate) result_types: Box<[ValType]>,
    pub(crate) code: Box<[FlatOp]>,
    /// Retirement metadata, 1:1 with `code` (built at lowering; read
    /// only by the counting dispatch loop and the register pass).
    pub(crate) prof: Box<[ProfOp]>,
}

/// One entry in the function index space.
#[derive(Debug)]
pub(crate) enum FlatFuncDef {
    Import(FlatImport),
    Local(FlatFunc),
}

/// A module lowered to flat code, ready for [`run`] (or, when the
/// register pass ran, for [`crate::reg::run`]).
#[derive(Debug)]
pub(crate) struct FlatModule {
    pub(crate) funcs: Vec<FlatFuncDef>,
    pub(crate) func_type_idx: Box<[u32]>,
    pub(crate) global_types: Box<[ValType]>,
    pub(crate) fusion: FusionStats,
    /// Register-form code (one per local function), present when the
    /// register-allocation pass ran and succeeded for every function.
    pub(crate) reg: Option<crate::reg::RegProgram>,
    /// The memory's minimum size in bytes — the floor every in-bounds
    /// proof is anchored to (linear memory never shrinks).
    pub(crate) min_mem: u64,
    /// Range-analysis and bounds-check-elision counters.
    pub(crate) analysis: crate::analysis::RangeStats,
}

impl FlatModule {
    /// Lowers every function body of a validated module; `fuse` controls
    /// the superinstruction peephole pass, `reg` the register-allocation
    /// pass on top of it, and `elide` the bounds-check elision rewrite.
    /// Elision runs strictly after the register pass (which consumes the
    /// original checked bodies), then rewrites the flat and register forms
    /// independently.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Instantiation`] when the module is malformed (a
    /// truncated/unbalanced body, out-of-range indices) — lowering never
    /// panics, even on input that skipped validation.
    pub(crate) fn compile_full(
        module: &Module,
        fuse: bool,
        reg: bool,
        elide: bool,
    ) -> Result<FlatModule, Trap> {
        let mut funcs = Vec::with_capacity(module.func_count());
        let mut func_type_idx = Vec::with_capacity(module.func_count());
        let mut reg_funcs: Vec<Option<crate::reg::RegFunc>> =
            Vec::with_capacity(module.func_count());
        for imp in &module.func_imports {
            let ty = module
                .types
                .get(imp.type_idx as usize)
                .ok_or_else(|| bad("import type index out of range"))?;
            funcs.push(FlatFuncDef::Import(FlatImport {
                module: imp.module.clone(),
                name: imp.name.clone(),
                params: ty.params.clone().into_boxed_slice(),
                n_results: ty.results.len(),
            }));
            func_type_idx.push(imp.type_idx);
            reg_funcs.push(None);
        }
        let mut fusion = FusionStats::default();
        let mut reg_stats = crate::reg::RegStats::default();
        // The register pass is all-or-nothing per module (the two frame
        // layouts cannot call each other): if any function cannot be
        // register-lowered (e.g. a frame too large for the u16 slot
        // encoding), the whole module stays on the stack-form engine.
        let mut reg_ok = reg;
        for body in &module.funcs {
            let (func, heights) = lower(module, body, fuse, &mut fusion)?;
            if reg_ok {
                match crate::reg::lower_func(&func, &heights, module, &mut reg_stats) {
                    Ok(rf) => reg_funcs.push(Some(rf)),
                    Err(_) => reg_ok = false,
                }
            }
            funcs.push(FlatFuncDef::Local(func));
            func_type_idx.push(body.type_idx);
        }
        let global_types = module
            .globals
            .iter()
            .map(|g| g.ty.val_type)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let mut reg = if reg_ok {
            Some(crate::reg::RegProgram {
                funcs: reg_funcs.into_boxed_slice(),
                stats: reg_stats,
            })
        } else {
            None
        };
        let min_mem = module
            .memories
            .first()
            .map_or(0, |l| u64::from(l.min) * crate::PAGE_SIZE as u64);
        // Bounds-check elision, strictly after the register pass: the
        // register lowering consumes the original checked flat bodies,
        // then each form is analyzed and rewritten independently. The
        // entry heights come from the verifier's own walk so elision and
        // verification always agree on reachability.
        let mut analysis = crate::analysis::RangeStats::default();
        for i in 0..funcs.len() {
            let proofs = {
                let ctx = crate::verify::ModuleCtx {
                    funcs: &funcs,
                    types: &module.types,
                    global_types: &global_types,
                    min_mem,
                };
                let FlatFuncDef::Local(f) = &funcs[i] else {
                    continue;
                };
                let heights = crate::verify::flat_entry_heights(f, &ctx, i as u32)
                    .map_err(|e| bad(&format!("IR self-check failed: {e}")))?;
                crate::analysis::flat_proofs(f, &heights, &ctx)
            };
            if let FlatFuncDef::Local(f) = &mut funcs[i] {
                crate::analysis::apply_flat_elision(f, &proofs, elide, &mut analysis);
            }
        }
        if let Some(prog) = &mut reg {
            for rf in prog.funcs.iter_mut().flatten() {
                crate::analysis::elide_reg(rf, min_mem, elide, &mut analysis);
            }
        }
        Ok(FlatModule {
            funcs,
            func_type_idx: func_type_idx.into_boxed_slice(),
            global_types,
            fusion,
            reg,
            min_mem,
            analysis,
        })
    }

    /// Superinstruction counts emitted while lowering this module.
    pub(crate) fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// Register-allocation counts, when the register pass ran.
    pub(crate) fn reg_stats(&self) -> Option<crate::reg::RegStats> {
        self.reg.as_ref().map(|p| p.stats)
    }
}

/// The error malformed (unvalidated) input raises during lowering.
pub(crate) fn bad(msg: &str) -> Trap {
    Trap::Instantiation(format!("flat lowering: {msg}"))
}

/// A control frame tracked during lowering (compile time only).
struct Ctrl {
    is_loop: bool,
    /// Operand height just below the label's params.
    label_height: usize,
    params: usize,
    results: usize,
    /// Values a branch to this label transfers (params for loops).
    branch_arity: usize,
    /// Branch target for loops (known immediately).
    loop_target: u32,
    /// Ops whose target is this frame's end: `(op index, br_table slot)`;
    /// slot is `u32::MAX` for non-table ops.
    patches: Vec<(u32, u32)>,
    /// The `JumpIfZero` of an `if`, waiting for its else/end position.
    else_patch: Option<u32>,
    /// The remainder of this frame is statically unreachable.
    unreachable: bool,
}

fn block_arities(module: &Module, bt: BlockType) -> Result<(usize, usize), Trap> {
    Ok(match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(idx) => {
            let ty = module
                .types
                .get(idx as usize)
                .ok_or_else(|| bad("block type index out of range"))?;
            (ty.params.len(), ty.results.len())
        }
    })
}

fn set_target(op: &mut FlatOp, slot: u32, target: u32) {
    match op {
        FlatOp::Jump { target: t }
        | FlatOp::JumpIfZero { target: t }
        | FlatOp::JumpIfNonZero { target: t }
        | FlatOp::Br { target: t, .. }
        | FlatOp::BrIf { target: t, .. } => *t = target,
        FlatOp::BrTable { entries } => entries[slot as usize].target = target,
        _ => unreachable!("patched op is a branch"),
    }
}

/// Lowers one function body to flat code (then fuses it, when enabled).
///
/// Returns the lowered function plus the operand-stack **entry height** of
/// every emitted op (the height before the op pops anything), which the
/// register pass consumes to place each value in a fixed frame slot.
///
/// # Errors
///
/// Returns [`Trap::Instantiation`] for malformed bodies — truncated code
/// (unbalanced control), out-of-range type/function/branch indices, or
/// operand-stack underflow. A module that passed [`crate::validate`] never
/// hits these, but lowering must not panic the host either way.
#[allow(clippy::too_many_lines)]
pub(crate) fn lower(
    module: &Module,
    body: &FuncBody,
    fuse: bool,
    fusion: &mut FusionStats,
) -> Result<(FlatFunc, Vec<u32>), Trap> {
    let ty = module
        .types
        .get(body.type_idx as usize)
        .ok_or_else(|| bad("function type index out of range"))?;
    let n_params = ty.params.len();
    let n_results = ty.results.len();
    let n_imports = module.func_imports.len() as u32;

    let mut ops: Vec<FlatOp> = Vec::with_capacity(body.code.len());
    // Operand-stack entry height of each op in `ops`, kept 1:1.
    let mut heights: Vec<u32> = Vec::with_capacity(body.code.len());
    // Retirement metadata of each op in `ops`, kept 1:1 (synthetic ops
    // that replace erased structure — the else-jump, the function-final
    // return — weigh 0 so instret matches the tree oracle exactly).
    let mut prof: Vec<ProfOp> = Vec::with_capacity(body.code.len());
    let mut ctrl: Vec<Ctrl> = vec![Ctrl {
        is_loop: false,
        label_height: 0,
        params: 0,
        results: n_results,
        branch_arity: n_results,
        loop_target: 0,
        patches: Vec::new(),
        else_patch: None,
        unreachable: false,
    }];
    let mut height: usize = 0;
    // Nesting depth of skipped (statically unreachable) blocks.
    let mut skip: usize = 0;

    // Emits the branch for a `br`/`br_if` to relative depth `d`; returns
    // nothing, registers patches on the target frame as needed.
    macro_rules! emit_branch {
        ($d:expr, $conditional:expr) => {{
            let idx = (ctrl.len() - 1)
                .checked_sub($d as usize)
                .ok_or_else(|| bad("branch depth exceeds control stack"))?;
            let keep = ctrl[idx].branch_arity;
            let lh = ctrl[idx].label_height;
            if height < keep + lh {
                return Err(bad("operand stack underflow at branch"));
            }
            let no_adjust = height - keep == lh;
            let op = match (ctrl[idx].is_loop, $conditional, no_adjust) {
                (true, false, true) => FlatOp::Jump {
                    target: ctrl[idx].loop_target,
                },
                (true, true, true) => FlatOp::JumpIfNonZero {
                    target: ctrl[idx].loop_target,
                },
                (true, false, false) => FlatOp::Br {
                    target: ctrl[idx].loop_target,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (true, true, false) => FlatOp::BrIf {
                    target: ctrl[idx].loop_target,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (false, false, true) => FlatOp::Jump { target: 0 },
                (false, true, true) => FlatOp::JumpIfNonZero { target: 0 },
                (false, false, false) => FlatOp::Br {
                    target: 0,
                    keep: keep as u32,
                    height: lh as u32,
                },
                (false, true, false) => FlatOp::BrIf {
                    target: 0,
                    keep: keep as u32,
                    height: lh as u32,
                },
            };
            if !ctrl[idx].is_loop {
                ctrl[idx].patches.push((ops.len() as u32, u32::MAX));
            }
            // Entry height includes the already-popped condition.
            heights.push((height + usize::from($conditional)) as u32);
            prof.push(ProfOp::of(OpClass::Control, 1));
            ops.push(op);
        }};
    }

    // Closes the innermost control frame at an `End`. When the function
    // frame itself closes, the terminating `Return` is emitted so branches
    // to the function label land on it.
    macro_rules! close_frame {
        () => {{
            let frame = ctrl.pop().ok_or_else(|| bad("unbalanced end"))?;
            let end_pos = ops.len() as u32;
            if let Some(ep) = frame.else_patch {
                // `if` without `else`: the false path jumps straight here
                // (validation guarantees params == results in that case).
                set_target(&mut ops[ep as usize], u32::MAX, end_pos);
            }
            for (op_idx, slot) in frame.patches {
                set_target(&mut ops[op_idx as usize], slot, end_pos);
            }
            height = frame.label_height + frame.results;
            if ctrl.is_empty() {
                heights.push(height as u32);
                // The tree oracle falls off the body without dispatching
                // an opcode here, so the synthetic return retires nothing.
                prof.push(ProfOp::zero());
                ops.push(FlatOp::Return);
            }
        }};
    }

    for instr in &body.code {
        // Every frame closed but instructions remain: the body is not the
        // single well-bracketed expression the format requires.
        let Some(top) = ctrl.last() else {
            return Err(bad("instructions after the function's final end"));
        };
        // Inside statically unreachable code nothing is emitted; only the
        // block structure is tracked so the matching else/end is found.
        if top.unreachable {
            match instr {
                i if i.opens_block() => skip += 1,
                Instr::Else if skip == 0 => {
                    let frame = ctrl.last_mut().ok_or_else(|| bad("else outside a frame"))?;
                    let ep = frame
                        .else_patch
                        .take()
                        .ok_or_else(|| bad("else without matching if"))?;
                    frame.unreachable = false;
                    height = frame.label_height + frame.params;
                    let pos = ops.len() as u32;
                    set_target(&mut ops[ep as usize], u32::MAX, pos);
                }
                Instr::End => {
                    if skip > 0 {
                        skip -= 1;
                    } else {
                        close_frame!();
                    }
                }
                _ => {}
            }
            continue;
        }

        // Operand-stack underflow guard shared by the arms below.
        macro_rules! sub_height {
            ($n:expr) => {
                height
                    .checked_sub($n)
                    .ok_or_else(|| bad("operand stack underflow"))?
            };
        }

        match instr {
            Instr::Nop => {}
            Instr::Unreachable => {
                heights.push(height as u32);
                prof.push(ProfOp::of(OpClass::Control, 1));
                ops.push(FlatOp::Unreachable);
                ctrl.last_mut()
                    .ok_or_else(|| bad("empty control"))?
                    .unreachable = true;
            }
            Instr::Block(bt) => {
                let (params, results) = block_arities(module, *bt)?;
                ctrl.push(Ctrl {
                    is_loop: false,
                    label_height: sub_height!(params),
                    params,
                    results,
                    branch_arity: results,
                    loop_target: 0,
                    patches: Vec::new(),
                    else_patch: None,
                    unreachable: false,
                });
            }
            Instr::Loop(bt) => {
                let (params, results) = block_arities(module, *bt)?;
                ctrl.push(Ctrl {
                    is_loop: true,
                    label_height: sub_height!(params),
                    params,
                    results,
                    branch_arity: params,
                    loop_target: ops.len() as u32,
                    patches: Vec::new(),
                    else_patch: None,
                    unreachable: false,
                });
            }
            Instr::If(bt) => {
                height = sub_height!(1); // condition
                let (params, results) = block_arities(module, *bt)?;
                let ep = ops.len() as u32;
                heights.push((height + 1) as u32);
                prof.push(ProfOp::of(OpClass::Control, 1));
                ops.push(FlatOp::JumpIfZero { target: 0 });
                ctrl.push(Ctrl {
                    is_loop: false,
                    label_height: sub_height!(params),
                    params,
                    results,
                    branch_arity: results,
                    loop_target: 0,
                    patches: Vec::new(),
                    else_patch: Some(ep),
                    unreachable: false,
                });
            }
            Instr::Else => {
                // Reachable then-branch falls through: jump over the else.
                let jmp = ops.len() as u32;
                heights.push(height as u32);
                // The tree oracle's `else` dispatch weighs 0 (shape only).
                prof.push(ProfOp::zero());
                ops.push(FlatOp::Jump { target: 0 });
                let frame = ctrl.last_mut().ok_or_else(|| bad("else outside a frame"))?;
                frame.patches.push((jmp, u32::MAX));
                let ep = frame
                    .else_patch
                    .take()
                    .ok_or_else(|| bad("else without matching if"))?;
                height = frame.label_height + frame.params;
                let pos = ops.len() as u32;
                set_target(&mut ops[ep as usize], u32::MAX, pos);
            }
            Instr::End => close_frame!(),
            Instr::Br(d) => {
                emit_branch!(*d, false);
                ctrl.last_mut()
                    .ok_or_else(|| bad("empty control"))?
                    .unreachable = true;
            }
            Instr::BrIf(d) => {
                height = sub_height!(1); // condition
                emit_branch!(*d, true);
            }
            Instr::BrTable { targets, default } => {
                height = sub_height!(1); // index
                let op_idx = ops.len() as u32;
                let mut entries = Vec::with_capacity(targets.len() + 1);
                let mut pending: Vec<(usize, u32)> = Vec::new();
                for (slot, d) in targets.iter().chain(std::iter::once(default)).enumerate() {
                    let idx = (ctrl.len() - 1)
                        .checked_sub(*d as usize)
                        .ok_or_else(|| bad("br_table depth exceeds control stack"))?;
                    let keep = ctrl[idx].branch_arity as u32;
                    let h = ctrl[idx].label_height as u32;
                    if ctrl[idx].is_loop {
                        entries.push(BrEntry {
                            target: ctrl[idx].loop_target,
                            keep,
                            height: h,
                        });
                    } else {
                        entries.push(BrEntry {
                            target: 0,
                            keep,
                            height: h,
                        });
                        pending.push((idx, slot as u32));
                    }
                }
                for (frame_idx, slot) in pending {
                    ctrl[frame_idx].patches.push((op_idx, slot));
                }
                heights.push((height + 1) as u32); // entry includes the index
                prof.push(ProfOp::of(OpClass::Control, 1));
                ops.push(FlatOp::BrTable {
                    entries: entries.into_boxed_slice(),
                });
                ctrl.last_mut()
                    .ok_or_else(|| bad("empty control"))?
                    .unreachable = true;
            }
            Instr::Return => {
                heights.push(height as u32);
                prof.push(ProfOp::of(OpClass::Control, 1));
                ops.push(FlatOp::Return);
                ctrl.last_mut()
                    .ok_or_else(|| bad("empty control"))?
                    .unreachable = true;
            }
            Instr::Call(f) => {
                let ty_idx = module
                    .func_type_idx(*f)
                    .ok_or_else(|| bad("call target out of range"))?;
                let fty = module
                    .types
                    .get(ty_idx as usize)
                    .ok_or_else(|| bad("call type index out of range"))?;
                heights.push(height as u32);
                prof.push(ProfOp::of(OpClass::Call, 1));
                height = sub_height!(fty.params.len()) + fty.results.len();
                if *f < n_imports {
                    ops.push(FlatOp::CallImport { func: *f });
                } else {
                    ops.push(FlatOp::CallLocal { func: *f });
                }
            }
            Instr::CallIndirect { type_idx, .. } => {
                let fty = module
                    .types
                    .get(*type_idx as usize)
                    .ok_or_else(|| bad("call_indirect type index out of range"))?;
                heights.push(height as u32);
                prof.push(ProfOp::of(OpClass::Call, 1));
                height = sub_height!(1 + fty.params.len()) + fty.results.len();
                ops.push(FlatOp::CallIndirect {
                    type_idx: *type_idx,
                });
            }
            other => {
                let (op, pops, pushes) = map_simple(other)?;
                heights.push(height as u32);
                prof.push(ProfOp::of_instr(other));
                height = sub_height!(pops) + pushes;
                ops.push(op);
            }
        }
    }

    if !ctrl.is_empty() {
        return Err(bad("truncated body: unbalanced control (missing end)"));
    }
    debug_assert_eq!(ops.len(), heights.len());
    debug_assert_eq!(ops.len(), prof.len());
    // Under WATZ_VERIFY_IR the length parity holds in release builds
    // too: the arrays are consumed 1:1 by the dispatch loops and the
    // register pass, so a skew is an unconditional lowering bug.
    if crate::verify::strict() && (ops.len() != heights.len() || ops.len() != prof.len()) {
        return Err(bad("lowering produced skewed ops/heights/prof arrays"));
    }
    let (code, heights, prof) = if fuse {
        fuse_ops(ops, heights, prof, fusion)?
    } else {
        (ops, heights, prof)
    };
    check_jump_targets(&code)?;
    Ok((
        FlatFunc {
            n_params: n_params as u32,
            n_locals: (n_params + body.locals.len()) as u32,
            n_results: n_results as u32,
            result_types: ty.results.clone().into_boxed_slice(),
            code: code.into_boxed_slice(),
            prof: prof.into_boxed_slice(),
        },
        heights,
    ))
}

/// The load-time flat-code validator: every absolute jump target (and
/// every `br_table` entry) must land on a real instruction. Runs on both
/// the fused and unfused paths before any code is executed, so a lowering
/// or remap bug surfaces as an instantiation error, not a runtime panic.
fn check_jump_targets(code: &[FlatOp]) -> Result<(), Trap> {
    let n = code.len() as u32;
    let check = |t: u32| {
        if t < n {
            Ok(())
        } else {
            Err(bad("jump target out of bounds"))
        }
    };
    for op in code {
        match op {
            FlatOp::Jump { target }
            | FlatOp::JumpIfZero { target }
            | FlatOp::JumpIfNonZero { target }
            | FlatOp::Br { target, .. }
            | FlatOp::BrIf { target, .. }
            | FlatOp::FusedCmpBrZ { target, .. }
            | FlatOp::FusedCmpBrNZ { target, .. }
            | FlatOp::FusedCmpBrLLZ { target, .. }
            | FlatOp::FusedCmpBrLLNZ { target, .. }
            | FlatOp::FusedCmpBrLKZ { target, .. }
            | FlatOp::FusedCmpBrLKNZ { target, .. }
            | FlatOp::FusedCmpBrSLZ { target, .. }
            | FlatOp::FusedCmpBrSLNZ { target, .. } => check(*target)?,
            FlatOp::BrTable { entries } => {
                for e in entries.iter() {
                    check(e.target)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// The peephole fusion pass: rewrites adjacent-op windows into fused
/// superinstructions, then re-points every jump through the old→new index
/// map. Entry heights travel with the ops (a fused window inherits the
/// height of its first op — windows are straight-line, so that is the
/// fused op's entry height too).
///
/// A window may only swallow ops that are **not** jump targets — branch
/// destinations always stay window starts, which is what makes the remap
/// a plain index lookup (see the module docs for the invariant).
/// A lowered body after fusion: ops, entry heights, and retirement
/// metadata, index-aligned.
type FusedBody = (Vec<FlatOp>, Vec<u32>, Vec<ProfOp>);

fn fuse_ops(
    ops: Vec<FlatOp>,
    heights: Vec<u32>,
    prof: Vec<ProfOp>,
    fusion: &mut FusionStats,
) -> Result<FusedBody, Trap> {
    let n = ops.len();
    let mut is_target = vec![false; n + 1];
    for op in &ops {
        match op {
            FlatOp::Jump { target }
            | FlatOp::JumpIfZero { target }
            | FlatOp::JumpIfNonZero { target }
            | FlatOp::Br { target, .. }
            | FlatOp::BrIf { target, .. } => {
                *is_target
                    .get_mut(*target as usize)
                    .ok_or_else(|| bad("jump target out of bounds"))? = true;
            }
            FlatOp::BrTable { entries } => {
                for e in entries.iter() {
                    *is_target
                        .get_mut(e.target as usize)
                        .ok_or_else(|| bad("br_table target out of bounds"))? = true;
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::with_capacity(n);
    let mut heights_out = Vec::with_capacity(n);
    let mut prof_out = Vec::with_capacity(n);
    // old index -> new index; `u32::MAX` marks an op swallowed into the
    // middle of a window (never a legal jump target).
    let mut old2new = vec![u32::MAX; n + 1];
    let mut i = 0;
    while i < n {
        old2new[i] = out.len() as u32;
        heights_out.push(heights[i]);
        let consumed = fuse_at(&ops, &is_target, i, &mut out, fusion);
        // A fused window retires every guest op it swallowed, inclusively
        // at fetch. The binop-set forms exclude their trailing `local.set`
        // from the fetch-time weight: the binop may trap (div/rem), and
        // the oracle would not have dispatched the set, so the dispatch
        // arms retire it separately once the binop succeeds. All other
        // windows never extend past a trap point, making fetch-time
        // retirement exact even on trapping inputs.
        let deferred_set = matches!(
            out.last(),
            Some(
                FlatOp::FusedBinopLLSet { .. }
                    | FlatOp::FusedBinopLKSet { .. }
                    | FlatOp::FusedBinopSLSet { .. }
                    | FlatOp::FusedBinopSet { .. }
            )
        );
        let mut window = prof[i];
        let end = i + consumed - usize::from(deferred_set);
        for p in &prof[i + 1..end] {
            window.merge(p);
        }
        prof_out.push(window);
        i += consumed;
    }
    old2new[n] = out.len() as u32;
    debug_assert_eq!(out.len(), heights_out.len());
    debug_assert_eq!(out.len(), prof_out.len());
    // Release-mode twin of the asserts above, under WATZ_VERIFY_IR.
    if crate::verify::strict() && (out.len() != heights_out.len() || out.len() != prof_out.len()) {
        return Err(bad("fusion produced skewed ops/heights/prof arrays"));
    }

    for op in &mut out {
        let remap = |t: &mut u32| {
            let nt = old2new[*t as usize];
            if nt == u32::MAX {
                return Err(bad("jump into the middle of a fused window"));
            }
            *t = nt;
            Ok(())
        };
        match op {
            FlatOp::Jump { target }
            | FlatOp::JumpIfZero { target }
            | FlatOp::JumpIfNonZero { target }
            | FlatOp::Br { target, .. }
            | FlatOp::BrIf { target, .. }
            | FlatOp::FusedCmpBrZ { target, .. }
            | FlatOp::FusedCmpBrNZ { target, .. }
            | FlatOp::FusedCmpBrLLZ { target, .. }
            | FlatOp::FusedCmpBrLLNZ { target, .. }
            | FlatOp::FusedCmpBrLKZ { target, .. }
            | FlatOp::FusedCmpBrLKNZ { target, .. }
            | FlatOp::FusedCmpBrSLZ { target, .. }
            | FlatOp::FusedCmpBrSLNZ { target, .. } => remap(target)?,
            FlatOp::BrTable { entries } => {
                for e in entries.iter_mut() {
                    remap(&mut e.target)?;
                }
            }
            _ => {}
        }
    }
    Ok((out, heights_out, prof_out))
}

/// What follows a fusable binop inside a window, deciding the fused form.
enum BinopFollow {
    /// Nothing fusable: the binop result stays on the stack.
    None,
    /// `local.set dst` — sink the result into a frame slot.
    Set(u32),
    /// `store` — sink the result into memory (address beneath on the stack).
    Store(StoreKind, u32),
    /// Jump when the result is zero (`jump-if-zero`, or `i32.eqz;
    /// jump-if-non-zero` absorbed).
    BrZ(u32),
    /// Jump when the result is non-zero.
    BrNZ(u32),
}

/// Classifies the ops following a binop `kind` at `ops[j - 1]`; returns
/// the follower and how many extra ops it swallows.
///
/// A chain of `i32.eqz` between the binop and a conditional jump is
/// absorbed by flipping the jump's polarity per inversion: the chain's
/// value is consumed only by the zero-test, so `v; eqzⁿ; jump-if-non-zero`
/// is `jump when v == 0` for odd `n` and `jump when v != 0` for even `n`
/// (MiniC's truthiness normalization emits exactly these chains).
///
/// A trap-capable binop (`div`/`rem`) may only sink into a `local.set`:
/// the set's retirement is deferred until the division succeeds (see the
/// `FusedBinopLLSet`/`FusedBinopLKSet` dispatch arms), so
/// inclusive-at-fetch instret stays exact on trapping inputs. Store and
/// branch follows would put a second trap point or a control transfer
/// after the division, which the deferred-suffix scheme does not cover.
fn binop_follow(
    ops: &[FlatOp],
    free: impl Fn(usize) -> bool,
    j: usize,
    kind: BinOpKind,
) -> (BinopFollow, usize) {
    if !free(j) {
        return (BinopFollow::None, 0);
    }
    if kind.traps() {
        return match &ops[j] {
            FlatOp::LocalSet(dst) => (BinopFollow::Set(*dst), 1),
            _ => (BinopFollow::None, 0),
        };
    }
    match &ops[j] {
        FlatOp::LocalSet(dst) => (BinopFollow::Set(*dst), 1),
        FlatOp::JumpIfZero { target } => (BinopFollow::BrZ(*target), 1),
        FlatOp::JumpIfNonZero { target } => (BinopFollow::BrNZ(*target), 1),
        FlatOp::I32Eqz => {
            let mut n = 1usize;
            while free(j + n) && matches!(ops[j + n], FlatOp::I32Eqz) {
                n += 1;
            }
            if !free(j + n) {
                return (BinopFollow::None, 0);
            }
            let odd = n % 2 == 1;
            match &ops[j + n] {
                FlatOp::JumpIfNonZero { target } if odd => (BinopFollow::BrZ(*target), n + 1),
                FlatOp::JumpIfNonZero { target } => (BinopFollow::BrNZ(*target), n + 1),
                FlatOp::JumpIfZero { target } if odd => (BinopFollow::BrNZ(*target), n + 1),
                FlatOp::JumpIfZero { target } => (BinopFollow::BrZ(*target), n + 1),
                _ => (BinopFollow::None, 0),
            }
        }
        other => match store_kind(other) {
            Some((kind, offset)) => (BinopFollow::Store(kind, offset), 1),
            None => (BinopFollow::None, 0),
        },
    }
}

/// Tries to fuse a window starting at `ops[i]`; pushes exactly one op onto
/// `out` and returns how many input ops it consumed. Greedy: the longest
/// matching window wins.
#[allow(clippy::too_many_lines)]
fn fuse_at(
    ops: &[FlatOp],
    is_target: &[bool],
    i: usize,
    out: &mut Vec<FlatOp>,
    s: &mut FusionStats,
) -> usize {
    // `ops[j]` may be swallowed into the current window only if no jump
    // lands on it.
    let free = |j: usize| j < ops.len() && !is_target[j];
    match &ops[i] {
        FlatOp::LocalGet(a) if free(i + 1) => {
            let a = *a;
            match &ops[i + 1] {
                FlatOp::LocalGet(b) if free(i + 2) => {
                    if let Some(op) = binop_kind(&ops[i + 2]) {
                        let b = *b;
                        let (follow, extra) = binop_follow(ops, free, i + 3, op);
                        match follow {
                            BinopFollow::Set(dst) => {
                                s.binop_ll_set += 1;
                                out.push(FlatOp::FusedBinopLLSet { a, b, op, dst });
                                return 3 + extra;
                            }
                            BinopFollow::Store(kind, offset) => {
                                s.binop_store += 1;
                                out.push(FlatOp::FusedBinopLLStore {
                                    a,
                                    b,
                                    op,
                                    offset,
                                    kind,
                                });
                                return 3 + extra;
                            }
                            BinopFollow::BrZ(target) => {
                                s.cmp_br += 1;
                                out.push(FlatOp::FusedCmpBrLLZ { a, b, op, target });
                                return 3 + extra;
                            }
                            BinopFollow::BrNZ(target) => {
                                s.cmp_br += 1;
                                out.push(FlatOp::FusedCmpBrLLNZ { a, b, op, target });
                                return 3 + extra;
                            }
                            BinopFollow::None => {
                                s.binop_ll += 1;
                                out.push(FlatOp::FusedBinopLL { a, b, op });
                                return 3;
                            }
                        }
                    }
                }
                FlatOp::Const(k) if free(i + 2) => {
                    if let Some(op) = binop_kind(&ops[i + 2]) {
                        let k = *k;
                        // The sink/branch forms store the constant as a
                        // zero-extended u32 (to keep `FlatOp` at 16
                        // bytes); wider slots keep the plain LK form.
                        if let Ok(k32) = u32::try_from(k) {
                            let (follow, extra) = binop_follow(ops, free, i + 3, op);
                            match follow {
                                BinopFollow::Set(dst) => {
                                    s.binop_lk_set += 1;
                                    out.push(FlatOp::FusedBinopLKSet { a, k: k32, op, dst });
                                    return 3 + extra;
                                }
                                BinopFollow::BrZ(target) => {
                                    s.cmp_br += 1;
                                    out.push(FlatOp::FusedCmpBrLKZ {
                                        a,
                                        k: k32,
                                        op,
                                        target,
                                    });
                                    return 3 + extra;
                                }
                                BinopFollow::BrNZ(target) => {
                                    s.cmp_br += 1;
                                    out.push(FlatOp::FusedCmpBrLKNZ {
                                        a,
                                        k: k32,
                                        op,
                                        target,
                                    });
                                    return 3 + extra;
                                }
                                BinopFollow::Store(..) | BinopFollow::None => {}
                            }
                        }
                        s.binop_lk += 1;
                        out.push(FlatOp::FusedBinopLK { a, k, op });
                        return 3;
                    }
                }
                FlatOp::LocalSet(dst) => {
                    s.local_copy += 1;
                    out.push(FlatOp::LocalCopy { src: a, dst: *dst });
                    return 2;
                }
                next => {
                    if let Some((kind, offset)) = load_kind(next) {
                        s.load_l += 1;
                        out.push(FlatOp::FusedLoadL {
                            addr: a,
                            offset,
                            kind,
                        });
                        return 2;
                    }
                    if let Some((kind, offset)) = store_kind(next) {
                        s.store_l += 1;
                        out.push(FlatOp::FusedStoreL {
                            val: a,
                            offset,
                            kind,
                        });
                        return 2;
                    }
                    // 2-D array-address tail: `local.get z; i32.add;
                    // const k; i32.mul; i32.add [; load]`.
                    if matches!(next, FlatOp::I32Add) && free(i + 2) && free(i + 3) && free(i + 4) {
                        if let (FlatOp::Const(k), FlatOp::I32Mul, FlatOp::I32Add) =
                            (&ops[i + 2], &ops[i + 3], &ops[i + 4])
                        {
                            if let Ok(k32) = u32::try_from(*k) {
                                if free(i + 5) {
                                    if let Some((kind, offset)) = load_kind(&ops[i + 5]) {
                                        s.idx_load += 1;
                                        out.push(FlatOp::FusedIdxLAddLoad {
                                            z: a,
                                            k: k32,
                                            offset,
                                            kind,
                                        });
                                        return 6;
                                    }
                                }
                                s.idx_addr += 1;
                                out.push(FlatOp::FusedIdxLAdd { z: a, k: k32 });
                                return 5;
                            }
                        }
                    }
                    // `local.get b; binop` with the left operand already
                    // on the stack: the SL family.
                    if let Some(op) = binop_kind(next) {
                        let (follow, extra) = binop_follow(ops, free, i + 2, op);
                        match follow {
                            BinopFollow::Set(dst) => {
                                s.binop_sl_set += 1;
                                out.push(FlatOp::FusedBinopSLSet { b: a, op, dst });
                                return 2 + extra;
                            }
                            BinopFollow::Store(kind, offset) => {
                                s.binop_store += 1;
                                out.push(FlatOp::FusedBinopSLStore {
                                    b: a,
                                    op,
                                    offset,
                                    kind,
                                });
                                return 2 + extra;
                            }
                            BinopFollow::BrZ(target) => {
                                s.cmp_br += 1;
                                out.push(FlatOp::FusedCmpBrSLZ { b: a, op, target });
                                return 2 + extra;
                            }
                            BinopFollow::BrNZ(target) => {
                                s.cmp_br += 1;
                                out.push(FlatOp::FusedCmpBrSLNZ { b: a, op, target });
                                return 2 + extra;
                            }
                            BinopFollow::None => {
                                s.binop_sl += 1;
                                out.push(FlatOp::FusedBinopSL { b: a, op });
                                return 2;
                            }
                        }
                    }
                }
            }
        }
        FlatOp::Const(k) if free(i + 1) => {
            // 1-D array-address tail: `const k; i32.mul; i32.add [; load]`.
            if matches!(ops[i + 1], FlatOp::I32Mul) && free(i + 2) {
                if let (FlatOp::I32Add, Ok(k32)) = (&ops[i + 2], u32::try_from(*k)) {
                    if free(i + 3) {
                        if let Some((kind, offset)) = load_kind(&ops[i + 3]) {
                            s.idx_load += 1;
                            out.push(FlatOp::FusedScaleAddLoad {
                                k: k32,
                                offset,
                                kind,
                            });
                            return 4;
                        }
                    }
                    s.idx_addr += 1;
                    out.push(FlatOp::FusedScaleAdd { k: k32 });
                    return 3;
                }
            }
            if let Some(op) = binop_kind(&ops[i + 1]) {
                s.binop_ks += 1;
                out.push(FlatOp::FusedBinopKS { k: *k, op });
                return 2;
            }
        }
        FlatOp::I32Eqz if free(i + 1) => {
            // Bare truthiness chain: fold `eqzⁿ; jump-if` into the jump
            // with the polarity flipped per inversion.
            let mut n = 1usize;
            while free(i + n) && matches!(ops[i + n], FlatOp::I32Eqz) {
                n += 1;
            }
            if free(i + n) {
                let odd = n % 2 == 1;
                let fold = match &ops[i + n] {
                    FlatOp::JumpIfNonZero { target } if odd => {
                        Some(FlatOp::JumpIfZero { target: *target })
                    }
                    FlatOp::JumpIfNonZero { target } => {
                        Some(FlatOp::JumpIfNonZero { target: *target })
                    }
                    FlatOp::JumpIfZero { target } if odd => {
                        Some(FlatOp::JumpIfNonZero { target: *target })
                    }
                    FlatOp::JumpIfZero { target } => Some(FlatOp::JumpIfZero { target: *target }),
                    _ => None,
                };
                if let Some(op) = fold {
                    s.eqz_br += 1;
                    out.push(op);
                    return n + 1;
                }
            }
        }
        lead => {
            if let Some(op) = binop_kind(lead) {
                let (follow, extra) = binop_follow(ops, free, i + 1, op);
                match follow {
                    BinopFollow::Set(dst) => {
                        s.binop_set += 1;
                        out.push(FlatOp::FusedBinopSet { op, dst });
                        return 1 + extra;
                    }
                    BinopFollow::Store(kind, offset) => {
                        s.binop_store += 1;
                        out.push(FlatOp::FusedBinopStore { op, offset, kind });
                        return 1 + extra;
                    }
                    BinopFollow::BrZ(target) => {
                        s.cmp_br += 1;
                        out.push(FlatOp::FusedCmpBrZ { op, target });
                        return 1 + extra;
                    }
                    BinopFollow::BrNZ(target) => {
                        s.cmp_br += 1;
                        out.push(FlatOp::FusedCmpBrNZ { op, target });
                        return 1 + extra;
                    }
                    BinopFollow::None => {
                        if op == BinOpKind::I32Add && free(i + 1) {
                            if let Some((lk, offset)) = load_kind(&ops[i + 1]) {
                                s.add_load += 1;
                                out.push(FlatOp::FusedAddLoad { offset, kind: lk });
                                return 2;
                            }
                        }
                    }
                }
            }
        }
    }
    out.push(ops[i].clone());
    1
}

/// Maps a non-control instruction to its flat opcode and stack effect
/// `(pops, pushes)`.
///
/// # Errors
///
/// Returns [`Trap::Instantiation`] for a control instruction in a simple
/// position (malformed input; control flow is lowered structurally).
#[allow(clippy::too_many_lines)]
fn map_simple(instr: &Instr) -> Result<(FlatOp, usize, usize), Trap> {
    use FlatOp as F;
    use Instr as I;
    Ok(match instr {
        I::Drop => (F::Drop, 1, 0),
        I::Select => (F::Select, 3, 1),
        I::LocalGet(i) => (F::LocalGet(*i), 0, 1),
        I::LocalSet(i) => (F::LocalSet(*i), 1, 0),
        I::LocalTee(i) => (F::LocalTee(*i), 1, 1),
        I::GlobalGet(i) => (F::GlobalGet(*i), 0, 1),
        I::GlobalSet(i) => (F::GlobalSet(*i), 1, 0),

        I::I32Load(m) => (F::I32Load(m.offset), 1, 1),
        I::I64Load(m) => (F::I64Load(m.offset), 1, 1),
        I::F32Load(m) => (F::F32Load(m.offset), 1, 1),
        I::F64Load(m) => (F::F64Load(m.offset), 1, 1),
        I::I32Load8S(m) => (F::I32Load8S(m.offset), 1, 1),
        I::I32Load8U(m) => (F::I32Load8U(m.offset), 1, 1),
        I::I32Load16S(m) => (F::I32Load16S(m.offset), 1, 1),
        I::I32Load16U(m) => (F::I32Load16U(m.offset), 1, 1),
        I::I64Load8S(m) => (F::I64Load8S(m.offset), 1, 1),
        I::I64Load8U(m) => (F::I64Load8U(m.offset), 1, 1),
        I::I64Load16S(m) => (F::I64Load16S(m.offset), 1, 1),
        I::I64Load16U(m) => (F::I64Load16U(m.offset), 1, 1),
        I::I64Load32S(m) => (F::I64Load32S(m.offset), 1, 1),
        I::I64Load32U(m) => (F::I64Load32U(m.offset), 1, 1),

        I::I32Store(m) => (F::I32Store(m.offset), 2, 0),
        I::I64Store(m) => (F::I64Store(m.offset), 2, 0),
        I::F32Store(m) => (F::F32Store(m.offset), 2, 0),
        I::F64Store(m) => (F::F64Store(m.offset), 2, 0),
        I::I32Store8(m) => (F::I32Store8(m.offset), 2, 0),
        I::I32Store16(m) => (F::I32Store16(m.offset), 2, 0),
        I::I64Store8(m) => (F::I64Store8(m.offset), 2, 0),
        I::I64Store16(m) => (F::I64Store16(m.offset), 2, 0),
        I::I64Store32(m) => (F::I64Store32(m.offset), 2, 0),

        I::MemorySize => (F::MemorySize, 0, 1),
        I::MemoryGrow => (F::MemoryGrow, 1, 1),
        I::MemoryCopy => (F::MemoryCopy, 3, 0),
        I::MemoryFill => (F::MemoryFill, 3, 0),

        I::I32Const(v) => (F::Const(from_i32(*v)), 0, 1),
        I::I64Const(v) => (F::Const(from_i64(*v)), 0, 1),
        I::F32Const(v) => (F::Const(from_f32(*v)), 0, 1),
        I::F64Const(v) => (F::Const(from_f64(*v)), 0, 1),

        I::I32Eqz => (F::I32Eqz, 1, 1),
        I::I32Eq => (F::I32Eq, 2, 1),
        I::I32Ne => (F::I32Ne, 2, 1),
        I::I32LtS => (F::I32LtS, 2, 1),
        I::I32LtU => (F::I32LtU, 2, 1),
        I::I32GtS => (F::I32GtS, 2, 1),
        I::I32GtU => (F::I32GtU, 2, 1),
        I::I32LeS => (F::I32LeS, 2, 1),
        I::I32LeU => (F::I32LeU, 2, 1),
        I::I32GeS => (F::I32GeS, 2, 1),
        I::I32GeU => (F::I32GeU, 2, 1),
        I::I64Eqz => (F::I64Eqz, 1, 1),
        I::I64Eq => (F::I64Eq, 2, 1),
        I::I64Ne => (F::I64Ne, 2, 1),
        I::I64LtS => (F::I64LtS, 2, 1),
        I::I64LtU => (F::I64LtU, 2, 1),
        I::I64GtS => (F::I64GtS, 2, 1),
        I::I64GtU => (F::I64GtU, 2, 1),
        I::I64LeS => (F::I64LeS, 2, 1),
        I::I64LeU => (F::I64LeU, 2, 1),
        I::I64GeS => (F::I64GeS, 2, 1),
        I::I64GeU => (F::I64GeU, 2, 1),
        I::F32Eq => (F::F32Eq, 2, 1),
        I::F32Ne => (F::F32Ne, 2, 1),
        I::F32Lt => (F::F32Lt, 2, 1),
        I::F32Gt => (F::F32Gt, 2, 1),
        I::F32Le => (F::F32Le, 2, 1),
        I::F32Ge => (F::F32Ge, 2, 1),
        I::F64Eq => (F::F64Eq, 2, 1),
        I::F64Ne => (F::F64Ne, 2, 1),
        I::F64Lt => (F::F64Lt, 2, 1),
        I::F64Gt => (F::F64Gt, 2, 1),
        I::F64Le => (F::F64Le, 2, 1),
        I::F64Ge => (F::F64Ge, 2, 1),

        I::I32Clz => (F::I32Clz, 1, 1),
        I::I32Ctz => (F::I32Ctz, 1, 1),
        I::I32Popcnt => (F::I32Popcnt, 1, 1),
        I::I32Add => (F::I32Add, 2, 1),
        I::I32Sub => (F::I32Sub, 2, 1),
        I::I32Mul => (F::I32Mul, 2, 1),
        I::I32DivS => (F::I32DivS, 2, 1),
        I::I32DivU => (F::I32DivU, 2, 1),
        I::I32RemS => (F::I32RemS, 2, 1),
        I::I32RemU => (F::I32RemU, 2, 1),
        I::I32And => (F::I32And, 2, 1),
        I::I32Or => (F::I32Or, 2, 1),
        I::I32Xor => (F::I32Xor, 2, 1),
        I::I32Shl => (F::I32Shl, 2, 1),
        I::I32ShrS => (F::I32ShrS, 2, 1),
        I::I32ShrU => (F::I32ShrU, 2, 1),
        I::I32Rotl => (F::I32Rotl, 2, 1),
        I::I32Rotr => (F::I32Rotr, 2, 1),

        I::I64Clz => (F::I64Clz, 1, 1),
        I::I64Ctz => (F::I64Ctz, 1, 1),
        I::I64Popcnt => (F::I64Popcnt, 1, 1),
        I::I64Add => (F::I64Add, 2, 1),
        I::I64Sub => (F::I64Sub, 2, 1),
        I::I64Mul => (F::I64Mul, 2, 1),
        I::I64DivS => (F::I64DivS, 2, 1),
        I::I64DivU => (F::I64DivU, 2, 1),
        I::I64RemS => (F::I64RemS, 2, 1),
        I::I64RemU => (F::I64RemU, 2, 1),
        I::I64And => (F::I64And, 2, 1),
        I::I64Or => (F::I64Or, 2, 1),
        I::I64Xor => (F::I64Xor, 2, 1),
        I::I64Shl => (F::I64Shl, 2, 1),
        I::I64ShrS => (F::I64ShrS, 2, 1),
        I::I64ShrU => (F::I64ShrU, 2, 1),
        I::I64Rotl => (F::I64Rotl, 2, 1),
        I::I64Rotr => (F::I64Rotr, 2, 1),

        I::F32Abs => (F::F32Abs, 1, 1),
        I::F32Neg => (F::F32Neg, 1, 1),
        I::F32Ceil => (F::F32Ceil, 1, 1),
        I::F32Floor => (F::F32Floor, 1, 1),
        I::F32Trunc => (F::F32Trunc, 1, 1),
        I::F32Nearest => (F::F32Nearest, 1, 1),
        I::F32Sqrt => (F::F32Sqrt, 1, 1),
        I::F32Add => (F::F32Add, 2, 1),
        I::F32Sub => (F::F32Sub, 2, 1),
        I::F32Mul => (F::F32Mul, 2, 1),
        I::F32Div => (F::F32Div, 2, 1),
        I::F32Min => (F::F32Min, 2, 1),
        I::F32Max => (F::F32Max, 2, 1),
        I::F32Copysign => (F::F32Copysign, 2, 1),

        I::F64Abs => (F::F64Abs, 1, 1),
        I::F64Neg => (F::F64Neg, 1, 1),
        I::F64Ceil => (F::F64Ceil, 1, 1),
        I::F64Floor => (F::F64Floor, 1, 1),
        I::F64Trunc => (F::F64Trunc, 1, 1),
        I::F64Nearest => (F::F64Nearest, 1, 1),
        I::F64Sqrt => (F::F64Sqrt, 1, 1),
        I::F64Add => (F::F64Add, 2, 1),
        I::F64Sub => (F::F64Sub, 2, 1),
        I::F64Mul => (F::F64Mul, 2, 1),
        I::F64Div => (F::F64Div, 2, 1),
        I::F64Min => (F::F64Min, 2, 1),
        I::F64Max => (F::F64Max, 2, 1),
        I::F64Copysign => (F::F64Copysign, 2, 1),

        I::I32WrapI64 => (F::I32WrapI64, 1, 1),
        I::I32TruncF32S => (F::I32TruncF32S, 1, 1),
        I::I32TruncF32U => (F::I32TruncF32U, 1, 1),
        I::I32TruncF64S => (F::I32TruncF64S, 1, 1),
        I::I32TruncF64U => (F::I32TruncF64U, 1, 1),
        I::I64ExtendI32S => (F::I64ExtendI32S, 1, 1),
        I::I64ExtendI32U => (F::I64ExtendI32U, 1, 1),
        I::I64TruncF32S => (F::I64TruncF32S, 1, 1),
        I::I64TruncF32U => (F::I64TruncF32U, 1, 1),
        I::I64TruncF64S => (F::I64TruncF64S, 1, 1),
        I::I64TruncF64U => (F::I64TruncF64U, 1, 1),
        I::F32ConvertI32S => (F::F32ConvertI32S, 1, 1),
        I::F32ConvertI32U => (F::F32ConvertI32U, 1, 1),
        I::F32ConvertI64S => (F::F32ConvertI64S, 1, 1),
        I::F32ConvertI64U => (F::F32ConvertI64U, 1, 1),
        I::F32DemoteF64 => (F::F32DemoteF64, 1, 1),
        I::F64ConvertI32S => (F::F64ConvertI32S, 1, 1),
        I::F64ConvertI32U => (F::F64ConvertI32U, 1, 1),
        I::F64ConvertI64S => (F::F64ConvertI64S, 1, 1),
        I::F64ConvertI64U => (F::F64ConvertI64U, 1, 1),
        I::F64PromoteF32 => (F::F64PromoteF32, 1, 1),
        I::I32ReinterpretF32 => (F::I32ReinterpretF32, 1, 1),
        I::I64ReinterpretF64 => (F::I64ReinterpretF64, 1, 1),
        I::F32ReinterpretI32 => (F::F32ReinterpretI32, 1, 1),
        I::F64ReinterpretI64 => (F::F64ReinterpretI64, 1, 1),
        I::I32Extend8S => (F::I32Extend8S, 1, 1),
        I::I32Extend16S => (F::I32Extend16S, 1, 1),
        I::I64Extend8S => (F::I64Extend8S, 1, 1),
        I::I64Extend16S => (F::I64Extend16S, 1, 1),
        I::I64Extend32S => (F::I64Extend32S, 1, 1),

        _ => return Err(bad("control instruction in a simple position")),
    })
}

/// Saved caller state for a guest-level call inside the flat engine.
struct Frame<'a> {
    func: &'a FlatFunc,
    pc: usize,
    base: usize,
}

/// Invokes function `func_idx` on the flat engine.
///
/// The linear-memory contents are moved out of [`Memory`] for the whole
/// dispatch loop (one borrow per run, not one per load/store) and moved
/// back on exit; host calls and `memory.grow` — the only operations that
/// can observe or change the mapping — restore it around the boundary.
///
/// # Errors
///
/// Returns exactly the traps the tree-walking interpreter would.
#[allow(clippy::too_many_arguments)] // One borrow per disjoint Instance field.
pub(crate) fn run(
    flat: &FlatModule,
    types: &[FuncType],
    table: &[Option<u32>],
    memory: &mut Memory,
    globals: &mut [Value],
    host: &mut dyn HostEnv,
    func_idx: u32,
    args: &[Value],
    profile: Option<&mut crate::profile::ExecProfile>,
) -> Result<Vec<Value>, Trap> {
    let entry = match &flat.funcs[func_idx as usize] {
        FlatFuncDef::Import(imp) => {
            let results = host.call(&imp.module, &imp.name, memory, args)?;
            crate::exec::check_host_results(&imp.module, &imp.name, results.len(), imp.n_results)?;
            return Ok(results);
        }
        FlatFuncDef::Local(f) => f,
    };
    let mut mem = memory.take_data();
    // Monomorphise the dispatch loop per profile mode: the `NoProfile`
    // instantiation is the unchanged hot path (every counting statement
    // is compile-time dead), the `ExecProfile` one counts.
    let result = match profile {
        Some(p) => run_loop(
            flat, types, table, &mut mem, memory, globals, host, entry, args, p,
        ),
        None => run_loop(
            flat,
            types,
            table,
            &mut mem,
            memory,
            globals,
            host,
            entry,
            args,
            &mut crate::profile::NoProfile,
        ),
    };
    memory.put_data(mem);
    result
}

/// The flat engine's dispatch loop, operating on the cached memory vec.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_loop<P: Profiler>(
    flat: &FlatModule,
    types: &[FuncType],
    table: &[Option<u32>],
    mem: &mut Vec<u8>,
    memory: &mut Memory,
    globals: &mut [Value],
    host: &mut dyn HostEnv,
    entry: &FlatFunc,
    args: &[Value],
    prof: &mut P,
) -> Result<Vec<Value>, Trap> {
    let mut stack: Vec<Slot> = Vec::with_capacity(64);
    for v in args {
        stack.push(slot_from_value(*v));
    }
    stack.resize(entry.n_locals as usize, 0);

    let mut frames: Vec<Frame> = Vec::new();
    let mut cur: &FlatFunc = entry;
    let mut base: usize = 0;
    let mut pc: usize = 0;

    macro_rules! pop {
        () => {
            stack.pop().expect("validated")
        };
    }
    macro_rules! top {
        () => {
            stack.last_mut().expect("validated")
        };
    }
    // In-place unary op: rewrites the top of stack.
    macro_rules! unop {
        ($as:ident, $from:ident, $f:expr) => {{
            let t = top!();
            *t = $from($f($as(*t)));
        }};
    }
    // In-place binary op: pops b, rewrites a in place.
    macro_rules! binop {
        ($as:ident, $from:ident, $f:expr) => {{
            let b = $as(pop!());
            let t = top!();
            *t = $from($f($as(*t), b));
        }};
    }
    macro_rules! relop {
        ($as:ident, $f:expr) => {{
            let b = $as(pop!());
            let t = top!();
            *t = u64::from($f($as(*t), b));
        }};
    }
    macro_rules! load {
        ($off:expr, $n:expr, $conv:expr) => {{
            let t = top!();
            let addr = as_i32(*t);
            let bytes: [u8; $n] = crate::exec::mem_load(mem, addr, $off)?;
            *t = $conv(bytes);
        }};
    }
    macro_rules! store {
        ($off:expr, $conv:expr) => {{
            let v = pop!();
            let addr = as_i32(pop!());
            crate::exec::mem_store(mem, addr, $off, &$conv(v))?;
        }};
    }
    // Taken-branch hook: `pc` is already past the op, so `target < pc`
    // is exactly "at or before this op" — a loop back edge.
    macro_rules! backedge {
        ($target:expr) => {
            if P::ENABLED && ($target as usize) < pc {
                prof.backedge();
            }
        };
    }
    // Branch stack fix-up + jump: keep the top `keep` slots, reset the
    // operand stack to height `height` above this frame's operand base.
    macro_rules! do_br {
        ($target:expr, $keep:expr, $height:expr) => {{
            backedge!($target);
            let dest = base + cur.n_locals as usize + $height as usize;
            let keep = $keep as usize;
            let src = stack.len() - keep;
            if src != dest {
                stack.copy_within(src.., dest);
                stack.truncate(dest + keep);
            }
            pc = $target as usize;
        }};
    }
    macro_rules! call_local {
        ($callee:expr) => {{
            let callee: &FlatFunc = $callee;
            if frames.len() + 1 >= MAX_CALL_DEPTH {
                return Err(Trap::CallStackExhausted);
            }
            let new_base = stack.len() - callee.n_params as usize;
            stack.resize(new_base + callee.n_locals as usize, 0);
            frames.push(Frame {
                func: cur,
                pc,
                base,
            });
            cur = callee;
            base = new_base;
            pc = 0;
        }};
    }
    macro_rules! call_import {
        ($imp:expr) => {{
            let imp: &FlatImport = $imp;
            let split = stack.len() - imp.params.len();
            let host_args: Vec<Value> = imp
                .params
                .iter()
                .zip(&stack[split..])
                .map(|(ty, s)| value_from_slot(*ty, *s))
                .collect();
            stack.truncate(split);
            // The host sees (and may grow) the real memory: hand the
            // cached contents back for the duration of the call.
            memory.put_data(std::mem::take(mem));
            let call_result = host.call(&imp.module, &imp.name, memory, &host_args);
            *mem = memory.take_data();
            let results = call_result?;
            crate::exec::check_host_results(&imp.module, &imp.name, results.len(), imp.n_results)?;
            stack.extend(results.into_iter().map(slot_from_value));
        }};
    }

    loop {
        let op = &cur.code[pc];
        // Retirement is inclusive at fetch: the op's full guest-op weight
        // counts before it executes (and so before it can trap).
        if P::ENABLED {
            prof.retire(&cur.prof[pc]);
        }
        pc += 1;
        match op {
            FlatOp::Unreachable => return Err(Trap::Unreachable),
            FlatOp::Jump { target } => {
                backedge!(*target);
                pc = *target as usize;
            }
            FlatOp::JumpIfZero { target } => {
                if as_u32(pop!()) == 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::JumpIfNonZero { target } => {
                if as_u32(pop!()) != 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::Br {
                target,
                keep,
                height,
            } => do_br!(*target, *keep, *height),
            FlatOp::BrIf {
                target,
                keep,
                height,
            } => {
                if as_u32(pop!()) != 0 {
                    do_br!(*target, *keep, *height);
                }
            }
            FlatOp::BrTable { entries } => {
                let i = as_u32(pop!()) as usize;
                let e = entries[i.min(entries.len() - 1)];
                do_br!(e.target, e.keep, e.height);
            }
            FlatOp::Return => {
                let n = cur.n_results as usize;
                let rs = stack.len() - n;
                if rs != base {
                    stack.copy_within(rs.., base);
                    stack.truncate(base + n);
                }
                match frames.pop() {
                    Some(fr) => {
                        cur = fr.func;
                        pc = fr.pc;
                        base = fr.base;
                    }
                    None => {
                        return Ok(cur
                            .result_types
                            .iter()
                            .zip(&stack[base..])
                            .map(|(ty, s)| value_from_slot(*ty, *s))
                            .collect());
                    }
                }
            }
            FlatOp::CallLocal { func } => {
                let FlatFuncDef::Local(callee) = &flat.funcs[*func as usize] else {
                    unreachable!("resolved at lowering")
                };
                call_local!(callee);
            }
            FlatOp::CallImport { func } => {
                let FlatFuncDef::Import(imp) = &flat.funcs[*func as usize] else {
                    unreachable!("resolved at lowering")
                };
                call_import!(imp);
            }
            FlatOp::CallIndirect { type_idx } => {
                let i = as_u32(pop!()) as usize;
                let slot = *table.get(i).ok_or(Trap::TableOutOfBounds)?;
                let f = slot.ok_or(Trap::UndefinedTableElement)?;
                let actual = &types[flat.func_type_idx[f as usize] as usize];
                let expected = &types[*type_idx as usize];
                if actual != expected {
                    return Err(Trap::IndirectTypeMismatch);
                }
                match &flat.funcs[f as usize] {
                    FlatFuncDef::Import(imp) => call_import!(imp),
                    FlatFuncDef::Local(callee) => call_local!(callee),
                }
            }

            FlatOp::Drop => {
                pop!();
            }
            FlatOp::Select => {
                let c = as_u32(pop!());
                let b = pop!();
                if c == 0 {
                    *top!() = b;
                }
            }

            FlatOp::LocalGet(i) => {
                let v = stack[base + *i as usize];
                stack.push(v);
            }
            FlatOp::LocalSet(i) => stack[base + *i as usize] = pop!(),
            FlatOp::LocalTee(i) => {
                let v = *stack.last().expect("validated");
                stack[base + *i as usize] = v;
            }
            FlatOp::GlobalGet(i) => stack.push(slot_from_value(globals[*i as usize])),
            FlatOp::GlobalSet(i) => {
                globals[*i as usize] = value_from_slot(flat.global_types[*i as usize], pop!());
            }

            FlatOp::I32Load(off) => load!(*off, 4, |b| from_i32(i32::from_le_bytes(b))),
            FlatOp::I64Load(off) => load!(*off, 8, |b| from_i64(i64::from_le_bytes(b))),
            FlatOp::F32Load(off) => load!(*off, 4, |b| u64::from(u32::from_le_bytes(b))),
            FlatOp::F64Load(off) => load!(*off, 8, u64::from_le_bytes),
            FlatOp::I32Load8S(off) => {
                load!(*off, 1, |b: [u8; 1]| from_i32(i32::from(b[0] as i8)))
            }
            FlatOp::I32Load8U(off) => load!(*off, 1, |b: [u8; 1]| u64::from(b[0])),
            FlatOp::I32Load16S(off) => {
                load!(*off, 2, |b| from_i32(i32::from(i16::from_le_bytes(b))))
            }
            FlatOp::I32Load16U(off) => load!(*off, 2, |b| u64::from(u16::from_le_bytes(b))),
            FlatOp::I64Load8S(off) => {
                load!(*off, 1, |b: [u8; 1]| from_i64(i64::from(b[0] as i8)))
            }
            FlatOp::I64Load8U(off) => load!(*off, 1, |b: [u8; 1]| u64::from(b[0])),
            FlatOp::I64Load16S(off) => {
                load!(*off, 2, |b| from_i64(i64::from(i16::from_le_bytes(b))))
            }
            FlatOp::I64Load16U(off) => load!(*off, 2, |b| u64::from(u16::from_le_bytes(b))),
            FlatOp::I64Load32S(off) => {
                load!(*off, 4, |b| from_i64(i64::from(i32::from_le_bytes(b))))
            }
            FlatOp::I64Load32U(off) => load!(*off, 4, |b| u64::from(u32::from_le_bytes(b))),

            FlatOp::I32Store(off) => store!(*off, |v| (v as u32).to_le_bytes()),
            FlatOp::I64Store(off) => store!(*off, |v: u64| v.to_le_bytes()),
            FlatOp::F32Store(off) => store!(*off, |v| (v as u32).to_le_bytes()),
            FlatOp::F64Store(off) => store!(*off, |v: u64| v.to_le_bytes()),
            FlatOp::I32Store8(off) => store!(*off, |v| [(v & 0xff) as u8]),
            FlatOp::I32Store16(off) => store!(*off, |v| (v as u16).to_le_bytes()),
            FlatOp::I64Store8(off) => store!(*off, |v| [(v & 0xff) as u8]),
            FlatOp::I64Store16(off) => store!(*off, |v| (v as u16).to_le_bytes()),
            FlatOp::I64Store32(off) => store!(*off, |v| (v as u32).to_le_bytes()),

            FlatOp::LoadNC { kind, offset } => {
                let t = top!();
                let addr = as_i32(*t);
                *t = do_load_nc(*kind, mem, addr, *offset);
            }
            FlatOp::StoreNC { kind, offset } => {
                let v = pop!();
                let addr = as_i32(pop!());
                do_store_nc(*kind, mem, addr, *offset, v);
            }

            FlatOp::MemorySize => stack.push(from_i32((mem.len() / crate::PAGE_SIZE) as i32)),
            FlatOp::MemoryGrow => {
                let t = top!();
                let delta = as_u32(*t);
                *t = from_i32(Memory::grow_raw(mem, memory.max_pages(), delta));
            }
            FlatOp::MemoryCopy => {
                let len = as_u32(pop!());
                let src = as_u32(pop!());
                let dst = as_u32(pop!());
                let mem_len = mem.len() as u64;
                if u64::from(src) + u64::from(len) > mem_len
                    || u64::from(dst) + u64::from(len) > mem_len
                {
                    return Err(Trap::MemoryOutOfBounds);
                }
                mem.copy_within(src as usize..(src + len) as usize, dst as usize);
            }
            FlatOp::MemoryFill => {
                let len = as_u32(pop!());
                let val = as_u32(pop!()) as u8;
                let dst = as_u32(pop!());
                if u64::from(dst) + u64::from(len) > mem.len() as u64 {
                    return Err(Trap::MemoryOutOfBounds);
                }
                mem[dst as usize..(dst + len) as usize].fill(val);
            }

            FlatOp::Const(v) => stack.push(*v),

            FlatOp::FusedBinopLL { a, b, op } => {
                let x = stack[base + *a as usize];
                let y = stack[base + *b as usize];
                stack.push(apply_binop(*op, x, y)?);
            }
            FlatOp::FusedBinopLK { a, k, op } => {
                let x = stack[base + *a as usize];
                stack.push(apply_binop(*op, x, *k)?);
            }
            FlatOp::FusedBinopLLSet { a, b, op, dst } => {
                let r = apply_binop(*op, stack[base + *a as usize], stack[base + *b as usize])?;
                // The trailing `local.set` retires only once the binop
                // succeeded — fetch-time weight excludes it (see fuse_ops).
                if P::ENABLED {
                    prof.retire_tail(OpClass::Local, 1);
                }
                stack[base + *dst as usize] = r;
            }
            FlatOp::FusedBinopLKSet { a, k, op, dst } => {
                let r = apply_binop(*op, stack[base + *a as usize], u64::from(*k))?;
                if P::ENABLED {
                    prof.retire_tail(OpClass::Local, 1);
                }
                stack[base + *dst as usize] = r;
            }
            FlatOp::FusedBinopSL { b, op } => {
                let y = stack[base + *b as usize];
                let t = top!();
                *t = apply_binop(*op, *t, y)?;
            }
            FlatOp::FusedBinopSLSet { b, op, dst } => {
                let x = pop!();
                let r = apply_binop(*op, x, stack[base + *b as usize])?;
                if P::ENABLED {
                    prof.retire_tail(OpClass::Local, 1);
                }
                stack[base + *dst as usize] = r;
            }
            FlatOp::FusedBinopSLStore {
                b,
                op,
                offset,
                kind,
            } => {
                let x = pop!();
                let v = apply_binop(*op, x, stack[base + *b as usize])?;
                let addr = as_i32(pop!());
                do_store(*kind, mem, addr, *offset, v)?;
            }
            FlatOp::FusedBinopLLStore {
                a,
                b,
                op,
                offset,
                kind,
            } => {
                let v = apply_binop(*op, stack[base + *a as usize], stack[base + *b as usize])?;
                let addr = as_i32(pop!());
                do_store(*kind, mem, addr, *offset, v)?;
            }
            FlatOp::FusedBinopSet { op, dst } => {
                let b = pop!();
                let a = pop!();
                let r = apply_binop(*op, a, b)?;
                if P::ENABLED {
                    prof.retire_tail(OpClass::Local, 1);
                }
                stack[base + *dst as usize] = r;
            }
            FlatOp::LocalCopy { src, dst } => {
                stack[base + *dst as usize] = stack[base + *src as usize];
            }
            FlatOp::FusedLoadL { addr, offset, kind } => {
                let a = as_i32(stack[base + *addr as usize]);
                stack.push(do_load(*kind, mem, a, *offset)?);
            }
            FlatOp::FusedStoreL { val, offset, kind } => {
                let a = as_i32(pop!());
                do_store(*kind, mem, a, *offset, stack[base + *val as usize])?;
            }
            FlatOp::FusedAddLoad { offset, kind } => {
                let b = pop!();
                let t = top!();
                let a = as_i32(*t).wrapping_add(as_i32(b));
                *t = do_load(*kind, mem, a, *offset)?;
            }
            FlatOp::FusedBinopKS { k, op } => {
                let t = top!();
                *t = apply_binop(*op, *t, *k)?;
            }
            FlatOp::FusedScaleAdd { k } => {
                let idx = as_i32(pop!());
                let t = top!();
                *t = from_i32(as_i32(*t).wrapping_add(idx.wrapping_mul(*k as i32)));
            }
            FlatOp::FusedScaleAddLoad { k, offset, kind } => {
                let idx = as_i32(pop!());
                let t = top!();
                let addr = as_i32(*t).wrapping_add(idx.wrapping_mul(*k as i32));
                *t = do_load(*kind, mem, addr, *offset)?;
            }
            FlatOp::FusedIdxLAdd { z, k } => {
                let zv = as_i32(stack[base + *z as usize]);
                let partial = as_i32(pop!());
                let t = top!();
                let idx = partial.wrapping_add(zv).wrapping_mul(*k as i32);
                *t = from_i32(as_i32(*t).wrapping_add(idx));
            }
            FlatOp::FusedIdxLAddLoad { z, k, offset, kind } => {
                let zv = as_i32(stack[base + *z as usize]);
                let partial = as_i32(pop!());
                let t = top!();
                let idx = partial.wrapping_add(zv).wrapping_mul(*k as i32);
                let addr = as_i32(*t).wrapping_add(idx);
                *t = do_load(*kind, mem, addr, *offset)?;
            }
            FlatOp::FusedBinopStore { op, offset, kind } => {
                let b = pop!();
                let a = pop!();
                let v = apply_binop(*op, a, b)?;
                let addr = as_i32(pop!());
                do_store(*kind, mem, addr, *offset, v)?;
            }
            FlatOp::FusedCmpBrZ { op, target } => {
                let b = pop!();
                let a = pop!();
                if as_u32(apply_binop(*op, a, b)?) == 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrNZ { op, target } => {
                let b = pop!();
                let a = pop!();
                if as_u32(apply_binop(*op, a, b)?) != 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrLLZ { a, b, op, target } => {
                let x = stack[base + *a as usize];
                let y = stack[base + *b as usize];
                if as_u32(apply_binop(*op, x, y)?) == 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrLLNZ { a, b, op, target } => {
                let x = stack[base + *a as usize];
                let y = stack[base + *b as usize];
                if as_u32(apply_binop(*op, x, y)?) != 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrLKZ { a, k, op, target } => {
                let x = stack[base + *a as usize];
                if as_u32(apply_binop(*op, x, u64::from(*k))?) == 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrLKNZ { a, k, op, target } => {
                let x = stack[base + *a as usize];
                if as_u32(apply_binop(*op, x, u64::from(*k))?) != 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrSLZ { b, op, target } => {
                let x = pop!();
                if as_u32(apply_binop(*op, x, stack[base + *b as usize])?) == 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }
            FlatOp::FusedCmpBrSLNZ { b, op, target } => {
                let x = pop!();
                if as_u32(apply_binop(*op, x, stack[base + *b as usize])?) != 0 {
                    backedge!(*target);
                    pc = *target as usize;
                }
            }

            FlatOp::I32Eqz => {
                let t = top!();
                *t = u64::from(as_u32(*t) == 0);
            }
            FlatOp::I64Eqz => {
                let t = top!();
                *t = u64::from(*t == 0);
            }
            FlatOp::I32Eq => relop!(as_i32, |a, b| a == b),
            FlatOp::I32Ne => relop!(as_i32, |a, b| a != b),
            FlatOp::I32LtS => relop!(as_i32, |a, b| a < b),
            FlatOp::I32LtU => relop!(as_u32, |a, b| a < b),
            FlatOp::I32GtS => relop!(as_i32, |a, b| a > b),
            FlatOp::I32GtU => relop!(as_u32, |a, b| a > b),
            FlatOp::I32LeS => relop!(as_i32, |a, b| a <= b),
            FlatOp::I32LeU => relop!(as_u32, |a, b| a <= b),
            FlatOp::I32GeS => relop!(as_i32, |a, b| a >= b),
            FlatOp::I32GeU => relop!(as_u32, |a, b| a >= b),
            FlatOp::I64Eq => relop!(as_i64, |a, b| a == b),
            FlatOp::I64Ne => relop!(as_i64, |a, b| a != b),
            FlatOp::I64LtS => relop!(as_i64, |a, b| a < b),
            FlatOp::I64LtU => relop!(as_u64, |a, b| a < b),
            FlatOp::I64GtS => relop!(as_i64, |a, b| a > b),
            FlatOp::I64GtU => relop!(as_u64, |a, b| a > b),
            FlatOp::I64LeS => relop!(as_i64, |a, b| a <= b),
            FlatOp::I64LeU => relop!(as_u64, |a, b| a <= b),
            FlatOp::I64GeS => relop!(as_i64, |a, b| a >= b),
            FlatOp::I64GeU => relop!(as_u64, |a, b| a >= b),
            FlatOp::F32Eq => relop!(as_f32, |a, b| a == b),
            FlatOp::F32Ne => relop!(as_f32, |a, b| a != b),
            FlatOp::F32Lt => relop!(as_f32, |a, b| a < b),
            FlatOp::F32Gt => relop!(as_f32, |a, b| a > b),
            FlatOp::F32Le => relop!(as_f32, |a, b| a <= b),
            FlatOp::F32Ge => relop!(as_f32, |a, b| a >= b),
            FlatOp::F64Eq => relop!(as_f64, |a, b| a == b),
            FlatOp::F64Ne => relop!(as_f64, |a, b| a != b),
            FlatOp::F64Lt => relop!(as_f64, |a, b| a < b),
            FlatOp::F64Gt => relop!(as_f64, |a, b| a > b),
            FlatOp::F64Le => relop!(as_f64, |a, b| a <= b),
            FlatOp::F64Ge => relop!(as_f64, |a, b| a >= b),

            FlatOp::I32Clz => unop!(as_i32, from_i32, |a: i32| a.leading_zeros() as i32),
            FlatOp::I32Ctz => unop!(as_i32, from_i32, |a: i32| a.trailing_zeros() as i32),
            FlatOp::I32Popcnt => unop!(as_i32, from_i32, |a: i32| a.count_ones() as i32),
            FlatOp::I32Add => binop!(as_i32, from_i32, i32::wrapping_add),
            FlatOp::I32Sub => binop!(as_i32, from_i32, i32::wrapping_sub),
            FlatOp::I32Mul => binop!(as_i32, from_i32, i32::wrapping_mul),
            FlatOp::I32DivS => {
                let b = as_i32(pop!());
                let t = top!();
                *t = from_i32(i32_div_s(as_i32(*t), b)?);
            }
            FlatOp::I32DivU => {
                let b = as_u32(pop!());
                let t = top!();
                *t = u64::from(i32_div_u(as_u32(*t), b)?);
            }
            FlatOp::I32RemS => {
                let b = as_i32(pop!());
                let t = top!();
                *t = from_i32(i32_rem_s(as_i32(*t), b)?);
            }
            FlatOp::I32RemU => {
                let b = as_u32(pop!());
                let t = top!();
                *t = u64::from(i32_rem_u(as_u32(*t), b)?);
            }
            FlatOp::I32And => binop!(as_i32, from_i32, |a, b| a & b),
            FlatOp::I32Or => binop!(as_i32, from_i32, |a, b| a | b),
            FlatOp::I32Xor => binop!(as_i32, from_i32, |a, b| a ^ b),
            FlatOp::I32Shl => binop!(as_i32, from_i32, |a: i32, b: i32| a.wrapping_shl(b as u32)),
            FlatOp::I32ShrS => binop!(as_i32, from_i32, |a: i32, b: i32| a.wrapping_shr(b as u32)),
            FlatOp::I32ShrU => binop!(as_u32, from_i32, |a: u32, b: u32| a.wrapping_shr(b) as i32),
            FlatOp::I32Rotl => {
                binop!(as_i32, from_i32, |a: i32, b: i32| a
                    .rotate_left(b as u32 % 32))
            }
            FlatOp::I32Rotr => {
                binop!(as_i32, from_i32, |a: i32, b: i32| a
                    .rotate_right(b as u32 % 32))
            }

            FlatOp::I64Clz => unop!(as_i64, from_i64, |a: i64| i64::from(a.leading_zeros())),
            FlatOp::I64Ctz => unop!(as_i64, from_i64, |a: i64| i64::from(a.trailing_zeros())),
            FlatOp::I64Popcnt => unop!(as_i64, from_i64, |a: i64| i64::from(a.count_ones())),
            FlatOp::I64Add => binop!(as_i64, from_i64, i64::wrapping_add),
            FlatOp::I64Sub => binop!(as_i64, from_i64, i64::wrapping_sub),
            FlatOp::I64Mul => binop!(as_i64, from_i64, i64::wrapping_mul),
            FlatOp::I64DivS => {
                let b = as_i64(pop!());
                let t = top!();
                *t = from_i64(i64_div_s(as_i64(*t), b)?);
            }
            FlatOp::I64DivU => {
                let b = pop!();
                let t = top!();
                *t = i64_div_u(*t, b)?;
            }
            FlatOp::I64RemS => {
                let b = as_i64(pop!());
                let t = top!();
                *t = from_i64(i64_rem_s(as_i64(*t), b)?);
            }
            FlatOp::I64RemU => {
                let b = pop!();
                let t = top!();
                *t = i64_rem_u(*t, b)?;
            }
            FlatOp::I64And => binop!(as_i64, from_i64, |a, b| a & b),
            FlatOp::I64Or => binop!(as_i64, from_i64, |a, b| a | b),
            FlatOp::I64Xor => binop!(as_i64, from_i64, |a, b| a ^ b),
            FlatOp::I64Shl => binop!(as_i64, from_i64, |a: i64, b: i64| a.wrapping_shl(b as u32)),
            FlatOp::I64ShrS => binop!(as_i64, from_i64, |a: i64, b: i64| a.wrapping_shr(b as u32)),
            FlatOp::I64ShrU => binop!(
                as_u64,
                from_i64,
                |a: u64, b: u64| (a.wrapping_shr(b as u32)) as i64
            ),
            FlatOp::I64Rotl => binop!(as_i64, from_i64, |a: i64, b: i64| a
                .rotate_left((b as u32) % 64)),
            FlatOp::I64Rotr => binop!(as_i64, from_i64, |a: i64, b: i64| a
                .rotate_right((b as u32) % 64)),

            FlatOp::F32Abs => unop!(as_f32, from_f32, f32::abs),
            FlatOp::F32Neg => unop!(as_f32, from_f32, |a: f32| -a),
            FlatOp::F32Ceil => unop!(as_f32, from_f32, f32::ceil),
            FlatOp::F32Floor => unop!(as_f32, from_f32, f32::floor),
            FlatOp::F32Trunc => unop!(as_f32, from_f32, f32::trunc),
            FlatOp::F32Nearest => unop!(as_f32, from_f32, f32::round_ties_even),
            FlatOp::F32Sqrt => unop!(as_f32, from_f32, f32::sqrt),
            FlatOp::F32Add => binop!(as_f32, from_f32, |a, b| a + b),
            FlatOp::F32Sub => binop!(as_f32, from_f32, |a, b| a - b),
            FlatOp::F32Mul => binop!(as_f32, from_f32, |a, b| a * b),
            FlatOp::F32Div => binop!(as_f32, from_f32, |a, b| a / b),
            FlatOp::F32Min => binop!(as_f32, from_f32, wasm_fmin32),
            FlatOp::F32Max => binop!(as_f32, from_f32, wasm_fmax32),
            FlatOp::F32Copysign => binop!(as_f32, from_f32, f32::copysign),

            FlatOp::F64Abs => unop!(as_f64, from_f64, f64::abs),
            FlatOp::F64Neg => unop!(as_f64, from_f64, |a: f64| -a),
            FlatOp::F64Ceil => unop!(as_f64, from_f64, f64::ceil),
            FlatOp::F64Floor => unop!(as_f64, from_f64, f64::floor),
            FlatOp::F64Trunc => unop!(as_f64, from_f64, f64::trunc),
            FlatOp::F64Nearest => unop!(as_f64, from_f64, f64::round_ties_even),
            FlatOp::F64Sqrt => unop!(as_f64, from_f64, f64::sqrt),
            FlatOp::F64Add => binop!(as_f64, from_f64, |a, b| a + b),
            FlatOp::F64Sub => binop!(as_f64, from_f64, |a, b| a - b),
            FlatOp::F64Mul => binop!(as_f64, from_f64, |a, b| a * b),
            FlatOp::F64Div => binop!(as_f64, from_f64, |a, b| a / b),
            FlatOp::F64Min => binop!(as_f64, from_f64, wasm_fmin64),
            FlatOp::F64Max => binop!(as_f64, from_f64, wasm_fmax64),
            FlatOp::F64Copysign => binop!(as_f64, from_f64, f64::copysign),

            FlatOp::I32WrapI64 => {
                let t = top!();
                *t = from_i32(as_i64(*t) as i32);
            }
            FlatOp::I32TruncF32S => {
                let t = top!();
                *t = from_i32(trunc_f32_to_i32_s(as_f32(*t))?);
            }
            FlatOp::I32TruncF32U => {
                let t = top!();
                *t = u64::from(trunc_f32_to_u32(as_f32(*t))?);
            }
            FlatOp::I32TruncF64S => {
                let t = top!();
                *t = from_i32(trunc_f64_to_i32_s(as_f64(*t))?);
            }
            FlatOp::I32TruncF64U => {
                let t = top!();
                *t = u64::from(trunc_f64_to_u32(as_f64(*t))?);
            }
            FlatOp::I64ExtendI32S => {
                let t = top!();
                *t = from_i64(i64::from(as_i32(*t)));
            }
            FlatOp::I64ExtendI32U => {
                let t = top!();
                *t = u64::from(as_u32(*t));
            }
            FlatOp::I64TruncF32S => {
                let t = top!();
                *t = from_i64(trunc_f32_to_i64_s(as_f32(*t))?);
            }
            FlatOp::I64TruncF32U => {
                let t = top!();
                *t = trunc_f32_to_u64(as_f32(*t))?;
            }
            FlatOp::I64TruncF64S => {
                let t = top!();
                *t = from_i64(trunc_f64_to_i64_s(as_f64(*t))?);
            }
            FlatOp::I64TruncF64U => {
                let t = top!();
                *t = trunc_f64_to_u64(as_f64(*t))?;
            }
            FlatOp::F32ConvertI32S => unop!(as_i32, from_f32, |a: i32| a as f32),
            FlatOp::F32ConvertI32U => unop!(as_u32, from_f32, |a: u32| a as f32),
            FlatOp::F32ConvertI64S => unop!(as_i64, from_f32, |a: i64| a as f32),
            FlatOp::F32ConvertI64U => unop!(as_u64, from_f32, |a: u64| a as f32),
            FlatOp::F32DemoteF64 => unop!(as_f64, from_f32, |a: f64| a as f32),
            FlatOp::F64ConvertI32S => unop!(as_i32, from_f64, f64::from),
            FlatOp::F64ConvertI32U => unop!(as_u32, from_f64, f64::from),
            FlatOp::F64ConvertI64S => unop!(as_i64, from_f64, |a: i64| a as f64),
            FlatOp::F64ConvertI64U => unop!(as_u64, from_f64, |a: u64| a as f64),
            FlatOp::F64PromoteF32 => unop!(as_f32, from_f64, f64::from),
            // Reinterprets are no-ops on raw slots (i32/f32 both occupy the
            // low 32 bits; i64/f64 the full slot).
            FlatOp::I32ReinterpretF32
            | FlatOp::I64ReinterpretF64
            | FlatOp::F32ReinterpretI32
            | FlatOp::F64ReinterpretI64 => {}
            FlatOp::I32Extend8S => unop!(as_i32, from_i32, |a: i32| i32::from(a as i8)),
            FlatOp::I32Extend16S => unop!(as_i32, from_i32, |a: i32| i32::from(a as i16)),
            FlatOp::I64Extend8S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i8)),
            FlatOp::I64Extend16S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i16)),
            FlatOp::I64Extend32S => unop!(as_i64, from_i64, |a: i64| i64::from(a as i32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::exec::{ExecMode, Instance, NoHost};
    use crate::instr::Instr as I;
    use crate::types::BlockType;

    fn run_both(bytes: &[u8], name: &str, args: &[Value]) -> [Result<Vec<Value>, Trap>; 2] {
        let module = crate::load(bytes).unwrap();
        [ExecMode::Interpreted, ExecMode::Aot].map(|mode| {
            let mut inst = Instance::instantiate(&module, mode, &mut NoHost).unwrap();
            inst.invoke(&mut NoHost, name, args)
        })
    }

    #[test]
    fn nested_blocks_and_branches_agree() {
        // A br 1 carrying a value out of a doubly-nested block.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(1),
                I::Br(1),
                I::End,
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(1)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(1)]);
    }

    #[test]
    fn loop_with_br_if_counts() {
        // Sums 0..n with a loop + br_if back-edge.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32, ValType::I32],
            vec![
                I::Loop(BlockType::Empty),
                // sum += i
                I::LocalGet(1),
                I::LocalGet(2),
                I::I32Add,
                I::LocalSet(2),
                // i += 1
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                // if i < n continue
                I::LocalGet(1),
                I::LocalGet(0),
                I::I32LtS,
                I::BrIf(0),
                I::End,
                I::LocalGet(2),
                I::End,
            ],
        );
        b.export_func("sum", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "sum", &[Value::I32(10)]);
        assert_eq!(interp.unwrap(), vec![Value::I32(45)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(45)]);
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::LocalGet(0),
                I::If(BlockType::Value(ValType::I32)),
                I::I32Const(100),
                I::Else,
                I::I32Const(-100),
                I::End,
                I::End,
            ],
        );
        b.export_func("pick", f);
        let bytes = b.build();
        for (arg, want) in [(1, 100), (0, -100)] {
            let [interp, flat] = run_both(&bytes, "pick", &[Value::I32(arg)]);
            assert_eq!(interp.unwrap(), vec![Value::I32(want)]);
            assert_eq!(flat.unwrap(), vec![Value::I32(want)]);
        }
    }

    #[test]
    fn br_table_selects_all_arms() {
        // br_table over three nested blocks returning distinct constants.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::LocalGet(0),
                I::BrTable {
                    targets: vec![0, 1],
                    default: 2,
                },
                I::End,
                I::I32Const(10),
                I::Return,
                I::End,
                I::I32Const(20),
                I::Return,
                I::End,
                I::I32Const(30),
                I::End,
            ],
        );
        b.export_func("route", f);
        let bytes = b.build();
        for (arg, want) in [(0, 10), (1, 20), (2, 30), (99, 30)] {
            let [interp, flat] = run_both(&bytes, "route", &[Value::I32(arg)]);
            assert_eq!(interp.unwrap(), vec![Value::I32(want)], "arg {arg}");
            assert_eq!(flat.unwrap(), vec![Value::I32(want)], "arg {arg}");
        }
    }

    #[test]
    fn traps_match_tree_interpreter() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![I::LocalGet(0), I::LocalGet(1), I::I32DivS, I::End],
        );
        b.export_func("div", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "div", &[Value::I32(1), Value::I32(0)]);
        assert_eq!(interp.unwrap_err(), Trap::DivisionByZero);
        assert_eq!(flat.unwrap_err(), Trap::DivisionByZero);
        let [interp, flat] = run_both(&bytes, "div", &[Value::I32(i32::MIN), Value::I32(-1)]);
        assert_eq!(interp.unwrap_err(), Trap::IntegerOverflow);
        assert_eq!(flat.unwrap_err(), Trap::IntegerOverflow);
    }

    #[test]
    fn recursion_depth_trap_matches() {
        // infinite recursion traps with CallStackExhausted in both modes.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[]);
        let f = b.add_func(ty, &[], vec![I::Call(0), I::End]);
        b.export_func("rec", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "rec", &[]);
        assert_eq!(interp.unwrap_err(), Trap::CallStackExhausted);
        assert_eq!(flat.unwrap_err(), Trap::CallStackExhausted);
    }

    #[test]
    fn branch_discards_excess_operands() {
        // A br out of a block with extra values on the stack must keep only
        // the label arity; the flat engine encodes the fix-up statically.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(7),
                I::I32Const(8),
                I::I32Const(42),
                I::Br(0),
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(42)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(42)]);
    }

    #[test]
    fn unreachable_code_after_br_is_skipped() {
        // Ops after a br in the same block never execute; the lowering
        // skips them entirely (they would otherwise corrupt bookkeeping).
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Value(ValType::I32)),
                I::I32Const(5),
                I::Br(0),
                I::I32Const(1),
                I::I32Const(2),
                I::I32Add,
                I::End,
                I::End,
            ],
        );
        b.export_func("f", f);
        let bytes = b.build();
        let [interp, flat] = run_both(&bytes, "f", &[]);
        assert_eq!(interp.unwrap(), vec![Value::I32(5)]);
        assert_eq!(flat.unwrap(), vec![Value::I32(5)]);
    }

    /// The flat-engine A/B matrix: (label, fuse, reg) for every
    /// fused/unfused × register/stack combination.
    const ENGINE_MATRIX: [(&str, bool, bool); 4] = [
        ("fused+register", true, true),
        ("fused", true, false),
        ("unfused+register", false, true),
        ("unfused", false, false),
    ];

    /// Runs an export on the oracle and on the flat engine in every
    /// fused/unfused × register/stack combination; all five must agree on
    /// results AND traps. Register instances must not silently fall back
    /// to the stack form.
    fn run_matrix(
        bytes: &[u8],
        name: &str,
        args: &[Value],
    ) -> Vec<(&'static str, Result<Vec<Value>, Trap>)> {
        let module = crate::load(bytes).unwrap();
        let mut out = Vec::new();
        let mut interp =
            Instance::instantiate(&module, ExecMode::Interpreted, &mut NoHost).unwrap();
        out.push(("oracle", interp.invoke(&mut NoHost, name, args)));
        for (label, fuse, reg) in ENGINE_MATRIX {
            let mut inst =
                Instance::instantiate_with_engine(&module, ExecMode::Aot, fuse, reg, &mut NoHost)
                    .unwrap();
            assert_eq!(
                inst.reg_stats().is_some(),
                reg,
                "{label}: register pass availability mismatch"
            );
            out.push((label, inst.invoke(&mut NoHost, name, args)));
        }
        out
    }

    fn assert_matrix_agrees(bytes: &[u8], name: &str, args: &[Value], ctx: &str) {
        let outcomes = run_matrix(bytes, name, args);
        let (_, oracle) = &outcomes[0];
        for (label, outcome) in &outcomes[1..] {
            assert_eq!(
                oracle, outcome,
                "{ctx}: {label} engine diverges from oracle"
            );
        }
    }

    /// The oracle's outcome for an export (for pinning exact semantics;
    /// parity with the engine matrix is asserted separately).
    fn oracle_outcome(bytes: &[u8], name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let module = crate::load(bytes).unwrap();
        let mut interp =
            Instance::instantiate(&module, ExecMode::Interpreted, &mut NoHost).unwrap();
        interp.invoke(&mut NoHost, name, args)
    }

    #[test]
    fn flat_op_size_does_not_regress() {
        // The whole code array is walked on every dispatch. The floor is
        // set by `BrTable`'s fat `Box<[BrEntry]>` (16 bytes + tag = 24);
        // fused variants must fit inside it — constants that do not fit a
        // u32 stay in the plain `FusedBinopLK`/`Const` forms instead of
        // growing the enum.
        assert_eq!(std::mem::size_of::<FlatOp>(), 24);
    }

    #[test]
    fn truncated_body_is_an_error_not_a_panic() {
        // A body whose control is unbalanced (missing `End`) must surface
        // as an instantiation error even though it skipped validation.
        let module = Module {
            types: vec![FuncType {
                params: vec![],
                results: vec![],
            }],
            func_imports: vec![],
            funcs: vec![FuncBody {
                type_idx: 0,
                locals: vec![],
                code: vec![I::Block(BlockType::Empty), I::Nop],
            }],
            tables: vec![],
            memories: vec![],
            globals: vec![],
            exports: vec![],
            start: None,
            elems: vec![],
            data: vec![],
        };
        let err = Instance::instantiate(&module, ExecMode::Aot, &mut NoHost).unwrap_err();
        match err {
            Trap::Instantiation(msg) => assert!(msg.contains("flat lowering"), "{msg}"),
            other => panic!("expected Instantiation, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bodies_error_instead_of_panicking() {
        let cases: Vec<(&str, Vec<I>)> = vec![
            ("else without if", vec![I::Else, I::End]),
            ("unbalanced end", vec![I::End, I::End]),
            ("branch depth", vec![I::Br(7), I::End]),
            ("stack underflow", vec![I::I32Add, I::End]),
            (
                "trailing code after final end",
                vec![I::End, I::Nop, I::Nop],
            ),
            (
                "control instr by simple mapping",
                vec![I::I32Const(0), I::BrIf(9), I::End],
            ),
        ];
        for (what, code) in cases {
            let module = Module {
                types: vec![FuncType {
                    params: vec![],
                    results: vec![],
                }],
                func_imports: vec![],
                funcs: vec![FuncBody {
                    type_idx: 0,
                    locals: vec![],
                    code,
                }],
                tables: vec![],
                memories: vec![],
                globals: vec![],
                exports: vec![],
                start: None,
                elems: vec![],
                data: vec![],
            };
            let err = Instance::instantiate(&module, ExecMode::Aot, &mut NoHost);
            assert!(
                matches!(err, Err(Trap::Instantiation(_))),
                "{what}: expected Err(Instantiation), got {err:?}"
            );
        }
    }

    #[test]
    fn fusion_emits_expected_superinstructions() {
        // sum-loop: cond fuses to a cmp-branch, the body to LL/LK sinks.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32, ValType::I32],
            vec![
                I::Block(BlockType::Empty),
                I::Loop(BlockType::Empty),
                I::LocalGet(1),
                I::LocalGet(0),
                I::I32LtS,
                I::I32Eqz,
                I::BrIf(1),
                I::LocalGet(2),
                I::LocalGet(1),
                I::I32Add,
                I::LocalSet(2),
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                I::Br(0),
                I::End,
                I::End,
                I::LocalGet(2),
                I::End,
            ],
        );
        b.export_func("sum", f);
        let module = crate::load(&b.build()).unwrap();
        let flat = FlatModule::compile_full(&module, true, false, true).unwrap();
        let stats = flat.fusion_stats();
        assert_eq!(stats.cmp_br, 1, "loop exit must fuse: {stats:?}");
        assert_eq!(stats.binop_ll_set, 1, "{stats:?}");
        assert_eq!(stats.binop_lk_set, 1, "{stats:?}");
        let unfused = FlatModule::compile_full(&module, false, false, true).unwrap();
        assert_eq!(unfused.fusion_stats().total(), 0);
        // And the fused loop still computes the same sum.
        assert_matrix_agrees(&b.build(), "sum", &[Value::I32(10)], "sum loop");
        let oracle = oracle_outcome(&b.build(), "sum", &[Value::I32(10)]);
        assert_eq!(oracle.unwrap(), vec![Value::I32(45)]);
    }

    #[test]
    fn eqz_chain_polarity_is_preserved() {
        // `cond; eqz^n; br_if` for n = 0..4: each n flips the polarity;
        // fused and unfused engines must agree on which arm runs.
        for n_eqz in 0..4 {
            let mut body = vec![
                I::Block(BlockType::Empty),
                I::Loop(BlockType::Empty),
                I::LocalGet(1),
                I::LocalGet(0),
                I::I32GeS,
            ];
            for _ in 0..n_eqz {
                body.push(I::I32Eqz);
            }
            // Exit when (i >= n) truthiness (xor the chain parity) holds.
            body.push(I::BrIf(1));
            body.extend([
                I::LocalGet(1),
                I::I32Const(1),
                I::I32Add,
                I::LocalSet(1),
                I::Br(0),
                I::End,
                I::End,
                I::LocalGet(1),
                I::End,
            ]);
            let mut b = ModuleBuilder::new();
            let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
            let f = b.add_func(ty, &[ValType::I32], body);
            b.export_func("f", f);
            let bytes = b.build();
            // Even parities loop until i >= n (returning n); odd parities
            // invert the test and exit on the first iteration (returning
            // 0) — either way all three engines must agree.
            assert_matrix_agrees(&bytes, "f", &[Value::I32(3)], &format!("eqz chain {n_eqz}"));
        }
    }

    #[test]
    fn fused_div_traps_match_oracle() {
        // `local.get; local.get; div` fuses to FusedBinopLL(Div): the
        // INT_MIN/-1 overflow, the /0 trap and the INT_MIN%-1 == 0
        // non-trap must be bit-identical to the oracle in both flat modes.
        for (op, name) in [
            (I::I32DivS, "div_s"),
            (I::I32RemS, "rem_s"),
            (I::I32DivU, "div_u"),
            (I::I32RemU, "rem_u"),
        ] {
            let mut b = ModuleBuilder::new();
            let ty = b.add_type(&[ValType::I32, ValType::I32], &[ValType::I32]);
            let f = b.add_func(
                ty,
                &[],
                vec![I::LocalGet(0), I::LocalGet(1), op.clone(), I::End],
            );
            b.export_func(name, f);
            let bytes = b.build();
            for (a, d) in [
                (i32::MIN, -1),
                (1, 0),
                (i32::MIN, 0),
                (7, -3),
                (-7, 3),
                (i32::MIN, 1),
            ] {
                assert_matrix_agrees(
                    &bytes,
                    name,
                    &[Value::I32(a), Value::I32(d)],
                    &format!("{name}({a},{d})"),
                );
            }
        }
        // i64 equivalents through the fused path.
        for (op, name) in [(I::I64DivS, "div_s64"), (I::I64RemS, "rem_s64")] {
            let mut b = ModuleBuilder::new();
            let ty = b.add_type(&[ValType::I64, ValType::I64], &[ValType::I64]);
            let f = b.add_func(
                ty,
                &[],
                vec![I::LocalGet(0), I::LocalGet(1), op.clone(), I::End],
            );
            b.export_func(name, f);
            let bytes = b.build();
            for (a, d) in [(i64::MIN, -1), (1, 0), (i64::MIN, 0), (9, -4)] {
                assert_matrix_agrees(
                    &bytes,
                    name,
                    &[Value::I64(a), Value::I64(d)],
                    &format!("{name}({a},{d})"),
                );
            }
        }
    }

    #[test]
    fn fused_lk_div_overflow_traps() {
        // `local.get; const -1; i32.div_s; local.set` fuses to
        // FusedBinopLKSet; INT_MIN / -1 must still trap with overflow.
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                I::LocalGet(0),
                I::I32Const(-1),
                I::I32DivS,
                I::LocalSet(1),
                I::LocalGet(1),
                I::End,
            ],
        );
        b.export_func("divk", f);
        let bytes = b.build();
        let module = crate::load(&bytes).unwrap();
        let flat = FlatModule::compile_full(&module, true, false, true).unwrap();
        assert_eq!(flat.fusion_stats().binop_lk_set, 1, "LKSet must fuse");
        for a in [i32::MIN, 42, -42] {
            assert_matrix_agrees(&bytes, "divk", &[Value::I32(a)], &format!("divk({a})"));
        }
        let oracle = oracle_outcome(&bytes, "divk", &[Value::I32(i32::MIN)]);
        assert_eq!(oracle.unwrap_err(), Trap::IntegerOverflow);
    }

    #[test]
    fn div_in_fused_set_window_retires_exactly() {
        // The same LKSet shape as above, profiled: the trap point sits
        // mid-window (`get; const; div; set` fuses, the set's retirement
        // deferred until the div succeeds). On trap every rung must
        // retire exactly the oracle's 3 guest ops (get, const, div —
        // inclusive of the trapping div); on success all 5 (plus the
        // trailing re-get of the local).
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[ValType::I32],
            vec![
                I::LocalGet(0),
                I::I32Const(-1),
                I::I32DivS,
                I::LocalSet(1),
                I::LocalGet(1),
                I::End,
            ],
        );
        b.export_func("divk", f);
        let bytes = b.build();
        let module = crate::load(&bytes).unwrap();
        let flat = FlatModule::compile_full(&module, true, false, true).unwrap();
        assert_eq!(flat.fusion_stats().binop_lk_set, 1, "LKSet must fuse");
        for (arg, expect_trap, expect_instret) in
            [(i32::MIN, true, 3), (42, false, 5), (-42, false, 5)]
        {
            for (label, mode, fuse, reg) in [
                ("oracle", ExecMode::Interpreted, true, true),
                ("flat", ExecMode::Aot, false, false),
                ("fused", ExecMode::Aot, true, false),
                ("register", ExecMode::Aot, true, true),
            ] {
                let mut inst = Instance::instantiate_with_profile(
                    &module,
                    mode,
                    fuse,
                    reg,
                    crate::profile::ProfileMode::Count,
                    &mut NoHost,
                )
                .unwrap();
                let outcome = inst.invoke(&mut NoHost, "divk", &[Value::I32(arg)]);
                assert_eq!(outcome.is_err(), expect_trap, "{label} divk({arg})");
                let p = inst.profile().expect("counting instance profiles");
                assert_eq!(
                    p.instret, expect_instret,
                    "{label} divk({arg}) retired the wrong guest-op count"
                );
                assert_eq!(p.traps, u64::from(expect_trap), "{label} divk({arg}) traps");
            }
        }
    }

    #[test]
    fn br_table_out_of_range_clamps_to_default_in_all_engines() {
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(
            ty,
            &[],
            vec![
                I::Block(BlockType::Empty),
                I::Block(BlockType::Empty),
                I::LocalGet(0),
                I::BrTable {
                    targets: vec![0],
                    default: 1,
                },
                I::End,
                I::I32Const(10),
                I::Return,
                I::End,
                I::I32Const(20),
                I::End,
            ],
        );
        b.export_func("route", f);
        let bytes = b.build();
        for arg in [0, 1, 2, i32::MAX, -1] {
            assert_matrix_agrees(
                &bytes,
                "route",
                &[Value::I32(arg)],
                &format!("route({arg})"),
            );
        }
        // -1 reads as u32::MAX: firmly out of range, must take the default.
        let oracle = oracle_outcome(&bytes, "route", &[Value::I32(-1)]);
        assert_eq!(oracle.unwrap(), vec![Value::I32(20)]);
    }

    #[test]
    fn fused_load_store_oob_traps_match() {
        // `local.get; load` / `local.get; store` fuse to the direct
        // frame-slot addressing path; out-of-bounds must still trap with
        // MemoryOutOfBounds in every engine, including offset overflow.
        use crate::instr::MemArg;
        let mut b = ModuleBuilder::new();
        b.add_memory(1, Some(1));
        let lty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let load = b.add_func(
            lty,
            &[],
            vec![I::LocalGet(0), I::I32Load(MemArg::new(2, 8)), I::End],
        );
        b.export_func("load", load);
        let sty = b.add_type(&[ValType::I32, ValType::I32], &[]);
        let store = b.add_func(
            sty,
            &[],
            vec![
                I::LocalGet(0),
                I::LocalGet(1),
                I::I32Store(MemArg::new(2, 8)),
                I::End,
            ],
        );
        b.export_func("store", store);
        let bytes = b.build();
        let module = crate::load(&bytes).unwrap();
        let flat = FlatModule::compile_full(&module, true, false, true).unwrap();
        let stats = flat.fusion_stats();
        assert!(stats.load_l + stats.add_load + stats.idx_load > 0 || stats.store_l > 0);
        for addr in [0, 65520, 65529, 65536, -1, i32::MAX] {
            assert_matrix_agrees(&bytes, "load", &[Value::I32(addr)], &format!("load {addr}"));
            assert_matrix_agrees(
                &bytes,
                "store",
                &[Value::I32(addr), Value::I32(7)],
                &format!("store {addr}"),
            );
        }
        let oracle = oracle_outcome(&bytes, "load", &[Value::I32(65536)]);
        assert_eq!(oracle.unwrap_err(), Trap::MemoryOutOfBounds);
    }

    #[test]
    fn memory_grow_failure_returns_minus_one_in_all_engines() {
        // Growing past the declared max must return -1 (not trap) and do
        // so identically across engines.
        let mut b = ModuleBuilder::new();
        b.add_memory(1, Some(2));
        let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
        let f = b.add_func(ty, &[], vec![I::LocalGet(0), I::MemoryGrow, I::End]);
        b.export_func("grow", f);
        let bytes = b.build();
        for delta in [0, 1, 2, 1000, -1] {
            assert_matrix_agrees(
                &bytes,
                "grow",
                &[Value::I32(delta)],
                &format!("grow {delta}"),
            );
        }
        let oracle = oracle_outcome(&bytes, "grow", &[Value::I32(1000)]);
        assert_eq!(oracle.unwrap(), vec![Value::I32(-1)]);
    }

    #[test]
    fn host_result_arity_mismatch_traps_identically_in_every_engine() {
        // A HostEnv that violates its declared result arity must raise
        // the same Host trap in every engine, instead of silently reading
        // stale slots (register form) or corrupting the operand stack
        // (stack forms).
        use crate::exec::HostEnv;
        struct BadHost;
        impl HostEnv for BadHost {
            fn call(
                &mut self,
                _module: &str,
                _name: &str,
                _memory: &mut Memory,
                _args: &[Value],
            ) -> Result<Vec<Value>, Trap> {
                Ok(Vec::new()) // declared () -> i32, returns nothing
            }
        }
        let mut b = ModuleBuilder::new();
        let ty = b.add_type(&[], &[ValType::I32]);
        let imp = b.import_func("env", "f", ty);
        let g = b.add_func(ty, &[], vec![I::Call(imp), I::End]);
        b.export_func("g", g);
        // The import itself is also exported: the direct-invoke path must
        // enforce the same guard as guest-initiated calls.
        b.export_func("f", imp);
        let module = crate::load(&b.build()).unwrap();
        for export in ["g", "f"] {
            let mut outcomes = Vec::new();
            let mut interp = Instance::instantiate(&module, ExecMode::Interpreted, &mut BadHost)
                .expect("no start function, instantiation cannot call the host");
            outcomes.push(("oracle", interp.invoke(&mut BadHost, export, &[])));
            for (label, fuse, reg) in ENGINE_MATRIX {
                let mut inst = Instance::instantiate_with_engine(
                    &module,
                    ExecMode::Aot,
                    fuse,
                    reg,
                    &mut BadHost,
                )
                .unwrap();
                outcomes.push((label, inst.invoke(&mut BadHost, export, &[])));
            }
            for (label, outcome) in outcomes {
                match outcome {
                    Err(Trap::Host(msg)) => {
                        assert!(
                            msg.contains("returned 0 results"),
                            "{label}/{export}: {msg}"
                        );
                    }
                    other => panic!("{label}/{export}: expected Host trap, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn float_bits_roundtrip_through_slots() {
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let s = slot_from_value(Value::F64(v));
            assert_eq!(value_from_slot(ValType::F64, s), Value::F64(v));
        }
        let nan = f64::NAN;
        let s = slot_from_value(Value::F64(nan));
        match value_from_slot(ValType::F64, s) {
            Value::F64(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            _ => panic!(),
        }
        for v in [0.0f32, -0.0, 3.25, f32::MIN_POSITIVE] {
            let s = slot_from_value(Value::F32(v));
            assert_eq!(value_from_slot(ValType::F32, s), Value::F32(v));
        }
    }
}

//! **watz-fleet**: attestation as a service, at fleet scale.
//!
//! The paper's relying party (Fig 2) appraises one attester at a time; the
//! [`watz_runtime`] `VerifierServer` mirrors that faithfully — one listener
//! thread, one blocking session per accepted connection. This crate scales
//! the same four-message protocol to fleets:
//!
//! * [`service`] — a concurrent verifier service: a configurable worker
//!   pool drains accepted connections from a shared queue, every
//!   Msg0→Msg3 session runs as an explicit non-blocking state machine
//!   (a slow or stalled attester never blocks the fleet), and queued
//!   `msg2`s are appraised in **batches** so one secure-world entry
//!   amortises across many sessions. Per-outcome statistics
//!   (served / rejected / malformed / timed-out) are first-class.
//! * [`sim`] — a sharded device registry and simulator: boot N simulated
//!   devices across K shards (each shard its own `TrustedOs`/`Network`),
//!   drive them through concurrent attestation sessions, and report
//!   throughput and latency percentiles.
//!
//! # Example
//!
//! ```
//! use watz_fleet::sim::{FleetSim, FleetSimConfig};
//!
//! let sim = FleetSim::boot(FleetSimConfig {
//!     shards: 2,
//!     endorsed: 6,
//!     rogue: 1,
//!     stale: 1,
//!     ..FleetSimConfig::default()
//! })
//! .unwrap();
//! let report = sim.run();
//! assert_eq!(report.provisioned, 6);
//! assert_eq!(report.rejected, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;
pub mod sim;

pub use service::{
    appraise_batch, percentiles_us, prepare_msg1_batch, ConfigError, FleetConfig, FleetStats,
    FleetVerifier, PhaseStats, SpawnError,
};
pub use sim::{
    DeviceKind, DeviceRecord, FleetReport, FleetSim, FleetSimConfig, OpenLoopConfig, OpenLoopReport,
};

//! The concurrent verifier service.
//!
//! Architecture: one **acceptor** thread pulls connections off the
//! listener and dispatches them **round-robin onto per-worker admission
//! channels** — there is no shared queue and no lock anywhere in a
//! worker's hot loop. Each of the N **worker** threads exclusively owns
//! its admitted sessions and runs them as explicit non-blocking state
//! machines ([`Connection::try_recv_detailed`] only — a worker never
//! blocks on a single peer). Sessions carry a deadline, so a stalled
//! attester is evicted instead of wedging the pool.
//!
//! Workers are **event-driven**: after a sweep that makes no progress, a
//! worker blocks on a [`crossbeam::channel::Select`] registered over its
//! admission channel plus every live session's receiver, with the wait
//! bounded by the nearest session deadline. An idle worker therefore
//! sleeps until a real event (new connection, message, peer hangup,
//! shutdown) instead of burning a fixed poll interval — the fix for the
//! flat-to-negative worker-scaling curve the polled shared-queue design
//! produced.
//!
//! Shutdown is event-driven too: stopping unbinds the port, which wakes
//! the acceptor's blocking accept with a disconnect; the acceptor exits
//! and drops the admission senders, which in turn wakes every worker's
//! select with a disconnected admission channel. Workers drain their
//! buffered admissions and in-flight sessions, then exit — no session is
//! lost across the per-worker queues.
//!
//! Both secure-world steps are batched. Workers sweep all their sessions
//! first, staging every `msg0` and `msg2` that arrived, then run each
//! stage's whole batch inside **one** [`Platform::enter_secure`]
//! ([`prepare_msg1_batch`] for the challenge derivation, [`appraise_batch`]
//! for the evidence appraisal) — amortising the world-switch cost across
//! queued sessions exactly where the paper's single-session design pays
//! it per attester.
//!
//! **Observability** mirrors the engine's zero-overhead-when-off
//! discipline ([`watz_wasm::profile`](../../watz-wasm/src/profile.rs)):
//! each session records phase timestamps (accept→msg0→msg1→msg2→msg3)
//! into [`PhaseStats`], but the recording reuses the `Instant`s the sweep
//! already takes for deadline bookkeeping, buffers samples in a
//! worker-local struct, and touches the shared mutex at most once per
//! sweep — and only on sweeps where some session actually crossed a phase
//! boundary. An idle or steady-state worker pays nothing beyond the
//! deadline clock it always read.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Select, Sender, TryRecvError};
use optee_sim::net::{Connection, RecvError, TryRecv, DEFAULT_ACCEPT_BACKLOG, DEFAULT_ACCEPT_POLL};
use optee_sim::{TeeError, TrustedOs};
use parking_lot::Mutex;
use tz_hal::Platform;
use watz_attestation::verifier::{Verifier, VerifierConfig};
use watz_attestation::wire::{
    Msg0, Msg1, Msg2, Msg3, APPRAISAL_FAILED, INTEGRITY_FAILED, SERVER_BUSY,
};
use watz_attestation::RaError;
use watz_crypto::fortuna::Fortuna;

/// Tuning knobs for a [`FleetVerifier`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads, each owning its own admission channel and
    /// sessions (the acceptor dispatches round-robin).
    pub workers: usize,
    /// Upper bound on one blocking accept before the acceptor re-checks
    /// its stop flag — a liveness backstop, not a poll cadence: the
    /// accept wakes immediately on a connection or on port unbind.
    pub accept_poll: Duration,
    /// Listener backlog: established-but-unaccepted connections buffered
    /// before further `connect`s block (sized for connect storms).
    pub accept_backlog: usize,
    /// Per-session deadline: a session that makes no progress for this
    /// long is evicted and counted as timed out.
    pub session_timeout: Duration,
    /// In-flight session cap per worker (back-pressure: connections past
    /// the cap wait in that worker's admission channel).
    pub max_sessions_per_worker: usize,
    /// Admission-queue depth per worker beyond the in-flight cap. Once a
    /// worker owes `max_sessions_per_worker + max_queued_per_worker`
    /// uncompleted sessions, the acceptor **sheds** further connections
    /// bound for it: an immediate [`SERVER_BUSY`] reply instead of an
    /// unbounded queue, keeping admission-to-reply latency bounded under
    /// overload.
    pub max_queued_per_worker: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            accept_poll: DEFAULT_ACCEPT_POLL,
            accept_backlog: DEFAULT_ACCEPT_BACKLOG,
            session_timeout: Duration::from_secs(2),
            max_sessions_per_worker: 64,
            max_queued_per_worker: 256,
        }
    }
}

impl FleetConfig {
    /// Rejects configurations that would misbehave silently: a service
    /// with zero workers or a zero session cap can never make progress,
    /// a zero deadline evicts every session on its first sweep, and a
    /// zero backlog cannot accept a single connection.
    ///
    /// # Errors
    ///
    /// The first violated rule as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.session_timeout.is_zero() {
            return Err(ConfigError::ZeroSessionTimeout);
        }
        if self.accept_backlog == 0 {
            return Err(ConfigError::ZeroBacklog);
        }
        if self.max_sessions_per_worker == 0 {
            return Err(ConfigError::ZeroSessionCap);
        }
        Ok(())
    }
}

/// A [`FleetConfig`] rule violation (see [`FleetConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: nothing would ever process a session.
    ZeroWorkers,
    /// `session_timeout == 0`: every session would be evicted instantly.
    ZeroSessionTimeout,
    /// `accept_backlog == 0`: no connection could ever be established.
    ZeroBacklog,
    /// `max_sessions_per_worker == 0`: workers could never admit anyone.
    ZeroSessionCap,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "fleet config: workers must be >= 1"),
            ConfigError::ZeroSessionTimeout => {
                write!(f, "fleet config: session_timeout must be non-zero")
            }
            ConfigError::ZeroBacklog => write!(f, "fleet config: accept_backlog must be >= 1"),
            ConfigError::ZeroSessionCap => {
                write!(f, "fleet config: max_sessions_per_worker must be >= 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why [`FleetVerifier::spawn`] failed.
#[derive(Debug)]
pub enum SpawnError {
    /// The configuration was rejected by [`FleetConfig::validate`].
    Config(ConfigError),
    /// The listener could not be bound (port taken).
    Net(TeeError),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Config(e) => write!(f, "{e}"),
            SpawnError::Net(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<SpawnError> for TeeError {
    fn from(e: SpawnError) -> Self {
        match e {
            SpawnError::Config(c) => TeeError::Net(c.to_string()),
            SpawnError::Net(t) => t,
        }
    }
}

/// Per-outcome statistics of a [`FleetVerifier`] (a snapshot).
///
/// Every accepted connection ends in exactly one of the six outcome
/// buckets, so `served + rejected + malformed + timed_out + disconnected
/// + shed` equals the number of completed sessions — and, after a drain,
/// equals `accepted` exactly, faults or not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Sessions that passed appraisal and received `msg3`.
    pub served: u64,
    /// Sessions that reached appraisal and failed it (bad MAC, unknown
    /// device, untrusted measurement, outdated version, ...).
    pub rejected: u64,
    /// Sessions dropped because a message failed to parse.
    pub malformed: u64,
    /// Sessions evicted at their deadline (stalled mid-handshake but
    /// still connected).
    pub timed_out: u64,
    /// Sessions whose peer hung up before a verdict (dropped connection
    /// mid-handshake, or unreachable while a reply was being sent) —
    /// kept distinct from `timed_out` so a fleet operator can tell
    /// flapping devices from slow ones.
    pub disconnected: u64,
    /// Connections refused by admission control with a [`SERVER_BUSY`]
    /// reply because their worker was already saturated (an outcome
    /// bucket: a shed connection is accepted, answered, and closed).
    pub shed: u64,
    /// Individual `msg2` appraisals performed.
    pub appraised: u64,
    /// Secure-world entries spent on those appraisals: one per batch, so
    /// `appraisal_batches <= appraised`, with equality only when no two
    /// `msg2`s were ever queued together.
    pub appraisal_batches: u64,
    /// Secure-world entries spent deriving `msg1` challenges: one per
    /// batch of queued `msg0`s, mirroring `appraisal_batches`.
    pub msg1_batches: u64,
    /// Diagnostic sub-counter (not an outcome bucket, overlaps
    /// `malformed`/`rejected`): failures that are tamper-evident — parse
    /// errors plus integrity-flavoured appraisal failures (bad MAC, bad
    /// signature, session-key or anchor mismatch). Under an injected
    /// corruption schedule this is where every tampered frame must land.
    pub corrupt_rejected: u64,
    /// Diagnostic sub-counter: sessions whose `msg0` carried a non-zero
    /// attempt counter, i.e. the supplicant said it was retrying.
    pub retries_observed: u64,
}

impl FleetStats {
    /// Sessions that ran to an outcome.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.served
            + self.rejected
            + self.malformed
            + self.timed_out
            + self.disconnected
            + self.shed
    }

    /// Merges another snapshot into this one (shard aggregation).
    pub fn merge(&mut self, other: &FleetStats) {
        self.accepted += other.accepted;
        self.served += other.served;
        self.rejected += other.rejected;
        self.malformed += other.malformed;
        self.timed_out += other.timed_out;
        self.disconnected += other.disconnected;
        self.shed += other.shed;
        self.appraised += other.appraised;
        self.appraisal_batches += other.appraisal_batches;
        self.msg1_batches += other.msg1_batches;
        self.corrupt_rejected += other.corrupt_rejected;
        self.retries_observed += other.retries_observed;
    }
}

/// Per-phase handshake timing samples (microseconds), one entry per
/// session that crossed the phase boundary.
///
/// The four phases itemize verifier-side session latency the same way
/// the engine's `ExecProfile` itemizes kernel time: where a session's
/// wall clock actually went between accept and the final verdict.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Accept (admission to a worker) → `msg0` arrival.
    pub accept_to_msg0: Vec<u64>,
    /// `msg0` arrival → `msg1` challenge sent (includes the batched
    /// secure-world entry the session waited on).
    pub msg0_to_msg1: Vec<u64>,
    /// `msg1` sent → evidence-bearing `msg2` arrival (attester think
    /// time plus network).
    pub msg1_to_msg2: Vec<u64>,
    /// `msg2` arrival → verdict (`msg3` or rejection) sent (includes the
    /// batched appraisal entry).
    pub msg2_to_msg3: Vec<u64>,
}

impl PhaseStats {
    /// No phase boundary was ever crossed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accept_to_msg0.is_empty()
            && self.msg0_to_msg1.is_empty()
            && self.msg1_to_msg2.is_empty()
            && self.msg2_to_msg3.is_empty()
    }

    /// Merges another snapshot into this one (shard/worker aggregation).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.accept_to_msg0.extend_from_slice(&other.accept_to_msg0);
        self.msg0_to_msg1.extend_from_slice(&other.msg0_to_msg1);
        self.msg1_to_msg2.extend_from_slice(&other.msg1_to_msg2);
        self.msg2_to_msg3.extend_from_slice(&other.msg2_to_msg3);
    }

    /// `(name, samples)` pairs in handshake order, for reporting.
    #[must_use]
    pub fn phases(&self) -> [(&'static str, &[u64]); 4] {
        [
            ("accept→msg0", &self.accept_to_msg0),
            ("msg0→msg1", &self.msg0_to_msg1),
            ("msg1→msg2", &self.msg1_to_msg2),
            ("msg2→msg3", &self.msg2_to_msg3),
        ]
    }
}

/// p50/p95/p99 of unsorted microsecond samples; `None` when empty.
#[must_use]
pub fn percentiles_us(samples: &[u64]) -> Option<(u64, u64, u64)> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| {
        let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    Some((rank(50.0), rank(95.0), rank(99.0)))
}

/// Shared atomic counters behind [`FleetStats`].
#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    timed_out: AtomicU64,
    disconnected: AtomicU64,
    shed: AtomicU64,
    appraised: AtomicU64,
    appraisal_batches: AtomicU64,
    msg1_batches: AtomicU64,
    corrupt_rejected: AtomicU64,
    retries_observed: AtomicU64,
    /// Phase timing samples; locked once per sweep at most (see the
    /// module-level observability note).
    phases: Mutex<PhaseStats>,
}

impl StatsInner {
    fn snapshot(&self) -> FleetStats {
        FleetStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
            timed_out: self.timed_out.load(Ordering::SeqCst),
            disconnected: self.disconnected.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            appraised: self.appraised.load(Ordering::SeqCst),
            appraisal_batches: self.appraisal_batches.load(Ordering::SeqCst),
            msg1_batches: self.msg1_batches.load(Ordering::SeqCst),
            corrupt_rejected: self.corrupt_rejected.load(Ordering::SeqCst),
            retries_observed: self.retries_observed.load(Ordering::SeqCst),
        }
    }

    /// Books a session whose reply could not be delivered: the peer was
    /// gone at verdict time, so the verdict bucket (already bumped, see
    /// the observer-ordering note in the sweep) is rolled back in favour
    /// of `disconnected`.
    fn undeliverable(&self, verdict_bucket: &AtomicU64) {
        verdict_bucket.fetch_sub(1, Ordering::SeqCst);
        self.disconnected.fetch_add(1, Ordering::SeqCst);
    }
}

/// True for appraisal failures that are tamper-evident — what an injected
/// corruption schedule produces, as opposed to honest-but-unwelcome
/// evidence (unknown device, stale version).
fn is_integrity_failure(e: &RaError) -> bool {
    matches!(
        e,
        RaError::BadMac
            | RaError::BadSignature
            | RaError::SessionKeyMismatch
            | RaError::AnchorMismatch
            | RaError::Crypto(_)
            | RaError::Malformed(_)
    )
}

/// Appraises a batch of `msg2`s inside a single secure-world entry.
///
/// This is the batched path [`FleetVerifier`] workers use; it is public
/// so benches and tests can measure the amortisation directly (one
/// [`Platform::enter_secure`] regardless of batch size).
pub fn appraise_batch(
    platform: &Platform,
    batch: Vec<(&mut Verifier, &Msg2)>,
) -> Vec<Result<Msg3, RaError>> {
    platform.enter_secure(|| {
        batch
            .into_iter()
            .map(|(verifier, msg2)| verifier.handle_msg2(msg2).map(|(msg3, _)| msg3))
            .collect()
    })
}

/// Derives `msg1` challenges for a batch of `msg0`s inside a single
/// secure-world entry — the `msg0` counterpart of [`appraise_batch`]
/// (one [`Platform::enter_secure`] regardless of batch size).
pub fn prepare_msg1_batch(
    platform: &Platform,
    batch: Vec<(&mut Verifier, &Msg0)>,
    rng: &mut Fortuna,
) -> Vec<Result<Msg1, RaError>> {
    platform.enter_secure(|| {
        batch
            .into_iter()
            .map(|(verifier, msg0)| verifier.handle_msg0(msg0, rng).map(|(msg1, _)| msg1))
            .collect()
    })
}

/// Where one session stands in the Msg0→Msg3 exchange.
enum Phase {
    /// Waiting for the attester's `msg0`.
    AwaitMsg0,
    /// `msg1` sent; waiting for the evidence-bearing `msg2`.
    AwaitMsg2,
}

/// One in-flight attestation session owned by a worker.
struct Session {
    conn: Connection,
    verifier: Verifier,
    phase: Phase,
    deadline: Instant,
    /// Parsed `msg0` staged for the next challenge-derivation batch.
    pending_msg0: Option<Msg0>,
    /// Parsed `msg2` staged for the next appraisal batch.
    pending_msg2: Option<Msg2>,
    done: bool,
    /// The last frame processed, so a duplicated delivery (fault
    /// injection, flaky transport) is discarded instead of being parsed
    /// as the next protocol message and failing the session.
    last_frame: Option<Vec<u8>>,
    /// When this worker admitted the connection (phase-timing origin).
    admitted: Instant,
    /// When each handshake boundary was crossed; `None` until then.
    msg0_at: Option<Instant>,
    msg1_at: Option<Instant>,
    msg2_at: Option<Instant>,
}

impl Session {
    fn new(conn: Connection, verifier: Verifier, timeout: Duration) -> Self {
        let admitted = Instant::now();
        Session {
            conn,
            verifier,
            phase: Phase::AwaitMsg0,
            deadline: admitted + timeout,
            pending_msg0: None,
            pending_msg2: None,
            done: false,
            last_frame: None,
            admitted,
            msg0_at: None,
            msg1_at: None,
            msg2_at: None,
        }
    }
}

/// Saturating `Duration` → whole microseconds for phase samples.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Everything a worker thread needs, bundled to keep spawns tidy.
struct WorkerCtx {
    /// This worker's private admission channel; the acceptor holds the
    /// sending half and drops it on shutdown, which is the drain signal.
    admission: Receiver<Connection>,
    stats: Arc<StatsInner>,
    platform: Platform,
    config: VerifierConfig,
    session_timeout: Duration,
    max_sessions: usize,
    /// Sessions the acceptor has dispatched to this worker and the worker
    /// has not completed (queued + in-flight). The acceptor reads it for
    /// the shed decision; [`FleetVerifier::live_sessions`] sums it for
    /// leak checks.
    load: Arc<AtomicUsize>,
    rng: Fortuna,
}

/// Pulls every session's staged message (if any) out next to the session
/// itself, so batch processing never depends on index bookkeeping. Shared
/// by the msg0 and msg2 batch paths.
fn take_staged<M>(
    sessions: &mut [Session],
    take: impl Fn(&mut Session) -> Option<M>,
) -> Vec<(&mut Session, M)> {
    sessions
        .iter_mut()
        .filter_map(|s| take(s).map(|m| (s, m)))
        .collect()
}

fn worker_loop(mut ctx: WorkerCtx) {
    let mut sessions: Vec<Session> = Vec::new();
    // Raised when the acceptor has exited (admission senders dropped);
    // buffered admissions were already delivered first, so once this is
    // set and the session list empties, the worker is fully drained.
    let mut draining = false;
    loop {
        // Admit dispatched connections up to the in-flight cap — from
        // this worker's own channel, no shared lock. Deadlines start at
        // admission, so a connection that waited in the channel is not
        // unfairly aged.
        while sessions.len() < ctx.max_sessions {
            match ctx.admission.try_recv() {
                Ok(conn) => sessions.push(Session::new(
                    conn,
                    Verifier::new(ctx.config.clone()),
                    ctx.session_timeout,
                )),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    draining = true;
                    break;
                }
            }
        }
        if draining && sessions.is_empty() {
            break;
        }

        let mut progressed = false;
        let now = Instant::now();
        let mut staged_msg0 = 0usize;
        let mut staged = 0usize;
        // Worker-local phase samples for this sweep; merged into the
        // shared stats under one lock acquisition at the end.
        let mut local_phases = PhaseStats::default();

        // Sweep every session once; never block on any single peer.
        for session in sessions.iter_mut() {
            match session.conn.try_recv_detailed() {
                TryRecv::Message(raw) => {
                    progressed = true;
                    // Duplicate delivery: drop the copy, keep the session.
                    if session.last_frame.as_deref() == Some(raw.as_slice()) {
                        continue;
                    }
                    session.deadline = now + ctx.session_timeout;
                    match session.phase {
                        // Outcome counters are bumped BEFORE the reply is
                        // sent: the peer's recv() unblocks on the send, so
                        // the reverse order would let an observer see a
                        // completed session not yet in the stats.
                        Phase::AwaitMsg0 => {
                            let Ok(msg0) = Msg0::from_bytes(&raw) else {
                                ctx.stats.malformed.fetch_add(1, Ordering::SeqCst);
                                ctx.stats.corrupt_rejected.fetch_add(1, Ordering::SeqCst);
                                let _ = session.conn.send(INTEGRITY_FAILED);
                                session.done = true;
                                continue;
                            };
                            if msg0.attempt > 0 {
                                ctx.stats.retries_observed.fetch_add(1, Ordering::SeqCst);
                            }
                            session.pending_msg0 = Some(msg0);
                            session.last_frame = Some(raw);
                            staged_msg0 += 1;
                            session.msg0_at = Some(now);
                            local_phases
                                .accept_to_msg0
                                .push(micros(now.saturating_duration_since(session.admitted)));
                        }
                        Phase::AwaitMsg2 => {
                            let Ok(msg2) = Msg2::from_bytes(&raw) else {
                                ctx.stats.malformed.fetch_add(1, Ordering::SeqCst);
                                ctx.stats.corrupt_rejected.fetch_add(1, Ordering::SeqCst);
                                let _ = session.conn.send(INTEGRITY_FAILED);
                                session.done = true;
                                continue;
                            };
                            session.pending_msg2 = Some(msg2);
                            session.last_frame = Some(raw);
                            staged += 1;
                            session.msg2_at = Some(now);
                            if let Some(msg1_at) = session.msg1_at {
                                local_phases
                                    .msg1_to_msg2
                                    .push(micros(now.saturating_duration_since(msg1_at)));
                            }
                        }
                    }
                }
                TryRecv::Empty => {
                    // Idle peer: evict only at the deadline.
                    if now >= session.deadline {
                        ctx.stats.timed_out.fetch_add(1, Ordering::SeqCst);
                        session.done = true;
                        progressed = true;
                    }
                }
                TryRecv::Disconnected => {
                    // Dead peer: free the session slot immediately rather
                    // than pinning it until the deadline, and account it
                    // as a disconnect, not a timeout.
                    ctx.stats.disconnected.fetch_add(1, Ordering::SeqCst);
                    session.done = true;
                    progressed = true;
                }
            }
        }

        // Batched challenge derivation: all msg0s staged this sweep share
        // one secure-world entry via `prepare_msg1_batch`, exactly like
        // msg2 appraisal below.
        if staged_msg0 > 0 {
            let mut batch_sessions = take_staged(&mut sessions, |s| s.pending_msg0.take());
            let outcomes = prepare_msg1_batch(
                &ctx.platform,
                batch_sessions
                    .iter_mut()
                    .map(|(s, msg0)| (&mut s.verifier, &*msg0))
                    .collect(),
                &mut ctx.rng,
            );
            ctx.stats.msg1_batches.fetch_add(1, Ordering::SeqCst);
            // One timestamp for the whole batch: every session in it
            // shared the same secure-world entry, so its challenge was
            // ready at the same moment.
            let sent_at = Instant::now();
            for ((session, _), outcome) in batch_sessions.iter_mut().zip(outcomes) {
                match outcome {
                    Ok(msg1) => {
                        if session.conn.send(&msg1.to_bytes()).is_err() {
                            // The peer vanished while we derived its
                            // challenge: a disconnect, not a timeout.
                            ctx.stats.disconnected.fetch_add(1, Ordering::SeqCst);
                            session.done = true;
                        } else {
                            session.phase = Phase::AwaitMsg2;
                            session.msg1_at = Some(sent_at);
                            if let Some(msg0_at) = session.msg0_at {
                                local_phases
                                    .msg0_to_msg1
                                    .push(micros(sent_at.saturating_duration_since(msg0_at)));
                            }
                        }
                    }
                    Err(e) => {
                        ctx.stats.rejected.fetch_add(1, Ordering::SeqCst);
                        let reply = if is_integrity_failure(&e) {
                            ctx.stats.corrupt_rejected.fetch_add(1, Ordering::SeqCst);
                            INTEGRITY_FAILED
                        } else {
                            APPRAISAL_FAILED
                        };
                        if session.conn.send(reply).is_err() {
                            ctx.stats.undeliverable(&ctx.stats.rejected);
                        }
                        session.done = true;
                    }
                }
            }
        }

        // Batched appraisal: all msg2s staged this sweep share one
        // secure-world entry via `appraise_batch`. One pass pulls each
        // staged msg2 out next to its own session's verifier, so nothing
        // depends on index bookkeeping.
        if staged > 0 {
            let mut batch_sessions = take_staged(&mut sessions, |s| s.pending_msg2.take());
            let outcomes = appraise_batch(
                &ctx.platform,
                batch_sessions
                    .iter_mut()
                    .map(|(s, msg2)| (&mut s.verifier, &*msg2))
                    .collect(),
            );
            ctx.stats.appraisal_batches.fetch_add(1, Ordering::SeqCst);
            ctx.stats
                .appraised
                .fetch_add(outcomes.len() as u64, Ordering::SeqCst);
            // As with msg1: the verdicts all left the shared appraisal
            // batch at once, so one timestamp covers the batch.
            let verdict_at = Instant::now();
            for ((session, _), outcome) in batch_sessions.iter_mut().zip(outcomes) {
                // The verdict bucket is still bumped before the reply
                // (observer ordering); if the reply cannot be delivered
                // the peer was already gone, so the session is re-booked
                // as disconnected — a hangup after msg2 must not count as
                // served.
                match outcome {
                    Ok(msg3) => {
                        ctx.stats.served.fetch_add(1, Ordering::SeqCst);
                        if session.conn.send(&msg3.to_bytes()).is_err() {
                            ctx.stats.undeliverable(&ctx.stats.served);
                        }
                    }
                    Err(e) => {
                        ctx.stats.rejected.fetch_add(1, Ordering::SeqCst);
                        let reply = if is_integrity_failure(&e) {
                            ctx.stats.corrupt_rejected.fetch_add(1, Ordering::SeqCst);
                            INTEGRITY_FAILED
                        } else {
                            APPRAISAL_FAILED
                        };
                        if session.conn.send(reply).is_err() {
                            ctx.stats.undeliverable(&ctx.stats.rejected);
                        }
                    }
                }
                // A verdict went out either way; both count as msg3 time.
                if let Some(msg2_at) = session.msg2_at {
                    local_phases
                        .msg2_to_msg3
                        .push(micros(verdict_at.saturating_duration_since(msg2_at)));
                }
                session.done = true;
            }
        }

        if !local_phases.is_empty() {
            ctx.stats.phases.lock().merge(&local_phases);
        }

        let before = sessions.len();
        sessions.retain(|s| !s.done);
        let completed_now = before - sessions.len();
        if completed_now > 0 {
            // The acceptor's shed decision reads this gauge; decrement
            // only once a session truly left the worker.
            ctx.load.fetch_sub(completed_now, Ordering::SeqCst);
        }
        if progressed {
            // Something moved; sweep again immediately — replies we just
            // sent typically provoke the peer's next message.
            continue;
        }

        // Event-driven wait: block on a select over the admission channel
        // (unless full or draining) and every live session's receiver.
        // Any message, hangup, new connection, or acceptor exit fires the
        // select; the nearest session deadline bounds the sleep so
        // evictions still happen on time. No fixed poll interval, no
        // idle CPU burn.
        let mut select = Select::new();
        if !draining && sessions.len() < ctx.max_sessions {
            select.recv(&ctx.admission);
        }
        for session in &sessions {
            select.recv(session.conn.receiver());
        }
        match sessions.iter().map(|s| s.deadline).min() {
            Some(deadline) => {
                let _ = select.ready_timeout(deadline.saturating_duration_since(Instant::now()));
            }
            // No sessions (and not draining, or we'd have exited): the
            // admission channel is registered and shutdown arrives as its
            // disconnect, so a fully blocking wait is safe.
            None => {
                let _ = select.ready();
            }
        }
    }
}

/// A fleet-scale verifier service: round-robin acceptor dispatch onto
/// per-worker admission channels, event-driven select-based workers,
/// non-blocking sessions, batched appraisal, per-outcome stats.
pub struct FleetVerifier {
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StatsInner>,
    /// Per-worker dispatched-but-not-completed gauges (shed decisions,
    /// leak checks).
    loads: Vec<Arc<AtomicUsize>>,
    port: u16,
    os: TrustedOs,
}

impl std::fmt::Debug for FleetVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FleetVerifier {{ port: {}, workers: {} }}",
            self.port,
            self.workers.len()
        )
    }
}

impl FleetVerifier {
    /// Spawns the service on `port` of the OS's loopback network.
    ///
    /// # Errors
    ///
    /// [`SpawnError::Config`] if the configuration fails
    /// [`FleetConfig::validate`]; [`SpawnError::Net`] if the port is
    /// taken.
    pub fn spawn(
        os: &TrustedOs,
        config: VerifierConfig,
        fleet: FleetConfig,
        port: u16,
    ) -> Result<Self, SpawnError> {
        fleet.validate().map_err(SpawnError::Config)?;
        let listener = os
            .network()
            .listen_with_backlog(port, fleet.accept_backlog)
            .map_err(SpawnError::Net)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());

        let mut admission_txs: Vec<Sender<Connection>> = Vec::new();
        let mut loads: Vec<Arc<AtomicUsize>> = Vec::new();
        let workers = (0..fleet.workers)
            .map(|i| {
                // Unbounded: the acceptor must never block on a slow
                // worker (back-pressure is the per-worker session cap
                // plus the shed threshold below, which bounds how much
                // can ever be queued here).
                let (tx, rx) = unbounded();
                admission_txs.push(tx);
                let load = Arc::new(AtomicUsize::new(0));
                loads.push(Arc::clone(&load));
                let ctx = WorkerCtx {
                    admission: rx,
                    stats: Arc::clone(&stats),
                    platform: os.platform().clone(),
                    config: config.clone(),
                    session_timeout: fleet.session_timeout,
                    max_sessions: fleet.max_sessions_per_worker,
                    load,
                    rng: os.kernel_prng(&format!("fleet-worker-{i}")),
                };
                std::thread::spawn(move || worker_loop(ctx))
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let loads = loads.clone();
            let accept_poll = fleet.accept_poll;
            // A worker saturates once it owes this many uncompleted
            // sessions; beyond it the acceptor sheds instead of queueing.
            let shed_at = fleet
                .max_sessions_per_worker
                .saturating_add(fleet.max_queued_per_worker);
            std::thread::spawn(move || {
                let mut next = 0usize;
                loop {
                    match listener.accept_detailed(accept_poll) {
                        Ok(conn) => {
                            stats.accepted.fetch_add(1, Ordering::SeqCst);
                            if loads[next].load(Ordering::SeqCst) >= shed_at {
                                // Load shedding: an immediate BUSY reply
                                // bounds admission-to-reply latency where
                                // an unbounded queue would let it grow
                                // with the backlog. Shed is an outcome
                                // bucket, so `accepted == completed()`
                                // still holds after a drain.
                                stats.shed.fetch_add(1, Ordering::SeqCst);
                                let _ = conn.send(SERVER_BUSY);
                            } else {
                                // Round-robin dispatch; the send is
                                // unbounded and the receiver outlives the
                                // acceptor, so it neither blocks nor
                                // fails.
                                loads[next].fetch_add(1, Ordering::SeqCst);
                                let _ = admission_txs[next].send(conn);
                            }
                            next = (next + 1) % admission_txs.len();
                        }
                        // Quiet listener: loop back into the accept. The
                        // stop flag is only a backstop — the real
                        // shutdown signal is the unbind below, so every
                        // connection buffered in the backlog (its peer's
                        // connect() already returned) is drained first,
                        // never silently dropped.
                        Err(RecvError::TimedOut) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                        // Port unbound and backlog drained: shutdown.
                        Err(RecvError::Disconnected) => break,
                    }
                }
                // Dropping admission_txs here disconnects every worker's
                // admission channel — the drain signal.
            })
        };

        Ok(FleetVerifier {
            stop,
            acceptor: Some(acceptor),
            workers,
            stats,
            loads,
            port,
            os: os.clone(),
        })
    }

    /// Sessions dispatched to workers and not yet completed (queued plus
    /// in-flight), summed across workers. Zero once every admitted
    /// session has reached an outcome — the "no leaked sessions" check
    /// of the chaos suite.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.loads.iter().map(|l| l.load(Ordering::SeqCst)).sum()
    }

    /// The port the service listens on.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A live snapshot of the per-outcome statistics.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        self.stats.snapshot()
    }

    /// A snapshot of the per-phase handshake timing samples.
    #[must_use]
    pub fn phase_stats(&self) -> PhaseStats {
        self.stats.phases.lock().clone()
    }

    /// Stops accepting, drains in-flight and queued sessions (bounded by
    /// the per-session deadline), and returns the final statistics.
    pub fn shutdown(mut self) -> FleetStats {
        self.stop_and_join();
        self.stats.snapshot()
    }

    /// Two-phase teardown (idempotent): unbind the port — which wakes and
    /// stops the acceptor — and join it first; only the acceptor's exit
    /// drops the admission senders, so no worker can observe a
    /// disconnected admission channel while a late-accepted connection is
    /// still in flight towards it.
    pub(crate) fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.os.network().unbind(self.port);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FleetVerifier {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_completed_add_up() {
        let mut a = FleetStats {
            accepted: 12,
            served: 5,
            rejected: 2,
            malformed: 1,
            timed_out: 2,
            disconnected: 1,
            shed: 1,
            appraised: 7,
            appraisal_batches: 3,
            msg1_batches: 4,
            corrupt_rejected: 1,
            retries_observed: 2,
        };
        let b = FleetStats {
            accepted: 6,
            served: 3,
            rejected: 1,
            malformed: 0,
            timed_out: 0,
            disconnected: 1,
            shed: 1,
            appraised: 4,
            appraisal_batches: 2,
            msg1_batches: 1,
            corrupt_rejected: 0,
            retries_observed: 1,
        };
        a.merge(&b);
        assert_eq!(a.accepted, 18);
        assert_eq!(a.completed(), 18, "shed is an outcome bucket");
        assert_eq!(a.disconnected, 2);
        assert_eq!(a.shed, 2);
        assert_eq!(a.appraised, 11);
        assert_eq!(a.appraisal_batches, 5);
        assert_eq!(a.msg1_batches, 5);
        assert_eq!(a.corrupt_rejected, 1);
        assert_eq!(a.retries_observed, 3);
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert_eq!(FleetConfig::default().validate(), Ok(()));
        let cases = [
            (
                FleetConfig {
                    workers: 0,
                    ..FleetConfig::default()
                },
                ConfigError::ZeroWorkers,
            ),
            (
                FleetConfig {
                    session_timeout: Duration::ZERO,
                    ..FleetConfig::default()
                },
                ConfigError::ZeroSessionTimeout,
            ),
            (
                FleetConfig {
                    accept_backlog: 0,
                    ..FleetConfig::default()
                },
                ConfigError::ZeroBacklog,
            ),
            (
                FleetConfig {
                    max_sessions_per_worker: 0,
                    ..FleetConfig::default()
                },
                ConfigError::ZeroSessionCap,
            ),
        ];
        for (config, expected) in cases {
            assert_eq!(config.validate(), Err(expected));
        }
    }

    #[test]
    fn phase_stats_merge_and_percentiles() {
        let mut a = PhaseStats::default();
        assert!(a.is_empty());
        assert_eq!(percentiles_us(&a.accept_to_msg0), None);

        a.accept_to_msg0.extend(1..=100u64);
        let mut b = PhaseStats::default();
        b.msg2_to_msg3.push(7);
        a.merge(&b);
        assert!(!a.is_empty());
        assert_eq!(a.accept_to_msg0.len(), 100);
        assert_eq!(a.msg2_to_msg3, vec![7]);

        let (p50, p95, p99) = percentiles_us(&a.accept_to_msg0).unwrap();
        assert!((50..=51).contains(&p50), "p50 {p50}");
        assert!((95..=96).contains(&p95), "p95 {p95}");
        assert!((99..=100).contains(&p99), "p99 {p99}");
        // Singleton: every percentile is the one sample.
        assert_eq!(percentiles_us(&a.msg2_to_msg3), Some((7, 7, 7)));
        // Phase order matches the handshake.
        let names: Vec<&str> = a.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["accept→msg0", "msg0→msg1", "msg1→msg2", "msg2→msg3"]
        );
    }

    #[test]
    fn default_config_uses_shared_accept_poll() {
        let config = FleetConfig::default();
        assert_eq!(config.accept_poll, DEFAULT_ACCEPT_POLL);
        assert_eq!(config.accept_backlog, DEFAULT_ACCEPT_BACKLOG);
        assert!(config.workers >= 1);
        assert!(config.max_sessions_per_worker >= 1);
        assert!(config.session_timeout > Duration::ZERO);
    }
}

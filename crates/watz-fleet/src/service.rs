//! The concurrent verifier service.
//!
//! Architecture: one **acceptor** thread pulls connections off the
//! listener and pushes them into a shared queue; N **worker** threads
//! drain the queue, each running its admitted sessions as explicit
//! non-blocking state machines ([`Connection::try_recv`] only — a worker
//! never blocks on a single peer). Sessions carry a deadline, so a
//! stalled attester is evicted instead of wedging the pool.
//!
//! Both secure-world steps are batched. Workers sweep all their sessions
//! first, staging every `msg0` and `msg2` that arrived, then run each
//! stage's whole batch inside **one** [`Platform::enter_secure`]
//! ([`prepare_msg1_batch`] for the challenge derivation, [`appraise_batch`]
//! for the evidence appraisal) — amortising the world-switch cost across
//! queued sessions exactly where the paper's single-session design pays
//! it per attester.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use optee_sim::net::{Connection, TryRecv, DEFAULT_ACCEPT_POLL};
use optee_sim::{TeeError, TrustedOs};
use parking_lot::Mutex;
use tz_hal::Platform;
use watz_attestation::verifier::{Verifier, VerifierConfig};
use watz_attestation::wire::{Msg0, Msg1, Msg2, Msg3, APPRAISAL_FAILED};
use watz_attestation::RaError;
use watz_crypto::fortuna::Fortuna;

/// Tuning knobs for a [`FleetVerifier`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads draining the shared connection queue.
    pub workers: usize,
    /// How long the acceptor blocks per accept poll before re-checking
    /// the shutdown flag.
    pub accept_poll: Duration,
    /// Per-session deadline: a session that makes no progress for this
    /// long is evicted and counted as timed out.
    pub session_timeout: Duration,
    /// In-flight session cap per worker (back-pressure: connections past
    /// the cap wait in the queue).
    pub max_sessions_per_worker: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            accept_poll: DEFAULT_ACCEPT_POLL,
            session_timeout: Duration::from_secs(2),
            max_sessions_per_worker: 64,
        }
    }
}

/// Per-outcome statistics of a [`FleetVerifier`] (a snapshot).
///
/// Every admitted session ends in exactly one of the four outcome
/// buckets, so `served + rejected + malformed + timed_out` equals the
/// number of completed sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Sessions that passed appraisal and received `msg3`.
    pub served: u64,
    /// Sessions that reached appraisal and failed it (bad MAC, unknown
    /// device, untrusted measurement, outdated version, ...).
    pub rejected: u64,
    /// Sessions dropped because a message failed to parse.
    pub malformed: u64,
    /// Sessions evicted at their deadline (stalled or disconnected
    /// mid-handshake).
    pub timed_out: u64,
    /// Individual `msg2` appraisals performed.
    pub appraised: u64,
    /// Secure-world entries spent on those appraisals: one per batch, so
    /// `appraisal_batches <= appraised`, with equality only when no two
    /// `msg2`s were ever queued together.
    pub appraisal_batches: u64,
    /// Secure-world entries spent deriving `msg1` challenges: one per
    /// batch of queued `msg0`s, mirroring `appraisal_batches`.
    pub msg1_batches: u64,
}

impl FleetStats {
    /// Sessions that ran to an outcome.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.served + self.rejected + self.malformed + self.timed_out
    }

    /// Merges another snapshot into this one (shard aggregation).
    pub fn merge(&mut self, other: &FleetStats) {
        self.accepted += other.accepted;
        self.served += other.served;
        self.rejected += other.rejected;
        self.malformed += other.malformed;
        self.timed_out += other.timed_out;
        self.appraised += other.appraised;
        self.appraisal_batches += other.appraisal_batches;
        self.msg1_batches += other.msg1_batches;
    }
}

/// Shared atomic counters behind [`FleetStats`].
#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    timed_out: AtomicU64,
    appraised: AtomicU64,
    appraisal_batches: AtomicU64,
    msg1_batches: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> FleetStats {
        FleetStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
            timed_out: self.timed_out.load(Ordering::SeqCst),
            appraised: self.appraised.load(Ordering::SeqCst),
            appraisal_batches: self.appraisal_batches.load(Ordering::SeqCst),
            msg1_batches: self.msg1_batches.load(Ordering::SeqCst),
        }
    }
}

/// Appraises a batch of `msg2`s inside a single secure-world entry.
///
/// This is the batched path [`FleetVerifier`] workers use; it is public
/// so benches and tests can measure the amortisation directly (one
/// [`Platform::enter_secure`] regardless of batch size).
pub fn appraise_batch(
    platform: &Platform,
    batch: Vec<(&mut Verifier, &Msg2)>,
) -> Vec<Result<Msg3, RaError>> {
    platform.enter_secure(|| {
        batch
            .into_iter()
            .map(|(verifier, msg2)| verifier.handle_msg2(msg2).map(|(msg3, _)| msg3))
            .collect()
    })
}

/// Derives `msg1` challenges for a batch of `msg0`s inside a single
/// secure-world entry — the `msg0` counterpart of [`appraise_batch`]
/// (one [`Platform::enter_secure`] regardless of batch size).
pub fn prepare_msg1_batch(
    platform: &Platform,
    batch: Vec<(&mut Verifier, &Msg0)>,
    rng: &mut Fortuna,
) -> Vec<Result<Msg1, RaError>> {
    platform.enter_secure(|| {
        batch
            .into_iter()
            .map(|(verifier, msg0)| verifier.handle_msg0(msg0, rng).map(|(msg1, _)| msg1))
            .collect()
    })
}

/// Where one session stands in the Msg0→Msg3 exchange.
enum Phase {
    /// Waiting for the attester's `msg0`.
    AwaitMsg0,
    /// `msg1` sent; waiting for the evidence-bearing `msg2`.
    AwaitMsg2,
}

/// One in-flight attestation session owned by a worker.
struct Session {
    conn: Connection,
    verifier: Verifier,
    phase: Phase,
    deadline: Instant,
    /// Parsed `msg0` staged for the next challenge-derivation batch.
    pending_msg0: Option<Msg0>,
    /// Parsed `msg2` staged for the next appraisal batch.
    pending_msg2: Option<Msg2>,
    done: bool,
}

impl Session {
    fn new(conn: Connection, verifier: Verifier, timeout: Duration) -> Self {
        Session {
            conn,
            verifier,
            phase: Phase::AwaitMsg0,
            deadline: Instant::now() + timeout,
            pending_msg0: None,
            pending_msg2: None,
            done: false,
        }
    }
}

/// Everything a worker thread needs, bundled to keep spawns tidy.
struct WorkerCtx {
    queue: Arc<Mutex<VecDeque<Connection>>>,
    /// Set only once the acceptor has exited, so no connection can be
    /// pushed after a worker's final queue-empty check.
    drain: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    platform: Platform,
    config: VerifierConfig,
    session_timeout: Duration,
    max_sessions: usize,
    rng: Fortuna,
}

/// How long an idle worker sleeps before re-polling its sessions.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Pulls every session's staged message (if any) out next to the session
/// itself, so batch processing never depends on index bookkeeping. Shared
/// by the msg0 and msg2 batch paths.
fn take_staged<M>(
    sessions: &mut [Session],
    take: impl Fn(&mut Session) -> Option<M>,
) -> Vec<(&mut Session, M)> {
    sessions
        .iter_mut()
        .filter_map(|s| take(s).map(|m| (s, m)))
        .collect()
}

fn worker_loop(mut ctx: WorkerCtx) {
    let mut sessions: Vec<Session> = Vec::new();
    loop {
        // Admit queued connections up to the in-flight cap. Deadlines
        // start at admission, so a connection that waited in the queue is
        // not unfairly aged. Pop under the lock, construct outside it:
        // cloning the verifier config (endorsement list, secret) must not
        // serialize the other workers.
        let admitted: Vec<Connection> = {
            let mut queue = ctx.queue.lock();
            let room = ctx.max_sessions.saturating_sub(sessions.len());
            let take = room.min(queue.len());
            queue.drain(..take).collect()
        };
        for conn in admitted {
            sessions.push(Session::new(
                conn,
                Verifier::new(ctx.config.clone()),
                ctx.session_timeout,
            ));
        }

        if sessions.is_empty() && ctx.drain.load(Ordering::SeqCst) {
            // Drain semantics: the drain flag is raised only after the
            // acceptor has exited, so a final queue-empty check here
            // cannot race with a late accepted connection.
            if ctx.queue.lock().is_empty() {
                break;
            }
            continue;
        }

        let mut progressed = false;
        let now = Instant::now();
        let mut staged_msg0 = 0usize;
        let mut staged = 0usize;

        // Sweep every session once; never block on any single peer.
        for session in sessions.iter_mut() {
            match session.conn.try_recv_detailed() {
                TryRecv::Message(raw) => {
                    progressed = true;
                    session.deadline = now + ctx.session_timeout;
                    match session.phase {
                        // Outcome counters are bumped BEFORE the reply is
                        // sent: the peer's recv() unblocks on the send, so
                        // the reverse order would let an observer see a
                        // completed session not yet in the stats.
                        Phase::AwaitMsg0 => {
                            let Ok(msg0) = Msg0::from_bytes(&raw) else {
                                ctx.stats.malformed.fetch_add(1, Ordering::SeqCst);
                                let _ = session.conn.send(APPRAISAL_FAILED);
                                session.done = true;
                                continue;
                            };
                            session.pending_msg0 = Some(msg0);
                            staged_msg0 += 1;
                        }
                        Phase::AwaitMsg2 => {
                            let Ok(msg2) = Msg2::from_bytes(&raw) else {
                                ctx.stats.malformed.fetch_add(1, Ordering::SeqCst);
                                let _ = session.conn.send(APPRAISAL_FAILED);
                                session.done = true;
                                continue;
                            };
                            session.pending_msg2 = Some(msg2);
                            staged += 1;
                        }
                    }
                }
                TryRecv::Empty => {
                    // Idle peer: evict only at the deadline.
                    if now >= session.deadline {
                        ctx.stats.timed_out.fetch_add(1, Ordering::SeqCst);
                        session.done = true;
                        progressed = true;
                    }
                }
                TryRecv::Disconnected => {
                    // Dead peer: free the session slot immediately rather
                    // than pinning it until the deadline.
                    ctx.stats.timed_out.fetch_add(1, Ordering::SeqCst);
                    session.done = true;
                    progressed = true;
                }
            }
        }

        // Batched challenge derivation: all msg0s staged this sweep share
        // one secure-world entry via `prepare_msg1_batch`, exactly like
        // msg2 appraisal below.
        if staged_msg0 > 0 {
            let mut batch_sessions = take_staged(&mut sessions, |s| s.pending_msg0.take());
            let outcomes = prepare_msg1_batch(
                &ctx.platform,
                batch_sessions
                    .iter_mut()
                    .map(|(s, msg0)| (&mut s.verifier, &*msg0))
                    .collect(),
                &mut ctx.rng,
            );
            ctx.stats.msg1_batches.fetch_add(1, Ordering::SeqCst);
            for ((session, _), outcome) in batch_sessions.iter_mut().zip(outcomes) {
                match outcome {
                    Ok(msg1) => {
                        if session.conn.send(&msg1.to_bytes()).is_err() {
                            ctx.stats.timed_out.fetch_add(1, Ordering::SeqCst);
                            session.done = true;
                        } else {
                            session.phase = Phase::AwaitMsg2;
                        }
                    }
                    Err(_) => {
                        ctx.stats.rejected.fetch_add(1, Ordering::SeqCst);
                        let _ = session.conn.send(APPRAISAL_FAILED);
                        session.done = true;
                    }
                }
            }
        }

        // Batched appraisal: all msg2s staged this sweep share one
        // secure-world entry via `appraise_batch`. One pass pulls each
        // staged msg2 out next to its own session's verifier, so nothing
        // depends on index bookkeeping.
        if staged > 0 {
            let mut batch_sessions = take_staged(&mut sessions, |s| s.pending_msg2.take());
            let outcomes = appraise_batch(
                &ctx.platform,
                batch_sessions
                    .iter_mut()
                    .map(|(s, msg2)| (&mut s.verifier, &*msg2))
                    .collect(),
            );
            ctx.stats.appraisal_batches.fetch_add(1, Ordering::SeqCst);
            ctx.stats
                .appraised
                .fetch_add(outcomes.len() as u64, Ordering::SeqCst);
            for ((session, _), outcome) in batch_sessions.iter_mut().zip(outcomes) {
                match outcome {
                    Ok(msg3) => {
                        ctx.stats.served.fetch_add(1, Ordering::SeqCst);
                        let _ = session.conn.send(&msg3.to_bytes());
                    }
                    Err(_) => {
                        ctx.stats.rejected.fetch_add(1, Ordering::SeqCst);
                        let _ = session.conn.send(APPRAISAL_FAILED);
                    }
                }
                session.done = true;
            }
        }

        sessions.retain(|s| !s.done);
        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
}

/// A fleet-scale verifier service: shared accept queue, worker pool,
/// non-blocking sessions, batched appraisal, per-outcome stats.
pub struct FleetVerifier {
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<StatsInner>,
    port: u16,
    os: TrustedOs,
}

impl std::fmt::Debug for FleetVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FleetVerifier {{ port: {}, workers: {} }}",
            self.port,
            self.workers.len()
        )
    }
}

impl FleetVerifier {
    /// Spawns the service on `port` of the OS's loopback network.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if the port is taken.
    pub fn spawn(
        os: &TrustedOs,
        config: VerifierConfig,
        fleet: FleetConfig,
        port: u16,
    ) -> Result<Self, TeeError> {
        let listener = os.network().listen(port)?;
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let queue: Arc<Mutex<VecDeque<Connection>>> = Arc::new(Mutex::new(VecDeque::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let queue = Arc::clone(&queue);
            let accept_poll = fleet.accept_poll;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let Ok(conn) = listener.accept_timeout(accept_poll) else {
                        continue;
                    };
                    stats.accepted.fetch_add(1, Ordering::SeqCst);
                    queue.lock().push_back(conn);
                }
            })
        };

        let workers = (0..fleet.workers.max(1))
            .map(|i| {
                let ctx = WorkerCtx {
                    queue: Arc::clone(&queue),
                    drain: Arc::clone(&drain),
                    stats: Arc::clone(&stats),
                    platform: os.platform().clone(),
                    config: config.clone(),
                    session_timeout: fleet.session_timeout,
                    max_sessions: fleet.max_sessions_per_worker.max(1),
                    rng: os.kernel_prng(&format!("fleet-worker-{i}")),
                };
                std::thread::spawn(move || worker_loop(ctx))
            })
            .collect();

        Ok(FleetVerifier {
            stop,
            drain,
            acceptor: Some(acceptor),
            workers,
            stats,
            port,
            os: os.clone(),
        })
    }

    /// The port the service listens on.
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A live snapshot of the per-outcome statistics.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        self.stats.snapshot()
    }

    /// Stops accepting, drains in-flight and queued sessions (bounded by
    /// the per-session deadline), and returns the final statistics.
    pub fn shutdown(mut self) -> FleetStats {
        self.stop_and_join();
        self.stats.snapshot()
    }

    /// Two-phase teardown (idempotent): stop and join the acceptor first,
    /// and only then raise the drain flag — workers must not exit while a
    /// late-accepted connection could still be pushed onto the queue.
    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.os.network().unbind(self.port);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.drain.store(true, Ordering::SeqCst);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FleetVerifier {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_completed_add_up() {
        let mut a = FleetStats {
            accepted: 10,
            served: 5,
            rejected: 2,
            malformed: 1,
            timed_out: 2,
            appraised: 7,
            appraisal_batches: 3,
            msg1_batches: 4,
        };
        let b = FleetStats {
            accepted: 4,
            served: 3,
            rejected: 1,
            malformed: 0,
            timed_out: 0,
            appraised: 4,
            appraisal_batches: 2,
            msg1_batches: 1,
        };
        a.merge(&b);
        assert_eq!(a.accepted, 14);
        assert_eq!(a.completed(), 14);
        assert_eq!(a.appraised, 11);
        assert_eq!(a.appraisal_batches, 5);
        assert_eq!(a.msg1_batches, 5);
    }

    #[test]
    fn default_config_uses_shared_accept_poll() {
        let config = FleetConfig::default();
        assert_eq!(config.accept_poll, DEFAULT_ACCEPT_POLL);
        assert!(config.workers >= 1);
        assert!(config.max_sessions_per_worker >= 1);
        assert!(config.session_timeout > Duration::ZERO);
    }
}

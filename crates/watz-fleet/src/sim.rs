//! The sharded device registry and multi-device simulator.
//!
//! A **shard** is one `TrustedOs` (and therefore one supplicant loopback
//! `Network`) hosting a [`FleetVerifier`] plus the client traffic of the
//! devices assigned to it. Sharding keeps listener queues, accept locks
//! and network state disjoint, so shards scale independently — the
//! ROADMAP's "millions of attesting devices" direction in miniature.
//!
//! Each simulated device is a real WaTZ device in the model's terms: its
//! own fused seed, secure-boot chain and kernel attestation service, so
//! endorsement/rejection flows through the genuine key material rather
//! than flags. Three kinds are simulated:
//!
//! * [`DeviceKind::Endorsed`] — endorsed key, trusted measurement: served;
//! * [`DeviceKind::Rogue`] — key absent from the endorsement list: rejected;
//! * [`DeviceKind::Stale`] — endorsed but reporting an outdated WaTZ
//!   version: rejected by the verifier's version gate (§VII rollback
//!   mitigation).

use std::sync::Arc;
use std::time::{Duration, Instant};

use optee_sim::net::{FaultPlan, Network, RECV_TIMEOUT};
use optee_sim::{TeeError, TrustedOs};
use parking_lot::Mutex;
use tz_hal::{Platform, PlatformConfig};
use watz_attestation::attester::{AttemptError, AttestClient, RetryPolicy};
use watz_attestation::service::AttestationService;
use watz_attestation::verifier::VerifierConfig;
use watz_crypto::ecdsa::SigningKey;
use watz_crypto::fortuna::Fortuna;
use watz_crypto::sha256::Sha256;

use crate::service::{percentiles_us, FleetConfig, FleetStats, FleetVerifier, PhaseStats};

/// What kind of attester a simulated device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Endorsed device running the reference bytecode: must be served.
    Endorsed,
    /// Device whose attestation key is not endorsed: must be rejected.
    Rogue,
    /// Endorsed device reporting an outdated WaTZ version: must be
    /// rejected by the version gate.
    Stale,
}

/// Registry entry for one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceRecord {
    /// Fleet-wide device index.
    pub id: u32,
    /// The shard this device attests against.
    pub shard: usize,
    /// Behavioural kind.
    pub kind: DeviceKind,
    /// The device's public attestation key (endorsement value). `None`
    /// until the device is manufactured — which happens lazily, on the
    /// first session that schedules it, not at fleet boot.
    pub public_key: Option<[u8; 64]>,
}

/// Sizing of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Number of shards (one `TrustedOs`/`Network`/verifier each).
    pub shards: usize,
    /// Endorsed devices across the whole fleet.
    pub endorsed: usize,
    /// Rogue (unendorsed) devices across the whole fleet.
    pub rogue: usize,
    /// Stale (outdated-version) devices across the whole fleet.
    pub stale: usize,
    /// Worker threads per shard verifier.
    pub workers_per_shard: usize,
    /// Per-session deadline at the verifiers.
    pub session_timeout: Duration,
    /// In-flight session cap per verifier worker.
    pub max_sessions_per_worker: usize,
    /// Admission-queue depth per worker beyond which connections are
    /// shed with a `SERVER_BUSY` reply (see [`FleetConfig`]).
    pub max_queued_per_worker: usize,
    /// Port the shard-0 verifier binds; shard `k` uses `port + k` (each
    /// shard has its own network, so this only aids log readability).
    pub port: u16,
    /// Fault plan installed on every shard's network for the duration of
    /// each round (`None` = clean transport, zero overhead).
    pub fault_plan: Option<FaultPlan>,
    /// Client retry policy. `None` = single-attempt clients (the
    /// pre-retry behaviour); `Some` clients retry retryable faults, each
    /// device jittered on its own seed lane.
    pub retry: Option<RetryPolicy>,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            shards: 4,
            endorsed: 64,
            rogue: 4,
            stale: 4,
            workers_per_shard: 4,
            session_timeout: Duration::from_secs(2),
            max_sessions_per_worker: 64,
            max_queued_per_worker: 256,
            port: 7700,
            fault_plan: None,
            retry: None,
        }
    }
}

/// One manufactured device: its own platform, trusted OS and attestation
/// service (real key material), attesting over its shard's network.
struct SimDevice {
    service: AttestationService,
    _os: TrustedOs,
}

/// A device slot in the registry: the cheap spec is fixed at boot, the
/// expensive manufacturing (platform, secure-boot chain, trusted OS, key
/// derivation) happens at most once — on the first session that schedules
/// the device. Simulations can therefore size past boot-time memory: a
/// device that never attests never exists beyond these few words.
struct LazyDevice {
    id: u32,
    shard: usize,
    kind: DeviceKind,
    cell: std::sync::OnceLock<SimDevice>,
}

impl LazyDevice {
    /// Manufactures the device on first use (fused seed, genuine boot
    /// chain, attestation service install).
    ///
    /// # Panics
    ///
    /// Panics if the device fails secure boot. Device manufacturing is
    /// deterministic in the simulator (derived from the device seed), so
    /// unlike shard boot — which still returns a [`TeeError`] from
    /// [`FleetSim::boot`] — a failure here means the model itself is
    /// broken, not a configuration problem a caller could handle.
    fn device(&self) -> &SimDevice {
        self.cell.get_or_init(|| {
            let platform = Platform::new(PlatformConfig {
                device_seed: format!("fleet-device-{}", self.id).into_bytes(),
                ..PlatformConfig::default()
            });
            tz_hal::boot::install_genuine_chain(&platform).expect("device secure boot");
            let os = TrustedOs::boot(platform).expect("device trusted OS boot");
            // Stale devices report a WaTZ version below the fleet's
            // minimum (an un-updated runtime in the wild).
            let service = match self.kind {
                DeviceKind::Stale => AttestationService::install_with_version(&os, 0),
                _ => AttestationService::install(&os),
            };
            SimDevice { service, _os: os }
        })
    }

    fn record(&self) -> DeviceRecord {
        DeviceRecord {
            id: self.id,
            shard: self.shard,
            kind: self.kind,
            public_key: self.cell.get().map(|d| d.service.public_key()),
        }
    }
}

/// One shard: a trusted OS whose network carries the shard's verifier
/// and device traffic.
struct Shard {
    os: TrustedOs,
}

/// A booted simulated fleet, ready to run attestation rounds. Shards boot
/// eagerly (they host the verifiers); devices are registered as cheap
/// specs and manufactured lazily on their first scheduled session.
pub struct FleetSim {
    config: FleetSimConfig,
    shards: Vec<Shard>,
    devices: Vec<LazyDevice>,
    measurement: [u8; 32],
    verifier_identity_seed: Vec<u8>,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FleetSim {{ shards: {}, devices: {} }}",
            self.shards.len(),
            self.devices.len()
        )
    }
}

/// Outcome of one device's client-side session.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ClientOutcome {
    /// Secret received (bytes) after this long.
    Provisioned(usize, Duration),
    /// The verifier answered with the appraisal-failed marker.
    Rejected(Duration),
    /// Admission control shed the session (`SERVER_BUSY`) and the retry
    /// budget — if any — never got past it.
    Shed,
    /// Network error / timeout before an answer.
    Failed,
}

/// Aggregated result of one simulated fleet round.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Devices that attested in this round.
    pub devices: usize,
    /// Shards the round ran across.
    pub shards: usize,
    /// Wall-clock duration of the round.
    pub elapsed: Duration,
    /// Devices provisioned with the secret (client-side successes).
    pub provisioned: u64,
    /// Devices rejected by appraisal (client-side rejections).
    pub rejected: u64,
    /// Devices whose session was shed by admission control and never got
    /// a verdict (client saw `SERVER_BUSY` as its final answer).
    pub shed: u64,
    /// Devices that failed without a verdict (network errors, timeouts).
    pub failed: u64,
    /// Extra attempts the clients made beyond their first (0 when no
    /// retry policy is configured or no fault forced a retry).
    pub retries: u64,
    /// Server-side per-outcome statistics, aggregated across shards.
    pub stats: FleetStats,
    /// Server-side per-phase handshake timings, aggregated across shards.
    pub phases: PhaseStats,
    /// Per-session client-observed latencies, sorted ascending.
    latencies: Vec<Duration>,
}

impl FleetReport {
    /// Completed sessions per second of wall-clock time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let done = (self.provisioned + self.rejected) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }

    /// Client-observed session latency at percentile `p` (0.0..=100.0).
    ///
    /// Returns `None` when no session completed (e.g. every device timed
    /// out) — an absent percentile, not a misleading zero.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        percentile_of(&self.latencies, p)
    }

    /// Secure-world entries the round cost (msg1 + appraisal batches) —
    /// the world switches batching exists to amortize.
    #[must_use]
    pub fn world_switches(&self) -> u64 {
        self.stats.msg1_batches + self.stats.appraisal_batches
    }
}

/// Percentile `p` (0.0..=100.0) of an ascending-sorted latency list, or
/// `None` when empty — an absent percentile, not a misleading zero.
fn percentile_of(sorted: &[Duration], p: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Formats an optional latency percentile for reports: `-` when absent.
#[must_use]
pub fn fmt_latency(p: Option<Duration>) -> String {
    match p {
        Some(d) => format!("{d:.2?}"),
        None => "-".to_string(),
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet round: {} devices across {} shards in {:.2?}",
            self.devices, self.shards, self.elapsed
        )?;
        writeln!(
            f,
            "  client:  provisioned {}  rejected {}  shed {}  failed {}  (retries {})",
            self.provisioned, self.rejected, self.shed, self.failed, self.retries
        )?;
        writeln!(
            f,
            "  server:  served {}  rejected {}  malformed {}  timed-out {}  disconnected {}  shed {}",
            self.stats.served,
            self.stats.rejected,
            self.stats.malformed,
            self.stats.timed_out,
            self.stats.disconnected,
            self.stats.shed
        )?;
        writeln!(
            f,
            "  batching: {} appraisals in {} secure-world entries ({} world switches total)",
            self.stats.appraised,
            self.stats.appraisal_batches,
            self.world_switches()
        )?;
        for (name, samples) in self.phases.phases() {
            if let Some((p50, p95, p99)) = percentiles_us(samples) {
                writeln!(
                    f,
                    "  phase {name}: p50 {p50}us p95 {p95}us p99 {p99}us ({} samples)",
                    samples.len()
                )?;
            }
        }
        write!(
            f,
            "  throughput {:.0} sessions/s, latency p50 {} p95 {} p99 {}",
            self.throughput(),
            fmt_latency(self.latency_percentile(50.0)),
            fmt_latency(self.latency_percentile(95.0)),
            fmt_latency(self.latency_percentile(99.0))
        )
    }
}

/// Runs one attestation session as a fleet client against `net:port`,
/// delegating the Msg0→Msg3 exchange to [`AttestClient`]. With a retry
/// policy the full handshake is restarted on retryable faults; the second
/// value is the number of attempts made (1 = no retries).
///
/// Blocking (each device is its own thread in the simulator).
fn run_client(
    net: &Network,
    port: u16,
    service: &AttestationService,
    measurement: &[u8; 32],
    pinned: &[u8; 64],
    retry: Option<&RetryPolicy>,
    rng: &mut Fortuna,
) -> (ClientOutcome, u32) {
    let start = Instant::now();
    let client = AttestClient {
        net,
        port,
        service,
        measurement: *measurement,
        pinned_verifier_key: *pinned,
    };
    match retry {
        None => match client.attempt(0, RECV_TIMEOUT, rng) {
            Ok(secret) => (ClientOutcome::Provisioned(secret.len(), start.elapsed()), 1),
            Err(AttemptError::Rejected) => (ClientOutcome::Rejected(start.elapsed()), 1),
            Err(AttemptError::Busy) => (ClientOutcome::Shed, 1),
            Err(_) => (ClientOutcome::Failed, 1),
        },
        Some(policy) => match client.attest(policy, rng) {
            Ok(outcome) => (
                ClientOutcome::Provisioned(outcome.secret.len(), start.elapsed()),
                outcome.attempts,
            ),
            Err(err) => {
                let attempts = err.attempts();
                let outcome = match err.last() {
                    AttemptError::Rejected => ClientOutcome::Rejected(start.elapsed()),
                    AttemptError::Busy => ClientOutcome::Shed,
                    _ => ClientOutcome::Failed,
                };
                (outcome, attempts)
            }
        },
    }
}

impl FleetSim {
    /// Boots the shards and registers the devices (round-robin across
    /// shards). Devices are *not* manufactured here: each one's platform,
    /// secure-boot chain and attestation key materialise on the first
    /// session that schedules it, so a fleet can be sized far beyond what
    /// eager boot-time manufacturing would fit in memory.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError`] if a shard fails secure boot, or if the shard
    /// count does not fit in the port range above `config.port`.
    pub fn boot(config: FleetSimConfig) -> Result<Self, TeeError> {
        // Shard k binds port + k; reject configs whose port arithmetic
        // would wrap (or panic in debug) in `run_with_workers`.
        let highest_shard = config.shards.max(1) - 1;
        if u16::try_from(highest_shard)
            .ok()
            .and_then(|k| config.port.checked_add(k))
            .is_none()
        {
            return Err(TeeError::Net(format!(
                "{} shards starting at port {} exceed the u16 port range",
                config.shards.max(1),
                config.port
            )));
        }
        let shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|k| {
                let platform = Platform::new(PlatformConfig {
                    device_seed: format!("fleet-shard-{k}").into_bytes(),
                    ..PlatformConfig::default()
                });
                tz_hal::boot::install_genuine_chain(&platform).map_err(|_| TeeError::NotBooted)?;
                Ok(Shard {
                    os: TrustedOs::boot(platform)?,
                })
            })
            .collect::<Result<_, TeeError>>()?;

        let kinds = std::iter::repeat_n(DeviceKind::Endorsed, config.endorsed)
            .chain(std::iter::repeat_n(DeviceKind::Rogue, config.rogue))
            .chain(std::iter::repeat_n(DeviceKind::Stale, config.stale));
        let devices: Vec<LazyDevice> = kinds
            .enumerate()
            .map(|(id, kind)| LazyDevice {
                id: id as u32,
                shard: id % shards.len(),
                kind,
                cell: std::sync::OnceLock::new(),
            })
            .collect();

        Ok(FleetSim {
            config,
            shards,
            devices,
            measurement: Sha256::digest(b"fleet reference application"),
            verifier_identity_seed: b"fleet-owner identity".to_vec(),
        })
    }

    /// The device registry (id, shard assignment, kind, and — for
    /// manufactured devices — the endorsement key). Reading the registry
    /// never manufactures anything.
    #[must_use]
    pub fn registry(&self) -> Vec<DeviceRecord> {
        self.devices.iter().map(LazyDevice::record).collect()
    }

    /// How many devices have been manufactured so far (lazily, on first
    /// scheduled session).
    #[must_use]
    pub fn manufactured_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.cell.get().is_some())
            .count()
    }

    /// Whether device `id` has been manufactured.
    #[must_use]
    pub fn is_manufactured(&self, id: u32) -> bool {
        self.devices
            .get(id as usize)
            .is_some_and(|d| d.cell.get().is_some())
    }

    /// The reference measurement every device claims.
    #[must_use]
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Builds the round's verifier configuration: endorses every
    /// scheduled endorsed AND stale device (stale ones must fail the
    /// version gate, not the endorsement check — that would conflate them
    /// with rogues).
    fn verifier_base(&self, scheduled: &[&LazyDevice]) -> VerifierConfig {
        let mut rng = Fortuna::from_seed(&self.verifier_identity_seed);
        let identity = SigningKey::generate(&mut rng);
        let mut base = VerifierConfig::new(identity)
            .trust_measurement(self.measurement)
            .require_min_version(1)
            .with_secret(b"fleet configuration secret".to_vec());
        for device in scheduled {
            if device.kind != DeviceKind::Rogue {
                base = base.endorse_device(device.device().service.public_key());
            }
        }
        base
    }

    /// Drains and returns the fault logs of every shard network — what the
    /// installed [`FaultPlan`] actually injected during the last round(s).
    /// Empty when no plan was installed.
    #[must_use]
    pub fn take_fault_log(&self) -> Vec<optee_sim::net::FaultEvent> {
        let mut log = Vec::new();
        for shard in &self.shards {
            log.extend(shard.os.shared_network().take_fault_log());
        }
        log
    }

    /// Runs one round with the configured worker count per shard.
    #[must_use]
    pub fn run(&self) -> FleetReport {
        self.run_with_workers(self.config.workers_per_shard)
    }

    /// Runs one round over the whole fleet with an explicit worker count.
    ///
    /// Rounds are repeatable — fresh verifiers and fresh ephemeral
    /// session keys each time (benches sweep `workers` this way).
    #[must_use]
    pub fn run_with_workers(&self, workers: usize) -> FleetReport {
        let all: Vec<u32> = (0..self.devices.len() as u32).collect();
        self.run_devices(&all, workers)
    }

    /// Runs one round for the scheduled device ids only: manufactures any
    /// scheduled device that does not exist yet (first session = first
    /// boot), spawns a [`FleetVerifier`] per shard, drives each scheduled
    /// device through a concurrent attestation session, shuts the
    /// verifiers down and aggregates the report. Unscheduled devices are
    /// never manufactured.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range, or if a scheduled device fails
    /// secure boot while being manufactured (deterministic in the
    /// simulator — see [`LazyDevice::device`]).
    #[must_use]
    pub fn run_devices(&self, ids: &[u32], workers: usize) -> FleetReport {
        let scheduled: Vec<&LazyDevice> = ids
            .iter()
            .map(|id| {
                self.devices
                    .get(*id as usize)
                    .expect("scheduled device id in range")
            })
            .collect();
        // Manufacture every scheduled device (rogues included) before the
        // round clock starts, so a cold round times attestation, not
        // device boot — this is the "keyed on first session" moment.
        for device in &scheduled {
            let _ = device.device();
        }
        let base = self.verifier_base(&scheduled);
        let pinned = base.identity_public_key();

        let fleet_config = FleetConfig {
            workers: workers.max(1),
            session_timeout: self.config.session_timeout,
            max_sessions_per_worker: self.config.max_sessions_per_worker,
            max_queued_per_worker: self.config.max_queued_per_worker,
            ..FleetConfig::default()
        };
        let verifiers: Vec<FleetVerifier> = self
            .shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let port = self.config.port + k as u16;
                FleetVerifier::spawn(&shard.os, base.clone(), fleet_config.clone(), port)
                    .expect("shard port free")
            })
            .collect();

        // Install the fault plan only after the verifiers are up: the
        // plan targets attestation traffic, not verifier bring-up. Client
        // connections dialled from here on carry the fault hooks.
        if let Some(plan) = &self.config.fault_plan {
            for shard in &self.shards {
                shard.os.shared_network().install_fault_plan(plan.clone());
            }
        }

        let outcomes: Arc<Mutex<Vec<(ClientOutcome, u32)>>> =
            Arc::new(Mutex::new(Vec::with_capacity(scheduled.len())));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for device in &scheduled {
                let net = self.shards[device.shard].os.shared_network();
                let port = self.config.port + device.shard as u16;
                let measurement = self.measurement;
                let outcomes = Arc::clone(&outcomes);
                let service = &device.device().service;
                let id = device.id;
                let retry = self.config.retry.clone().map(|mut policy| {
                    // Each device jitters on its own seed lane so a burst
                    // of synchronised failures does not retry in lockstep.
                    policy.jitter_seed ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(id) + 1);
                    policy
                });
                scope.spawn(move || {
                    let mut rng = Fortuna::from_seed(format!("client-{id}").as_bytes());
                    let outcome = run_client(
                        &net,
                        port,
                        service,
                        &measurement,
                        &pinned,
                        retry.as_ref(),
                        &mut rng,
                    );
                    outcomes.lock().push(outcome);
                });
            }
        });
        let elapsed = started.elapsed();

        if self.config.fault_plan.is_some() {
            for shard in &self.shards {
                shard.os.shared_network().clear_fault_plan();
            }
        }

        let mut stats = FleetStats::default();
        let mut phases = PhaseStats::default();
        for mut verifier in verifiers {
            // Join the workers first: the last sweep's phase flush lands
            // only once its worker exits, so snapshotting before the join
            // could drop tail samples.
            verifier.stop_and_join();
            phases.merge(&verifier.phase_stats());
            stats.merge(&verifier.stats());
        }

        let (mut provisioned, mut rejected, mut shed, mut failed) = (0u64, 0u64, 0u64, 0u64);
        let mut retries = 0u64;
        let mut latencies = Vec::new();
        for (outcome, attempts) in outcomes.lock().iter() {
            retries += u64::from(attempts.saturating_sub(1));
            match outcome {
                ClientOutcome::Provisioned(_, d) => {
                    provisioned += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Rejected(d) => {
                    rejected += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Shed => shed += 1,
                ClientOutcome::Failed => failed += 1,
            }
        }
        latencies.sort_unstable();

        FleetReport {
            devices: scheduled.len(),
            shards: self.shards.len(),
            elapsed,
            provisioned,
            rejected,
            shed,
            failed,
            retries,
            stats,
            phases,
            latencies,
        }
    }

    /// Runs an **open-loop** overload round against shard 0: sessions
    /// arrive on a fixed schedule (one every `interval`) regardless of
    /// whether earlier sessions have completed, which is how real fleets
    /// overload a verifier. Latency is measured from each session's
    /// *scheduled* arrival to its verdict, so queueing delay behind
    /// schedule is charged to the session (no coordinated omission).
    ///
    /// Generator threads each own a disjoint set of endorsed shard-0
    /// devices, so no device's attestation service is driven from two
    /// threads at once. Sessions are single-attempt: a `SERVER_BUSY`
    /// shed is this mode's terminal answer for the session.
    ///
    /// # Panics
    ///
    /// Panics if shard 0 has no endorsed device or the verifier port is
    /// taken.
    #[must_use]
    pub fn run_open_loop(&self, cfg: &OpenLoopConfig) -> OpenLoopReport {
        let shard = &self.shards[0];
        let scheduled: Vec<&LazyDevice> = self
            .devices
            .iter()
            .filter(|d| d.shard == 0 && d.kind == DeviceKind::Endorsed)
            .collect();
        assert!(
            !scheduled.is_empty(),
            "open-loop mode needs at least one endorsed device on shard 0"
        );
        for device in &scheduled {
            let _ = device.device();
        }
        let base = self.verifier_base(&scheduled);
        let pinned = base.identity_public_key();

        let fleet_config = FleetConfig {
            workers: cfg.workers.max(1),
            session_timeout: self.config.session_timeout,
            max_sessions_per_worker: self.config.max_sessions_per_worker,
            max_queued_per_worker: self.config.max_queued_per_worker,
            ..FleetConfig::default()
        };
        let mut verifier = FleetVerifier::spawn(&shard.os, base, fleet_config, self.config.port)
            .expect("open-loop verifier port free");
        if let Some(plan) = &self.config.fault_plan {
            shard.os.shared_network().install_fault_plan(plan.clone());
        }

        let threads = cfg.client_threads.clamp(1, scheduled.len());
        let results: Arc<Mutex<Vec<ClientOutcome>>> =
            Arc::new(Mutex::new(Vec::with_capacity(cfg.sessions)));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for (t, &device) in scheduled.iter().enumerate().take(threads) {
                let net = shard.os.shared_network();
                let port = self.config.port;
                let measurement = self.measurement;
                let results = Arc::clone(&results);
                scope.spawn(move || {
                    let mut rng = Fortuna::from_seed(format!("openloop-{t}").as_bytes());
                    let client = AttestClient {
                        net: &net,
                        port,
                        service: &device.device().service,
                        measurement,
                        pinned_verifier_key: pinned,
                    };
                    // Thread t owns arrivals t, t+T, t+2T, ...
                    let mut i = t;
                    while i < cfg.sessions {
                        let due = started + cfg.interval.saturating_mul(i as u32);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let outcome = match client.attempt(0, RECV_TIMEOUT, &mut rng) {
                            Ok(secret) => ClientOutcome::Provisioned(secret.len(), due.elapsed()),
                            Err(AttemptError::Rejected) => ClientOutcome::Rejected(due.elapsed()),
                            Err(AttemptError::Busy) => ClientOutcome::Shed,
                            Err(_) => ClientOutcome::Failed,
                        };
                        results.lock().push(outcome);
                        i += threads;
                    }
                });
            }
        });
        let elapsed = started.elapsed();

        if self.config.fault_plan.is_some() {
            shard.os.shared_network().clear_fault_plan();
        }
        verifier.stop_and_join();
        let stats = verifier.stats();

        let (mut provisioned, mut rejected, mut shed, mut failed) = (0u64, 0u64, 0u64, 0u64);
        let mut latencies = Vec::new();
        for outcome in results.lock().iter() {
            match outcome {
                ClientOutcome::Provisioned(_, d) => {
                    provisioned += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Rejected(d) => {
                    rejected += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Shed => shed += 1,
                ClientOutcome::Failed => failed += 1,
            }
        }
        latencies.sort_unstable();

        OpenLoopReport {
            offered: cfg.sessions,
            interval: cfg.interval,
            elapsed,
            provisioned,
            rejected,
            shed,
            failed,
            stats,
            latencies,
        }
    }
}

/// Arrival schedule for [`FleetSim::run_open_loop`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Total sessions offered.
    pub sessions: usize,
    /// Gap between scheduled arrivals (offered rate = 1/interval).
    pub interval: Duration,
    /// Verifier worker threads on shard 0.
    pub workers: usize,
    /// Generator threads (clamped to the endorsed shard-0 device count —
    /// each thread owns its devices exclusively).
    pub client_threads: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            sessions: 64,
            interval: Duration::from_millis(5),
            workers: 2,
            client_threads: 8,
        }
    }
}

/// Result of one open-loop overload round.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Sessions offered on the arrival schedule.
    pub offered: usize,
    /// The scheduled inter-arrival gap.
    pub interval: Duration,
    /// Wall-clock duration of the round.
    pub elapsed: Duration,
    /// Sessions provisioned with the secret.
    pub provisioned: u64,
    /// Sessions rejected by appraisal.
    pub rejected: u64,
    /// Sessions shed by admission control (`SERVER_BUSY`).
    pub shed: u64,
    /// Sessions that failed without any answer.
    pub failed: u64,
    /// Server-side per-outcome statistics.
    pub stats: FleetStats,
    /// Scheduled-arrival → verdict latencies of answered sessions
    /// (provisioned + rejected), sorted ascending. Shed sessions are
    /// excluded: their fast `BUSY` reply is not a verdict.
    latencies: Vec<Duration>,
}

impl OpenLoopReport {
    /// The offered arrival rate in sessions per second.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        let secs = self.interval.as_secs_f64();
        if secs > 0.0 {
            1.0 / secs
        } else {
            0.0
        }
    }

    /// Scheduled-arrival → verdict latency at percentile `p`
    /// (0.0..=100.0); `None` when no session was answered.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        percentile_of(&self.latencies, p)
    }
}

impl std::fmt::Display for OpenLoopReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "open-loop round: {} offered at {:.0}/s, done in {:.2?}",
            self.offered,
            self.offered_rate(),
            self.elapsed
        )?;
        writeln!(
            f,
            "  client:  provisioned {}  rejected {}  shed {}  failed {}",
            self.provisioned, self.rejected, self.shed, self.failed
        )?;
        writeln!(
            f,
            "  server:  served {}  shed {}  timed-out {}  disconnected {}",
            self.stats.served, self.stats.shed, self.stats.timed_out, self.stats.disconnected
        )?;
        write!(
            f,
            "  verdict latency from scheduled arrival: p50 {} p95 {} p99 {}",
            fmt_latency(self.latency_percentile(50.0)),
            fmt_latency(self.latency_percentile(95.0)),
            fmt_latency(self.latency_percentile(99.0))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies: Vec<Duration>, provisioned: u64, elapsed: Duration) -> FleetReport {
        FleetReport {
            devices: latencies.len(),
            shards: 1,
            elapsed,
            provisioned,
            rejected: 0,
            shed: 0,
            failed: 0,
            retries: 0,
            stats: FleetStats::default(),
            phases: PhaseStats::default(),
            latencies,
        }
    }

    #[test]
    fn latency_percentile_of_empty_report_is_absent_not_zero() {
        // A round where every session timed out has no latencies; the
        // percentiles must be absent rather than a misleading 0 (ROADMAP
        // open item).
        let r = report_with(vec![], 0, Duration::from_secs(1));
        assert_eq!(r.latency_percentile(50.0), None);
        assert_eq!(r.latency_percentile(99.0), None);
        assert_eq!(fmt_latency(r.latency_percentile(50.0)), "-");
        assert_eq!(r.throughput(), 0.0);
        // The Display form shows dashes, not zeros.
        let text = format!("{r}");
        assert!(text.contains("p50 - p95 - p99 -"), "{text}");
    }

    #[test]
    fn latency_percentiles_pick_sorted_ranks() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let r = report_with(lat, 100, Duration::from_secs(2));
        assert_eq!(r.latency_percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(
            r.latency_percentile(100.0),
            Some(Duration::from_millis(100))
        );
        let p50 = r.latency_percentile(50.0).unwrap();
        assert!(p50 >= Duration::from_millis(50) && p50 <= Duration::from_millis(51));
        assert_eq!(r.throughput(), 50.0);
    }

    #[test]
    fn default_sim_config_is_a_runnable_shape() {
        let config = FleetSimConfig::default();
        assert!(config.shards >= 1);
        assert!(config.endorsed > 0);
        assert!(config.workers_per_shard >= 1);
    }
}

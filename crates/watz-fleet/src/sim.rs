//! The sharded device registry and multi-device simulator.
//!
//! A **shard** is one `TrustedOs` (and therefore one supplicant loopback
//! `Network`) hosting a [`FleetVerifier`] plus the client traffic of the
//! devices assigned to it. Sharding keeps listener queues, accept locks
//! and network state disjoint, so shards scale independently — the
//! ROADMAP's "millions of attesting devices" direction in miniature.
//!
//! Each simulated device is a real WaTZ device in the model's terms: its
//! own fused seed, secure-boot chain and kernel attestation service, so
//! endorsement/rejection flows through the genuine key material rather
//! than flags. Three kinds are simulated:
//!
//! * [`DeviceKind::Endorsed`] — endorsed key, trusted measurement: served;
//! * [`DeviceKind::Rogue`] — key absent from the endorsement list: rejected;
//! * [`DeviceKind::Stale`] — endorsed but reporting an outdated WaTZ
//!   version: rejected by the verifier's version gate (§VII rollback
//!   mitigation).

use std::sync::Arc;
use std::time::{Duration, Instant};

use optee_sim::net::Network;
use optee_sim::{TeeError, TrustedOs};
use parking_lot::Mutex;
use tz_hal::{Platform, PlatformConfig};
use watz_attestation::attester::Attester;
use watz_attestation::service::AttestationService;
use watz_attestation::verifier::VerifierConfig;
use watz_attestation::wire::{Msg1, Msg3, APPRAISAL_FAILED};
use watz_crypto::ecdsa::SigningKey;
use watz_crypto::fortuna::Fortuna;
use watz_crypto::sha256::Sha256;

use crate::service::{FleetConfig, FleetStats, FleetVerifier};

/// What kind of attester a simulated device is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Endorsed device running the reference bytecode: must be served.
    Endorsed,
    /// Device whose attestation key is not endorsed: must be rejected.
    Rogue,
    /// Endorsed device reporting an outdated WaTZ version: must be
    /// rejected by the version gate.
    Stale,
}

/// Registry entry for one simulated device.
#[derive(Debug, Clone)]
pub struct DeviceRecord {
    /// Fleet-wide device index.
    pub id: u32,
    /// The shard this device attests against.
    pub shard: usize,
    /// Behavioural kind.
    pub kind: DeviceKind,
    /// The device's public attestation key (endorsement value).
    pub public_key: [u8; 64],
}

/// Sizing of a simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Number of shards (one `TrustedOs`/`Network`/verifier each).
    pub shards: usize,
    /// Endorsed devices across the whole fleet.
    pub endorsed: usize,
    /// Rogue (unendorsed) devices across the whole fleet.
    pub rogue: usize,
    /// Stale (outdated-version) devices across the whole fleet.
    pub stale: usize,
    /// Worker threads per shard verifier.
    pub workers_per_shard: usize,
    /// Per-session deadline at the verifiers.
    pub session_timeout: Duration,
    /// Port the shard-0 verifier binds; shard `k` uses `port + k` (each
    /// shard has its own network, so this only aids log readability).
    pub port: u16,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            shards: 4,
            endorsed: 64,
            rogue: 4,
            stale: 4,
            workers_per_shard: 4,
            session_timeout: Duration::from_secs(2),
            port: 7700,
        }
    }
}

/// One simulated device: its own platform, trusted OS and attestation
/// service (real key material), attesting over its shard's network.
struct SimDevice {
    record: DeviceRecord,
    service: AttestationService,
    _os: TrustedOs,
}

/// One shard: a trusted OS whose network carries the shard's verifier
/// and device traffic.
struct Shard {
    os: TrustedOs,
}

/// A booted simulated fleet, ready to run attestation rounds.
pub struct FleetSim {
    config: FleetSimConfig,
    shards: Vec<Shard>,
    devices: Vec<SimDevice>,
    measurement: [u8; 32],
    verifier_identity_seed: Vec<u8>,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FleetSim {{ shards: {}, devices: {} }}",
            self.shards.len(),
            self.devices.len()
        )
    }
}

/// Outcome of one device's client-side session.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ClientOutcome {
    /// Secret received (bytes) after this long.
    Provisioned(usize, Duration),
    /// The verifier answered with the appraisal-failed marker.
    Rejected(Duration),
    /// Network error / timeout before an answer.
    Failed,
}

/// Aggregated result of one simulated fleet round.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Devices that attested in this round.
    pub devices: usize,
    /// Shards the round ran across.
    pub shards: usize,
    /// Wall-clock duration of the round.
    pub elapsed: Duration,
    /// Devices provisioned with the secret (client-side successes).
    pub provisioned: u64,
    /// Devices rejected by appraisal (client-side rejections).
    pub rejected: u64,
    /// Devices that failed without a verdict (network errors, timeouts).
    pub failed: u64,
    /// Server-side per-outcome statistics, aggregated across shards.
    pub stats: FleetStats,
    /// Per-session client-observed latencies, sorted ascending.
    latencies: Vec<Duration>,
}

impl FleetReport {
    /// Completed sessions per second of wall-clock time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let done = (self.provisioned + self.rejected) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }

    /// Client-observed session latency at percentile `p` (0.0..=100.0).
    ///
    /// Returns `None` when no session completed (e.g. every device timed
    /// out) — an absent percentile, not a misleading zero.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = (p / 100.0 * (self.latencies.len() - 1) as f64).round() as usize;
        Some(self.latencies[rank.min(self.latencies.len() - 1)])
    }
}

/// Formats an optional latency percentile for reports: `-` when absent.
#[must_use]
pub fn fmt_latency(p: Option<Duration>) -> String {
    match p {
        Some(d) => format!("{d:.2?}"),
        None => "-".to_string(),
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet round: {} devices across {} shards in {:.2?}",
            self.devices, self.shards, self.elapsed
        )?;
        writeln!(
            f,
            "  client:  provisioned {}  rejected {}  failed {}",
            self.provisioned, self.rejected, self.failed
        )?;
        writeln!(
            f,
            "  server:  served {}  rejected {}  malformed {}  timed-out {}",
            self.stats.served, self.stats.rejected, self.stats.malformed, self.stats.timed_out
        )?;
        writeln!(
            f,
            "  batching: {} appraisals in {} secure-world entries",
            self.stats.appraised, self.stats.appraisal_batches
        )?;
        write!(
            f,
            "  throughput {:.0} sessions/s, latency p50 {} p95 {} p99 {}",
            self.throughput(),
            fmt_latency(self.latency_percentile(50.0)),
            fmt_latency(self.latency_percentile(95.0)),
            fmt_latency(self.latency_percentile(99.0))
        )
    }
}

/// Runs one attestation session as a fleet client against `net:port`.
///
/// Blocking (each device is its own thread in the simulator), driving
/// the same Msg0→Msg3 exchange a WASI-RA guest performs.
fn run_client(
    net: &Network,
    port: u16,
    service: &AttestationService,
    measurement: &[u8; 32],
    pinned: &[u8; 64],
    rng: &mut Fortuna,
) -> ClientOutcome {
    let start = Instant::now();
    let Ok(conn) = net.connect(port) else {
        return ClientOutcome::Failed;
    };
    let (mut attester, msg0) = Attester::start(rng);
    if conn.send(&msg0.to_bytes()).is_err() {
        return ClientOutcome::Failed;
    }
    let Ok(raw1) = conn.recv() else {
        return ClientOutcome::Failed;
    };
    if raw1 == APPRAISAL_FAILED {
        return ClientOutcome::Rejected(start.elapsed());
    }
    let Ok(msg1) = Msg1::from_bytes(&raw1) else {
        return ClientOutcome::Failed;
    };
    let Ok((msg2, _)) = attester.attest(&msg1, pinned, service, measurement) else {
        return ClientOutcome::Failed;
    };
    if conn.send(&msg2.to_bytes()).is_err() {
        return ClientOutcome::Failed;
    }
    let Ok(raw3) = conn.recv() else {
        return ClientOutcome::Failed;
    };
    if raw3 == APPRAISAL_FAILED {
        return ClientOutcome::Rejected(start.elapsed());
    }
    let Ok(msg3) = Msg3::from_bytes(&raw3) else {
        return ClientOutcome::Failed;
    };
    match attester.handle_msg3(&msg3) {
        Ok((secret, _)) => ClientOutcome::Provisioned(secret.len(), start.elapsed()),
        Err(_) => ClientOutcome::Failed,
    }
}

impl FleetSim {
    /// Boots the shards and manufactures the devices (round-robin across
    /// shards), deriving every device's attestation key from its own
    /// fused seed.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError`] if a shard or device fails secure boot, or if
    /// the shard count does not fit in the port range above `config.port`.
    pub fn boot(config: FleetSimConfig) -> Result<Self, TeeError> {
        // Shard k binds port + k; reject configs whose port arithmetic
        // would wrap (or panic in debug) in `run_with_workers`.
        let highest_shard = config.shards.max(1) - 1;
        if u16::try_from(highest_shard)
            .ok()
            .and_then(|k| config.port.checked_add(k))
            .is_none()
        {
            return Err(TeeError::Net(format!(
                "{} shards starting at port {} exceed the u16 port range",
                config.shards.max(1),
                config.port
            )));
        }
        let shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|k| {
                let platform = Platform::new(PlatformConfig {
                    device_seed: format!("fleet-shard-{k}").into_bytes(),
                    ..PlatformConfig::default()
                });
                tz_hal::boot::install_genuine_chain(&platform).map_err(|_| TeeError::NotBooted)?;
                Ok(Shard {
                    os: TrustedOs::boot(platform)?,
                })
            })
            .collect::<Result<_, TeeError>>()?;

        let kinds = std::iter::repeat_n(DeviceKind::Endorsed, config.endorsed)
            .chain(std::iter::repeat_n(DeviceKind::Rogue, config.rogue))
            .chain(std::iter::repeat_n(DeviceKind::Stale, config.stale));
        let devices: Vec<SimDevice> = kinds
            .enumerate()
            .map(|(id, kind)| {
                let platform = Platform::new(PlatformConfig {
                    device_seed: format!("fleet-device-{id}").into_bytes(),
                    ..PlatformConfig::default()
                });
                tz_hal::boot::install_genuine_chain(&platform).map_err(|_| TeeError::NotBooted)?;
                let os = TrustedOs::boot(platform)?;
                // Stale devices report a WaTZ version below the fleet's
                // minimum (an un-updated runtime in the wild).
                let service = match kind {
                    DeviceKind::Stale => AttestationService::install_with_version(&os, 0),
                    _ => AttestationService::install(&os),
                };
                Ok(SimDevice {
                    record: DeviceRecord {
                        id: id as u32,
                        shard: id % shards.len(),
                        kind,
                        public_key: service.public_key(),
                    },
                    service,
                    _os: os,
                })
            })
            .collect::<Result<_, TeeError>>()?;

        Ok(FleetSim {
            config,
            shards,
            devices,
            measurement: Sha256::digest(b"fleet reference application"),
            verifier_identity_seed: b"fleet-owner identity".to_vec(),
        })
    }

    /// The device registry (id, shard assignment, kind, endorsement key).
    #[must_use]
    pub fn registry(&self) -> Vec<DeviceRecord> {
        self.devices.iter().map(|d| d.record.clone()).collect()
    }

    /// The reference measurement every device claims.
    #[must_use]
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Runs one round with the configured worker count per shard.
    #[must_use]
    pub fn run(&self) -> FleetReport {
        self.run_with_workers(self.config.workers_per_shard)
    }

    /// Runs one round: spawns a [`FleetVerifier`] per shard, drives every
    /// device through a concurrent attestation session, shuts the
    /// verifiers down and aggregates the report.
    ///
    /// Rounds are repeatable — fresh verifiers and fresh ephemeral
    /// session keys each time (benches sweep `workers` this way).
    #[must_use]
    pub fn run_with_workers(&self, workers: usize) -> FleetReport {
        // Endorse endorsed AND stale devices: stale ones must fail the
        // version gate, not the endorsement check (that would conflate
        // them with rogues).
        let mut rng = Fortuna::from_seed(&self.verifier_identity_seed);
        let identity = SigningKey::generate(&mut rng);
        let mut base = VerifierConfig::new(identity)
            .trust_measurement(self.measurement)
            .require_min_version(1)
            .with_secret(b"fleet configuration secret".to_vec());
        for device in &self.devices {
            if device.record.kind != DeviceKind::Rogue {
                base = base.endorse_device(device.record.public_key);
            }
        }
        let pinned = base.identity_public_key();

        let fleet_config = FleetConfig {
            workers: workers.max(1),
            session_timeout: self.config.session_timeout,
            ..FleetConfig::default()
        };
        let verifiers: Vec<FleetVerifier> = self
            .shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                let port = self.config.port + k as u16;
                FleetVerifier::spawn(&shard.os, base.clone(), fleet_config.clone(), port)
                    .expect("shard port free")
            })
            .collect();

        let outcomes: Arc<Mutex<Vec<ClientOutcome>>> =
            Arc::new(Mutex::new(Vec::with_capacity(self.devices.len())));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for device in &self.devices {
                let net = self.shards[device.record.shard].os.shared_network();
                let port = self.config.port + device.record.shard as u16;
                let measurement = self.measurement;
                let outcomes = Arc::clone(&outcomes);
                scope.spawn(move || {
                    let mut rng =
                        Fortuna::from_seed(format!("client-{}", device.record.id).as_bytes());
                    let outcome =
                        run_client(&net, port, &device.service, &measurement, &pinned, &mut rng);
                    outcomes.lock().push(outcome);
                });
            }
        });
        let elapsed = started.elapsed();

        let mut stats = FleetStats::default();
        for verifier in verifiers {
            stats.merge(&verifier.shutdown());
        }

        let (mut provisioned, mut rejected, mut failed) = (0u64, 0u64, 0u64);
        let mut latencies = Vec::new();
        for outcome in outcomes.lock().iter() {
            match outcome {
                ClientOutcome::Provisioned(_, d) => {
                    provisioned += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Rejected(d) => {
                    rejected += 1;
                    latencies.push(*d);
                }
                ClientOutcome::Failed => failed += 1,
            }
        }
        latencies.sort_unstable();

        FleetReport {
            devices: self.devices.len(),
            shards: self.shards.len(),
            elapsed,
            provisioned,
            rejected,
            failed,
            stats,
            latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies: Vec<Duration>, provisioned: u64, elapsed: Duration) -> FleetReport {
        FleetReport {
            devices: latencies.len(),
            shards: 1,
            elapsed,
            provisioned,
            rejected: 0,
            failed: 0,
            stats: FleetStats::default(),
            latencies,
        }
    }

    #[test]
    fn latency_percentile_of_empty_report_is_absent_not_zero() {
        // A round where every session timed out has no latencies; the
        // percentiles must be absent rather than a misleading 0 (ROADMAP
        // open item).
        let r = report_with(vec![], 0, Duration::from_secs(1));
        assert_eq!(r.latency_percentile(50.0), None);
        assert_eq!(r.latency_percentile(99.0), None);
        assert_eq!(fmt_latency(r.latency_percentile(50.0)), "-");
        assert_eq!(r.throughput(), 0.0);
        // The Display form shows dashes, not zeros.
        let text = format!("{r}");
        assert!(text.contains("p50 - p95 - p99 -"), "{text}");
    }

    #[test]
    fn latency_percentiles_pick_sorted_ranks() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let r = report_with(lat, 100, Duration::from_secs(2));
        assert_eq!(r.latency_percentile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(
            r.latency_percentile(100.0),
            Some(Duration::from_millis(100))
        );
        let p50 = r.latency_percentile(50.0).unwrap();
        assert!(p50 >= Duration::from_millis(50) && p50 <= Duration::from_millis(51));
        assert_eq!(r.throughput(), 50.0);
    }

    #[test]
    fn default_sim_config_is_a_runnable_shape() {
        let config = FleetSimConfig::default();
        assert!(config.shards >= 1);
        assert!(config.endorsed > 0);
        assert!(config.workers_per_shard >= 1);
    }
}

//! Concurrency tests for the fleet attestation service: many devices
//! against one service, stalled attesters, batched appraisal, and
//! per-outcome accounting.

use std::time::Duration;

use optee_sim::{TeeError, TrustedOs};
use tz_hal::{Platform, PlatformConfig};
use watz_attestation::attester::Attester;
use watz_attestation::service::AttestationService;
use watz_attestation::verifier::{Verifier, VerifierConfig};
use watz_attestation::wire::{Msg1, Msg2, Msg3, INTEGRITY_FAILED};
use watz_crypto::ecdsa::SigningKey;
use watz_crypto::fortuna::Fortuna;
use watz_crypto::sha256::Sha256;
use watz_fleet::sim::{DeviceKind, FleetSim, FleetSimConfig};
use watz_fleet::{
    appraise_batch, prepare_msg1_batch, ConfigError, FleetConfig, FleetVerifier, SpawnError,
};

fn booted_os(seed: &[u8]) -> TrustedOs {
    let platform = Platform::new(PlatformConfig {
        device_seed: seed.to_vec(),
        ..PlatformConfig::default()
    });
    tz_hal::boot::install_genuine_chain(&platform).unwrap();
    TrustedOs::boot(platform).unwrap()
}

fn measurement() -> [u8; 32] {
    Sha256::digest(b"fleet test app")
}

fn verifier_config_for(services: &[&AttestationService]) -> (VerifierConfig, [u8; 64]) {
    let mut rng = Fortuna::from_seed(b"fleet test verifier identity");
    let identity = SigningKey::generate(&mut rng);
    let mut config = VerifierConfig::new(identity)
        .trust_measurement(measurement())
        .with_secret(b"fleet secret".to_vec());
    for svc in services {
        config = config.endorse_device(svc.public_key());
    }
    let pinned = config.identity_public_key();
    (config, pinned)
}

/// Drives one honest client session; returns the decrypted secret.
fn honest_session(
    os: &TrustedOs,
    port: u16,
    service: &AttestationService,
    pinned: &[u8; 64],
    rng: &mut Fortuna,
) -> Vec<u8> {
    let conn = os.network().connect(port).unwrap();
    let (mut attester, msg0) = Attester::start(rng);
    conn.send(&msg0.to_bytes()).unwrap();
    let msg1 = Msg1::from_bytes(&conn.recv().unwrap()).unwrap();
    let (msg2, _) = attester
        .attest(&msg1, pinned, service, &measurement())
        .unwrap();
    conn.send(&msg2.to_bytes()).unwrap();
    let msg3 = Msg3::from_bytes(&conn.recv().unwrap()).unwrap();
    let (secret, _) = attester.handle_msg3(&msg3).unwrap();
    secret
}

#[test]
fn sixty_four_devices_attest_concurrently_against_one_service() {
    // The acceptance-criteria test: >= 64 simulated devices, one shard
    // (one service), correct per-outcome stats.
    let sim = FleetSim::boot(FleetSimConfig {
        shards: 1,
        endorsed: 64,
        rogue: 0,
        stale: 0,
        workers_per_shard: 4,
        session_timeout: Duration::from_secs(10),
        port: 7600,
        ..FleetSimConfig::default()
    })
    .unwrap();
    let report = sim.run();

    assert_eq!(report.devices, 64);
    assert_eq!(report.provisioned, 64, "every endorsed device is served");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.failed, 0);
    assert_eq!(report.stats.accepted, 64);
    assert_eq!(report.stats.served, 64);
    assert_eq!(report.stats.rejected, 0);
    assert_eq!(report.stats.malformed, 0);
    assert_eq!(report.stats.timed_out, 0);
    assert_eq!(report.stats.completed(), 64);
    assert_eq!(report.stats.appraised, 64);
    assert!(report.stats.appraisal_batches >= 1);
    assert!(report.stats.appraisal_batches <= report.stats.appraised);
    assert!(report.throughput() > 0.0);
    assert!(report.latency_percentile(50.0) <= report.latency_percentile(99.0));
    assert!(
        report.latency_percentile(50.0).is_some(),
        "completed sessions must yield latency percentiles"
    );
    // Every served session crossed all four handshake boundaries, so
    // each phase carries exactly one timing sample per session.
    for (name, samples) in report.phases.phases() {
        assert_eq!(samples.len(), 64, "phase {name} sample count");
    }
    assert_eq!(
        report.world_switches(),
        report.stats.msg1_batches + report.stats.appraisal_batches
    );
    assert!(
        report.world_switches() >= 2,
        "at least one msg1 batch and one appraisal batch"
    );
}

#[test]
fn mixed_fleet_outcomes_add_up_across_shards() {
    let sim = FleetSim::boot(FleetSimConfig {
        shards: 4,
        endorsed: 24,
        rogue: 4,
        stale: 4,
        workers_per_shard: 2,
        session_timeout: Duration::from_secs(10),
        port: 7620,
        ..FleetSimConfig::default()
    })
    .unwrap();

    let registry = sim.registry();
    assert_eq!(registry.len(), 32);
    let shards_used: std::collections::HashSet<usize> = registry.iter().map(|d| d.shard).collect();
    assert_eq!(shards_used.len(), 4, "devices spread over all shards");

    let report = sim.run();
    assert_eq!(report.shards, 4);
    assert_eq!(report.provisioned, 24, "endorsed devices served");
    assert_eq!(
        report.rejected, 8,
        "rogue devices fail endorsement, stale ones the version gate"
    );
    assert_eq!(report.failed, 0);
    assert_eq!(report.stats.served, 24);
    assert_eq!(report.stats.rejected, 8);
    assert_eq!(report.stats.completed(), 32);
}

#[test]
fn stalled_mid_handshake_attester_does_not_block_other_sessions() {
    // One worker, a generous deadline: if the stalled session blocked the
    // worker, no honest session could complete before it times out.
    let os = booted_os(b"fleet-stall-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let fleet = FleetConfig {
        workers: 1,
        session_timeout: Duration::from_secs(30),
        ..FleetConfig::default()
    };
    let verifier = FleetVerifier::spawn(&os, config, fleet, 7640).unwrap();

    // Stall mid-handshake: send msg0, receive msg1, then go silent.
    let stalled = os.network().connect(7640).unwrap();
    let mut srng = Fortuna::from_seed(b"stalled client");
    let (_stalled_attester, msg0) = Attester::start(&mut srng);
    stalled.send(&msg0.to_bytes()).unwrap();
    let raw1 = stalled.recv().unwrap();
    assert!(Msg1::from_bytes(&raw1).is_ok());

    // Eight honest clients must all be served while the stalled session
    // is still in flight.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let os = os.clone();
                let service = &service;
                scope.spawn(move || {
                    let mut rng = Fortuna::from_seed(format!("honest-{i}").as_bytes());
                    honest_session(&os, 7640, service, &pinned, &mut rng)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"fleet secret");
        }
    });

    let live = verifier.stats();
    assert_eq!(live.served, 8, "honest sessions served while one stalls");
    assert_eq!(live.timed_out, 0, "the stalled session is still pending");

    // Unwedge the stalled session with garbage so shutdown's drain does
    // not have to wait out the 30 s deadline — and malformed accounting
    // gets exercised on the way.
    stalled.send(b"garbage instead of msg2").unwrap();
    assert_eq!(stalled.recv().unwrap(), INTEGRITY_FAILED);
    let stats = verifier.shutdown();
    assert_eq!(stats.served, 8);
    assert_eq!(stats.malformed, 1);
    assert_eq!(stats.completed(), 9);
}

#[test]
fn stalled_attester_is_evicted_and_counted_as_timed_out() {
    let os = booted_os(b"fleet-timeout-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let fleet = FleetConfig {
        workers: 2,
        session_timeout: Duration::from_millis(250),
        ..FleetConfig::default()
    };
    let verifier = FleetVerifier::spawn(&os, config, fleet, 7641).unwrap();

    // Connects and never sends anything at all.
    let stalled = os.network().connect(7641).unwrap();

    let mut rng = Fortuna::from_seed(b"honest after stall");
    let secret = honest_session(&os, 7641, &service, &pinned, &mut rng);
    assert_eq!(secret, b"fleet secret");

    // Shutdown drains: the stalled session is evicted at its deadline.
    let stats = verifier.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed(), 2);
    drop(stalled);
}

#[test]
fn peer_disconnects_are_accounted_as_disconnected_not_timed_out() {
    let os = booted_os(b"fleet-disconnect-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let fleet = FleetConfig {
        workers: 2,
        session_timeout: Duration::from_secs(30),
        ..FleetConfig::default()
    };
    let verifier = FleetVerifier::spawn(&os, config, fleet, 7643).unwrap();

    // One peer connects and hangs up without a word (AwaitMsg0 hangup);
    // another completes msg0->msg1 and then hangs up (AwaitMsg2 hangup).
    let ghost = os.network().connect(7643).unwrap();
    drop(ghost);
    let flake = os.network().connect(7643).unwrap();
    let mut frng = Fortuna::from_seed(b"flaky client");
    let (_flake_attester, msg0) = Attester::start(&mut frng);
    flake.send(&msg0.to_bytes()).unwrap();
    let raw1 = flake.recv().unwrap();
    assert!(Msg1::from_bytes(&raw1).is_ok());
    drop(flake);

    // An honest session still completes alongside the flappers.
    let mut rng = Fortuna::from_seed(b"honest among flappers");
    let secret = honest_session(&os, 7643, &service, &pinned, &mut rng);
    assert_eq!(secret, b"fleet secret");

    let stats = verifier.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(
        stats.disconnected, 2,
        "hangups get their own bucket, immediately (30 s deadline untouched)"
    );
    assert_eq!(stats.timed_out, 0, "a hangup is not a timeout");
    assert_eq!(stats.completed(), 3);
    assert_eq!(stats.accepted, stats.completed());
}

#[test]
fn drain_under_storm_loses_no_session() {
    // Storm the service and shut it down mid-traffic: every accepted
    // connection must still run to an outcome across the per-worker
    // admission channels — accepted == completed(), nothing silently
    // lost. Small per-worker caps force connections to queue in the
    // admission channels so the drain path actually drains them.
    let os = booted_os(b"fleet-drain-storm-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let fleet = FleetConfig {
        workers: 4,
        max_sessions_per_worker: 2,
        session_timeout: Duration::from_secs(10),
        ..FleetConfig::default()
    };
    let verifier = FleetVerifier::spawn(&os, config, fleet, 7644).unwrap();

    // 24 honest sessions complete through the queues...
    let service = std::sync::Arc::new(service);
    std::thread::scope(|scope| {
        for i in 0..24 {
            let os = os.clone();
            let service = std::sync::Arc::clone(&service);
            scope.spawn(move || {
                let mut rng = Fortuna::from_seed(format!("storm-{i}").as_bytes());
                let secret = honest_session(&os, 7644, &service, &pinned, &mut rng);
                assert_eq!(secret, b"fleet secret");
            });
        }
    });
    // ...then a hangup storm lands right before shutdown, so the drain
    // has to flush sessions it never got to speak to.
    for _ in 0..16 {
        drop(os.network().connect(7644).unwrap());
    }

    let stats = verifier.shutdown();
    assert_eq!(stats.accepted, 40);
    assert_eq!(
        stats.completed(),
        stats.accepted,
        "no session lost across the per-worker queues: {stats:?}"
    );
    assert_eq!(stats.served, 24);
    assert_eq!(stats.disconnected, 16);
}

#[test]
fn worker_scaling_is_not_negative() {
    // The worker-scaling regression test. On multi-core hosts the
    // event-driven design must scale (>= 2x at 4 workers); on the 1-2
    // core machines this suite also runs on, parallel speedup is
    // physically unavailable, so pin the original bug's symptom instead:
    // adding workers must not *cost* throughput (the polled shared-queue
    // design got slower with more workers).
    let sim = FleetSim::boot(FleetSimConfig {
        shards: 1,
        endorsed: 24,
        rogue: 0,
        stale: 0,
        workers_per_shard: 1,
        session_timeout: Duration::from_secs(10),
        port: 7680,
        ..FleetSimConfig::default()
    })
    .unwrap();
    // Warm-up round: manufactures all devices so neither timed round
    // pays the boot cost.
    let warm = sim.run_with_workers(1);
    assert_eq!(warm.provisioned, 24);

    let best = |workers: usize| {
        (0..3)
            .map(|_| {
                let r = sim.run_with_workers(workers);
                assert_eq!(
                    r.provisioned, 24,
                    "all sessions served at {workers} workers"
                );
                assert_eq!(r.stats.accepted, r.stats.completed());
                r.throughput()
            })
            .fold(0.0f64, f64::max)
    };
    let one = best(1);
    let four = best(4);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let ratio = four / one;
    if cores >= 4 {
        assert!(
            ratio >= 2.0,
            "4 workers must give >= 2x of 1 worker on a {cores}-core host (got {ratio:.2}x: {one:.0} -> {four:.0} sessions/s)"
        );
    } else {
        assert!(
            ratio >= 0.5,
            "extra workers must not cost throughput even on a {cores}-core host (got {ratio:.2}x: {one:.0} -> {four:.0} sessions/s)"
        );
    }
}

#[test]
fn batched_appraisal_uses_one_world_switch() {
    // Eight mid-session verifiers, eight msg2s, one enter_secure.
    let os = booted_os(b"fleet-batch-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);

    let mut sessions: Vec<(Verifier, Msg2)> = (0..8)
        .map(|i| {
            let mut arng = Fortuna::from_seed(format!("batch-attester-{i}").as_bytes());
            let mut vrng = Fortuna::from_seed(format!("batch-verifier-{i}").as_bytes());
            let (mut attester, msg0) = Attester::start(&mut arng);
            let mut verifier = Verifier::new(config.clone());
            let (msg1, _) = verifier.handle_msg0(&msg0, &mut vrng).unwrap();
            let (msg2, _) = attester
                .attest(&msg1, &pinned, &service, &measurement())
                .unwrap();
            (verifier, msg2)
        })
        .collect();

    let platform = os.platform();
    let enters_before = platform.transition_stats().enters();
    let outcomes = appraise_batch(
        platform,
        sessions.iter_mut().map(|(v, m)| (v, &*m)).collect(),
    );
    let enters_after = platform.transition_stats().enters();

    assert_eq!(outcomes.len(), 8);
    assert!(outcomes.iter().all(Result::is_ok), "all appraisals succeed");
    assert_eq!(
        enters_after - enters_before,
        1,
        "the whole batch shares a single secure-world entry"
    );
}

#[test]
fn batched_msg0_handling_uses_one_world_switch() {
    // Eight fresh sessions, eight msg0s, one enter_secure for all the
    // msg1 challenge derivations — mirroring the msg2 appraisal batch.
    let os = booted_os(b"fleet-msg0-batch-device");
    let service = AttestationService::install(&os);
    let (config, _pinned) = verifier_config_for(&[&service]);

    let mut sessions: Vec<(Verifier, watz_attestation::wire::Msg0)> = (0..8)
        .map(|i| {
            let mut arng = Fortuna::from_seed(format!("msg0-batch-attester-{i}").as_bytes());
            let (_attester, msg0) = Attester::start(&mut arng);
            (Verifier::new(config.clone()), msg0)
        })
        .collect();

    let platform = os.platform();
    let mut vrng = os.kernel_prng("msg0-batch-test");
    let enters_before = platform.transition_stats().enters();
    let outcomes = prepare_msg1_batch(
        platform,
        sessions.iter_mut().map(|(v, m)| (v, &*m)).collect(),
        &mut vrng,
    );
    let enters_after = platform.transition_stats().enters();

    assert_eq!(outcomes.len(), 8);
    assert!(outcomes.iter().all(Result::is_ok), "all msg1s derived");
    assert_eq!(
        enters_after - enters_before,
        1,
        "the whole msg0 batch shares a single secure-world entry"
    );
}

#[test]
fn fleet_service_batches_msg0s_end_to_end() {
    // Through the full service: sessions complete and the msg1-batch
    // world switches are both counted and bounded by the session count.
    let os = booted_os(b"fleet-msg0-e2e-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let verifier = FleetVerifier::spawn(&os, config, FleetConfig::default(), 7646).unwrap();

    let n = 12;
    let service = std::sync::Arc::new(service);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let os = os.clone();
            let service = std::sync::Arc::clone(&service);
            std::thread::spawn(move || {
                let mut rng = Fortuna::from_seed(format!("msg0-e2e-{i}").as_bytes());
                honest_session(&os, 7646, &service, &pinned, &mut rng)
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), b"fleet secret");
    }

    let stats = verifier.shutdown();
    assert_eq!(stats.served, n as u64);
    assert!(stats.msg1_batches >= 1, "msg0s go through batches");
    assert!(
        stats.msg1_batches <= stats.accepted,
        "never more msg1 batches than sessions"
    );
}

#[test]
fn malformed_msg0_counted_and_rejected_fast() {
    let os = booted_os(b"fleet-malformed-device");
    let service = AttestationService::install(&os);
    let (config, _pinned) = verifier_config_for(&[&service]);
    let verifier = FleetVerifier::spawn(&os, config, FleetConfig::default(), 7642).unwrap();

    let conn = os.network().connect(7642).unwrap();
    conn.send(b"definitely not a msg0").unwrap();
    assert_eq!(conn.recv().unwrap(), INTEGRITY_FAILED);

    let stats = verifier.shutdown();
    assert_eq!(stats.malformed, 1);
    assert_eq!(stats.completed(), 1);
}

#[test]
fn shard_networks_are_isolated_and_ports_freed_after_shutdown() {
    let sim = FleetSim::boot(FleetSimConfig {
        shards: 2,
        endorsed: 4,
        rogue: 0,
        stale: 0,
        workers_per_shard: 1,
        session_timeout: Duration::from_secs(5),
        port: 7660,
        ..FleetSimConfig::default()
    })
    .unwrap();
    let report = sim.run();
    assert_eq!(report.provisioned, 4);

    // Rounds are repeatable: the shard ports were unbound on shutdown and
    // a second round rebinds them cleanly.
    let report2 = sim.run_with_workers(2);
    assert_eq!(report2.provisioned, 4);

    // Between rounds every shard network is back to zero bound ports.
    let os = booted_os(b"port-bookkeeping");
    let service = AttestationService::install(&os);
    let (config, _pinned) = verifier_config_for(&[&service]);
    assert!(!os.network().is_bound(7665));
    let verifier = FleetVerifier::spawn(&os, config, FleetConfig::default(), 7665).unwrap();
    assert!(os.network().is_bound(7665));
    assert_eq!(os.network().bound_ports(), vec![7665]);
    let _ = verifier.shutdown();
    assert!(!os.network().is_bound(7665));
    assert!(os.network().bound_ports().is_empty());

    // Device kinds land where the registry says.
    for record in sim.registry() {
        assert_eq!(record.kind, DeviceKind::Endorsed);
        assert!(record.shard < 2);
    }
}

#[test]
fn devices_manufacture_lazily_on_first_session() {
    // Boot registers specs only; manufacturing (platform, boot chain,
    // key derivation) happens on the first session that schedules a
    // device — a never-scheduled device is never manufactured, so
    // simulations can size past boot-time memory.
    let sim = FleetSim::boot(FleetSimConfig {
        shards: 1,
        endorsed: 6,
        rogue: 1,
        stale: 1,
        workers_per_shard: 2,
        session_timeout: Duration::from_secs(10),
        port: 7690,
        ..FleetSimConfig::default()
    })
    .unwrap();
    assert_eq!(sim.manufactured_count(), 0, "boot must not manufacture");
    let registry = sim.registry();
    assert_eq!(registry.len(), 8);
    assert!(
        registry.iter().all(|r| r.public_key.is_none()),
        "registry reads must not manufacture either"
    );

    // A partial round: only devices 0..3 (all endorsed) attest.
    let report = sim.run_devices(&[0, 1, 2], 2);
    assert_eq!(report.devices, 3);
    assert_eq!(report.provisioned, 3);
    assert_eq!(report.failed, 0);
    assert_eq!(sim.manufactured_count(), 3, "only scheduled devices exist");
    assert!(sim.is_manufactured(0));
    assert!(
        !sim.is_manufactured(7),
        "never-scheduled device must never be manufactured"
    );
    let registry = sim.registry();
    assert!(registry[0].public_key.is_some(), "keyed on first session");
    assert!(registry[7].public_key.is_none());

    // A full round manufactures the rest exactly once and still lands
    // every verdict where the kinds say.
    let report = sim.run();
    assert_eq!(report.devices, 8);
    assert_eq!(report.provisioned, 6);
    assert_eq!(report.rejected, 2, "rogue + stale rejected");
    assert_eq!(sim.manufactured_count(), 8);
}

#[test]
fn crash_at_every_handshake_phase_lands_in_disconnected() {
    // A client can die at any protocol boundary. Each hangup must resolve
    // promptly as `disconnected` (never `timed_out` — the 30 s deadline is
    // deliberately generous so a timeout misclassification would show),
    // the worker's session set must shrink back to empty, and the verdict
    // bookkeeping must stay exact.
    let os = booted_os(b"fleet-crash-phase-device");
    let service = AttestationService::install(&os);
    let (config, pinned) = verifier_config_for(&[&service]);
    let fleet = FleetConfig {
        workers: 2,
        session_timeout: Duration::from_secs(30),
        ..FleetConfig::default()
    };
    let verifier = FleetVerifier::spawn(&os, config, fleet, 7647).unwrap();

    // Phase 0: connect and hang up without a word.
    drop(os.network().connect(7647).unwrap());

    // Phase 1: hang up right after sending msg0.
    let mut rng = Fortuna::from_seed(b"crash-after-msg0");
    let c = os.network().connect(7647).unwrap();
    let (_attester, msg0) = Attester::start(&mut rng);
    c.send(&msg0.to_bytes()).unwrap();
    drop(c);

    // Phase 2: hang up after receiving msg1.
    let mut rng = Fortuna::from_seed(b"crash-after-msg1");
    let c = os.network().connect(7647).unwrap();
    let (_attester, msg0) = Attester::start(&mut rng);
    c.send(&msg0.to_bytes()).unwrap();
    assert!(Msg1::from_bytes(&c.recv().unwrap()).is_ok());
    drop(c);

    // Phase 3: hang up right after sending msg2 — the appraisal verdict
    // has nowhere to go, so the session must be re-accounted as a
    // disconnect rather than counted served.
    let mut rng = Fortuna::from_seed(b"crash-after-msg2");
    let c = os.network().connect(7647).unwrap();
    let (mut attester, msg0) = Attester::start(&mut rng);
    c.send(&msg0.to_bytes()).unwrap();
    let msg1 = Msg1::from_bytes(&c.recv().unwrap()).unwrap();
    let (msg2, _) = attester
        .attest(&msg1, &pinned, &service, &measurement())
        .unwrap();
    c.send(&msg2.to_bytes()).unwrap();
    drop(c);

    // An honest session still completes amid the wreckage.
    let mut rng = Fortuna::from_seed(b"honest-amid-crashes");
    let secret = honest_session(&os, 7647, &service, &pinned, &mut rng);
    assert_eq!(secret, b"fleet secret");

    // Hangups resolve without waiting out the 30 s deadline.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while verifier.live_sessions() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(verifier.live_sessions(), 0, "no leaked sessions");

    let stats = verifier.shutdown();
    assert_eq!(stats.served, 1);
    assert_eq!(
        stats.disconnected, 4,
        "every crash phase lands in disconnected: {stats:?}"
    );
    assert_eq!(stats.timed_out, 0, "a hangup is never a timeout");
    assert_eq!(stats.completed(), stats.accepted);
}

#[test]
fn degenerate_fleet_config_is_rejected_at_spawn() {
    // Misconfigured fleets must fail fast with a typed error instead of
    // spawning workers that can never make progress.
    let os = booted_os(b"fleet-config-reject-device");
    let service = AttestationService::install(&os);
    let (config, _pinned) = verifier_config_for(&[&service]);

    for (bad, expect) in [
        (
            FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            },
            ConfigError::ZeroWorkers,
        ),
        (
            FleetConfig {
                session_timeout: Duration::ZERO,
                ..FleetConfig::default()
            },
            ConfigError::ZeroSessionTimeout,
        ),
        (
            FleetConfig {
                accept_backlog: 0,
                ..FleetConfig::default()
            },
            ConfigError::ZeroBacklog,
        ),
        (
            FleetConfig {
                max_sessions_per_worker: 0,
                ..FleetConfig::default()
            },
            ConfigError::ZeroSessionCap,
        ),
    ] {
        let err = FleetVerifier::spawn(&os, config.clone(), bad, 7648).unwrap_err();
        match err {
            SpawnError::Config(c) => assert_eq!(c, expect),
            SpawnError::Net(e) => panic!("expected a config rejection, got Net({e:?})"),
        }
        assert!(
            !os.network().is_bound(7648),
            "a rejected spawn must not leave the port bound"
        );
    }

    // A port conflict is a Net error, not a config error.
    let ok = FleetVerifier::spawn(&os, config.clone(), FleetConfig::default(), 7648).unwrap();
    let err = FleetVerifier::spawn(&os, config, FleetConfig::default(), 7648).unwrap_err();
    assert!(matches!(err, SpawnError::Net(_)));
    let _ = ok.shutdown();
}

#[test]
fn port_overflowing_shard_count_rejected_at_boot() {
    let err = FleetSim::boot(FleetSimConfig {
        shards: 10,
        port: 65530,
        ..FleetSimConfig::default()
    })
    .unwrap_err();
    assert!(matches!(err, TeeError::Net(_)));
}

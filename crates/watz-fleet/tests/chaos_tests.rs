//! Chaos differential suite: seeded fault schedules crossed with fleet
//! rounds. Every test pins the invariants the robustness plane exists to
//! protect:
//!
//! * **no false accept** — tampered or corrupted evidence lands in
//!   `rejected`/`malformed`, never in `served`;
//! * **no leaked sessions, no wedged workers** — every accepted session
//!   resolves into exactly one outcome bucket (`accepted == completed()`)
//!   and the drain returns promptly;
//! * **retries converge** — below saturation, a fleet with a retry budget
//!   reaches the same verdicts a fault-free round reaches.
//!
//! Fault schedules are deterministic in the plan seed (see
//! [`optee_sim::net::FaultPlan`]), so any failure here reproduces from the
//! seed printed in the test output.

use std::time::Duration;

use optee_sim::net::FaultPlan;
use optee_sim::TrustedOs;
use tz_hal::{Platform, PlatformConfig};
use watz_attestation::attester::{Attester, RetryPolicy};
use watz_attestation::service::AttestationService;
use watz_attestation::verifier::VerifierConfig;
use watz_attestation::wire::{Msg1, INTEGRITY_FAILED};
use watz_crypto::ecdsa::SigningKey;
use watz_crypto::fortuna::Fortuna;
use watz_crypto::sha256::Sha256;
use watz_fleet::sim::{FleetSim, FleetSimConfig};
use watz_fleet::{FleetConfig, FleetReport, FleetVerifier};

/// Fixed chaos seeds: every CI run replays exactly these schedules.
const FIXED_SEEDS: [u64; 3] = [0x00C0_FFEE, 7, 42];

/// A moderate all-faults plan: every fault class armed, rates low enough
/// that a retry budget can absorb them (the "below saturation" regime).
fn moderate_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop_rate(0.04)
        .delay_rate(0.05, Duration::from_millis(10))
        .corrupt_rate(0.04, 2)
        .duplicate_rate(0.05)
        .disconnect_rate(0.02)
}

/// A retry budget generous enough to ride out the moderate plan. The
/// receive timeout is shorter than the transport's 10 s default so dropped
/// frames cost a bounded wait, but long enough to cover honest server
/// latency with the whole fleet handshaking at once — a too-aggressive
/// client timeout turns queueing delay into a retry storm (congestion
/// collapse), which is exactly the regime this suite must stay below.
fn generous_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        deadline: Duration::from_secs(60),
        recv_timeout: Duration::from_secs(2),
        jitter_seed: 1,
    }
}

fn chaos_sim(seed: u64, plan: Option<FaultPlan>, retry: Option<RetryPolicy>) -> FleetSim {
    FleetSim::boot(FleetSimConfig {
        shards: 2,
        endorsed: 20,
        rogue: 2,
        stale: 2,
        workers_per_shard: 2,
        session_timeout: Duration::from_secs(10),
        port: 7800 + (seed % 50) as u16,
        fault_plan: plan,
        retry,
        ..FleetSimConfig::default()
    })
    .unwrap()
}

/// The bucket invariants that must hold under ANY fault schedule.
fn assert_conservation(report: &FleetReport, devices: u64, seed: u64) {
    assert_eq!(
        report.provisioned + report.rejected + report.shed + report.failed,
        devices,
        "seed {seed:#x}: every device lands in exactly one client bucket: {report}"
    );
    assert_eq!(
        report.stats.accepted,
        report.stats.completed(),
        "seed {seed:#x}: every accepted session lands in exactly one server bucket: {:?}",
        report.stats
    );
    assert!(
        report.provisioned <= report.stats.served,
        "seed {seed:#x}: a client cannot be provisioned without a served session"
    );
}

#[test]
fn chaos_retries_converge_below_saturation() {
    // Under each fixed seed, a fleet with a retry budget must reach the
    // exact verdict distribution of a fault-free round: all endorsed
    // devices provisioned, all rogue/stale rejected, nothing lost.
    for seed in FIXED_SEEDS {
        eprintln!("chaos seed {seed:#x}");
        let sim = chaos_sim(seed, Some(moderate_plan(seed)), Some(generous_retries()));
        let report = sim.run();
        assert_conservation(&report, 24, seed);
        assert_eq!(
            report.provisioned, 20,
            "seed {seed:#x}: endorsed devices converge through retries: {report}"
        );
        assert_eq!(
            report.rejected, 4,
            "seed {seed:#x}: rogue and stale devices still rejected: {report}"
        );
        assert_eq!(
            report.failed, 0,
            "seed {seed:#x}: no device gave up: {report}"
        );
        let log = sim.take_fault_log();
        assert!(
            !log.is_empty(),
            "seed {seed:#x}: the plan must actually have injected faults"
        );
        // The schedule is deterministic: when a fault forced a client to
        // restart, the report says so.
        eprintln!(
            "seed {seed:#x}: {} faults injected, {} client retries",
            log.len(),
            report.retries
        );
    }
}

#[test]
fn chaos_without_retries_still_conserves_every_session() {
    // Single-attempt clients under a disconnect-heavy schedule: many
    // sessions fail, but nothing leaks — every accepted session resolves
    // into exactly one bucket and the round returns promptly (no wedged
    // worker waits out the 10 s deadline per crash).
    for seed in FIXED_SEEDS {
        let plan = FaultPlan::new(seed)
            .drop_rate(0.05)
            .disconnect_rate(0.25)
            .corrupt_rate(0.05, 2);
        let sim = chaos_sim(seed, Some(plan), None);
        let report = sim.run();
        assert_conservation(&report, 24, seed);
        assert!(
            report.provisioned <= 20,
            "seed {seed:#x}: rogue/stale devices can never be provisioned"
        );
    }
}

#[test]
fn full_corruption_never_false_accepts() {
    // Every frame in flight is corrupted (rate 1.0, 4 bytes). No secret
    // may ever be provisioned and no session served: corruption surfaces
    // as malformed frames, MAC failures or aborted handshakes — never as
    // a false accept.
    for seed in FIXED_SEEDS {
        let plan = FaultPlan::new(seed).corrupt_rate(1.0, 4);
        let sim = chaos_sim(
            seed,
            Some(plan),
            // A few fast retries: they must not help against 100%
            // corruption, only exercise the restart path.
            Some(RetryPolicy {
                max_attempts: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
                deadline: Duration::from_secs(30),
                recv_timeout: Duration::from_millis(300),
                jitter_seed: seed,
            }),
        );
        let report = sim.run();
        assert_conservation(&report, 24, seed);
        assert_eq!(
            report.provisioned, 0,
            "seed {seed:#x}: no client may be provisioned under full corruption: {report}"
        );
        assert_eq!(
            report.stats.served, 0,
            "seed {seed:#x}: no session may be served under full corruption: {:?}",
            report.stats
        );
        assert!(
            report.stats.malformed + report.stats.corrupt_rejected + report.stats.disconnected > 0,
            "seed {seed:#x}: corruption must be visible in the server buckets: {:?}",
            report.stats
        );
    }
}

#[test]
fn tampered_msg2_bit_flips_are_rejected_never_served() {
    // The targeted differential: run honest handshakes but flip one bit
    // of the outgoing msg2 at a swept position. Every tampered session
    // must come back INTEGRITY_FAILED (tamper-evident, retryable for an
    // honest client hit by corruption) and be accounted as rejected or
    // malformed — served must stay zero.
    let platform = Platform::new(PlatformConfig {
        device_seed: b"chaos-tamper-device".to_vec(),
        ..PlatformConfig::default()
    });
    tz_hal::boot::install_genuine_chain(&platform).unwrap();
    let os = TrustedOs::boot(platform).unwrap();
    let service = AttestationService::install(&os);
    let measurement = Sha256::digest(b"chaos tamper app");

    let mut rng = Fortuna::from_seed(b"chaos tamper verifier");
    let identity = SigningKey::generate(&mut rng);
    let config = VerifierConfig::new(identity)
        .trust_measurement(measurement)
        .with_secret(b"chaos secret".to_vec())
        .endorse_device(service.public_key());
    let pinned = config.identity_public_key();
    let verifier = FleetVerifier::spawn(&os, config, FleetConfig::default(), 7860).unwrap();

    // Sweep: tag byte, ga echo, evidence interior, the trailing MAC.
    let mut crng = Fortuna::from_seed(b"chaos tamper clients");
    let mut tampered = 0u64;
    for (i, flip_at) in [0usize, 30, 80, 200, usize::MAX].into_iter().enumerate() {
        let conn = os.network().connect(7860).unwrap();
        let (mut attester, msg0) = Attester::start(&mut crng);
        conn.send(&msg0.to_bytes()).unwrap();
        let msg1 = Msg1::from_bytes(&conn.recv().unwrap()).unwrap();
        let (msg2, _) = attester
            .attest(&msg1, &pinned, &service, &measurement)
            .unwrap();
        let mut raw = msg2.to_bytes();
        let pos = flip_at.min(raw.len() - 1);
        raw[pos] ^= 1 << (i % 8);
        conn.send(&raw).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            INTEGRITY_FAILED,
            "bit flip at byte {pos} must be refused"
        );
        tampered += 1;
    }

    let stats = verifier.shutdown();
    assert_eq!(stats.served, 0, "tampered evidence must never be served");
    assert_eq!(
        stats.rejected + stats.malformed,
        tampered,
        "every tampered session lands in rejected or malformed: {stats:?}"
    );
    assert!(
        stats.corrupt_rejected > 0,
        "integrity failures must be tallied for diagnostics: {stats:?}"
    );
}

#[test]
fn chaos_randomized_soak_prints_its_seed() {
    // One randomized schedule per run when WATZ_FAULT_SEED is set (CI
    // passes $RANDOM); a fixed default otherwise so local runs stay
    // deterministic. The seed is printed so a failure is reproducible.
    let seed = std::env::var("WATZ_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_50A4);
    eprintln!("chaos soak: WATZ_FAULT_SEED={seed} (re-run with this value to reproduce)");

    let sim = chaos_sim(
        seed % 50,
        Some(moderate_plan(seed)),
        Some(generous_retries()),
    );
    let report = sim.run();
    assert_conservation(&report, 24, seed);
    // Whatever the schedule does, these hold for every seed: rogue and
    // stale devices are never provisioned, and honest devices only ever
    // fail by exhausting transport-level retries (never a false reject
    // turning into a wrong verdict).
    assert!(
        report.provisioned <= 20,
        "seed {seed:#x}: provisioned clients bounded by endorsed count: {report}"
    );
    assert!(
        report.rejected <= 4,
        "seed {seed:#x}: only the 4 rogue/stale devices may be rejected: {report}"
    );
}

//! Signed trusted applications.
//!
//! OP-TEE only executes TAs signed with the vendor key. The paper argues
//! (§II, §VII) that sharing this signing key with third parties is dangerous
//! (impersonation of deployed TAs, storage theft via UUID reuse) — which is
//! precisely why WaTZ instead loads *unsigned Wasm applications* into one
//! signed runtime TA and relies on the sandbox + measurement for safety.

use watz_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use watz_crypto::fortuna::Fortuna;
use watz_crypto::sha256::Sha256;

/// TA verification errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaError {
    /// The signature over the TA image does not verify.
    BadSignature {
        /// The TA's UUID.
        uuid: String,
    },
}

impl std::fmt::Display for TaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaError::BadSignature { uuid } => {
                write!(f, "TA {uuid} signature verification failed")
            }
        }
    }
}

impl std::error::Error for TaError {}

/// A signed TA image, as shipped to the device.
#[derive(Debug, Clone)]
pub struct SignedTa {
    /// The TA's UUID (names its persistent storage, among other things).
    pub uuid: String,
    /// The executable image.
    pub image: Vec<u8>,
    /// Vendor signature over `SHA-256(uuid || image)`.
    pub signature: [u8; 64],
}

/// A TA that passed signature verification.
#[derive(Debug, Clone)]
pub struct LoadedTa {
    /// The TA's UUID.
    pub uuid: String,
    /// The verified image.
    pub image: Vec<u8>,
}

/// The OS vendor's TA signing authority.
pub struct TaAuthority {
    key: SigningKey,
}

impl std::fmt::Debug for TaAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaAuthority {{ .. }}")
    }
}

impl TaAuthority {
    /// Creates an authority with a key derived from `seed`.
    #[must_use]
    pub fn new(seed: &[u8]) -> Self {
        let mut rng = Fortuna::from_seed(seed);
        TaAuthority {
            key: SigningKey::generate(&mut rng),
        }
    }

    /// Signs a TA image (vendor-side operation).
    #[must_use]
    pub fn sign(&self, uuid: &str, image: &[u8]) -> SignedTa {
        let digest = Self::digest(uuid, image);
        let mut rng = Fortuna::from_seed(b"ta-signing-nonce");
        SignedTa {
            uuid: uuid.to_string(),
            image: image.to_vec(),
            signature: self.key.sign(&digest, &mut rng).to_bytes(),
        }
    }

    /// Verifies a signed TA (device-side, at load).
    ///
    /// # Errors
    ///
    /// Returns [`TaError::BadSignature`] on any mismatch.
    pub fn verify(&self, ta: &SignedTa) -> Result<LoadedTa, TaError> {
        let digest = Self::digest(&ta.uuid, &ta.image);
        let sig = Signature::from_bytes(&ta.signature).map_err(|_| TaError::BadSignature {
            uuid: ta.uuid.clone(),
        })?;
        if !self.verifying_key().verify(&digest, &sig) {
            return Err(TaError::BadSignature {
                uuid: ta.uuid.clone(),
            });
        }
        Ok(LoadedTa {
            uuid: ta.uuid.clone(),
            image: ta.image.clone(),
        })
    }

    /// The vendor's public key.
    #[must_use]
    pub fn verifying_key(&self) -> &VerifyingKey {
        self.key.verifying_key()
    }

    fn digest(uuid: &str, image: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(uuid.as_bytes());
        h.update(image);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ta_verifies() {
        let authority = TaAuthority::new(b"vendor");
        let ta = authority.sign("watz-runtime", b"runtime image");
        let loaded = authority.verify(&ta).unwrap();
        assert_eq!(loaded.uuid, "watz-runtime");
    }

    #[test]
    fn tampered_image_rejected() {
        let authority = TaAuthority::new(b"vendor");
        let mut ta = authority.sign("watz-runtime", b"runtime image");
        ta.image.push(0x90);
        assert!(authority.verify(&ta).is_err());
    }

    #[test]
    fn uuid_swap_rejected() {
        // Reusing another TA's UUID (the impersonation attack the paper
        // cites) fails because the UUID is covered by the signature.
        let authority = TaAuthority::new(b"vendor");
        let mut ta = authority.sign("honest-ta", b"image");
        ta.uuid = "victim-ta".into();
        assert!(authority.verify(&ta).is_err());
    }

    #[test]
    fn foreign_authority_rejected() {
        let vendor = TaAuthority::new(b"vendor");
        let attacker = TaAuthority::new(b"attacker");
        let ta = attacker.sign("evil", b"image");
        assert!(vendor.verify(&ta).is_err());
    }
}

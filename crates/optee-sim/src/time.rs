//! Time services (§VI-A of the paper).
//!
//! Stock OP-TEE offers millisecond resolution; the paper extends the OP-TEE
//! driver and `TEE_Time` to pass the normal world's nanosecond monotonic
//! clock into the secure world. Reading it from the secure side costs a
//! world transition (~10 µs for a native TA, ~13 µs through WASI — Fig 3a).

use std::time::Instant;

use tz_hal::Platform;

/// Nanosecond monotonic timestamp as seen from the **normal world**
/// (`clock_gettime(CLOCK_MONOTONIC)` in the paper).
#[must_use]
pub fn ree_clock_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// The same clock read from the **secure world**.
///
/// The value is fetched from the normal world through the extended OP-TEE
/// driver, so each query pays the peripheral-access latency configured on
/// the platform (injected only when the platform enables latency modelling).
#[must_use]
pub fn secure_clock_ns(platform: &Platform) -> u64 {
    platform.secure_peripheral_delay();
    ree_clock_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tz_hal::PlatformConfig;

    #[test]
    fn ree_clock_is_monotonic() {
        let a = ree_clock_ns();
        let b = ree_clock_ns();
        assert!(b >= a);
    }

    #[test]
    fn secure_clock_close_to_ree_clock() {
        let platform = Platform::new(PlatformConfig::default());
        let a = ree_clock_ns();
        let b = secure_clock_ns(&platform);
        assert!(b >= a);
        assert!(b - a < 1_000_000_000, "clocks should agree within 1s");
    }

    #[test]
    fn secure_clock_pays_injected_latency() {
        let platform = Platform::new(PlatformConfig::with_paper_latencies());
        let start = Instant::now();
        let _ = secure_clock_ns(&platform);
        // Fig 3a: ~10 µs per secure-side query.
        assert!(start.elapsed() >= Duration::from_micros(10));
    }
}

//! An OP-TEE-shaped trusted OS model.
//!
//! WaTZ extends OP-TEE (§V); this crate models the OP-TEE surface the paper
//! touches:
//!
//! * **Trusted applications** must be signed with the OS vendor key to run
//!   ([`ta`]) — the very restriction WaTZ's Wasm sandbox relaxes;
//! * **GlobalPlatform-ish services**: time ([`time`]), per-TA heap
//!   accounting with the paper's patched **27 MB** ceiling, and the
//!   *executable page allocation* syscall the authors added so AOT code can
//!   run ([`TrustedOs::alloc_executable`]);
//! * **The tee-supplicant**: sockets in the GP API are proxied through a
//!   normal-world daemon over shared memory; [`net`] models that loopback
//!   network (every transfer crosses a simulated world switch, so the
//!   Table IV end-to-end numbers include the same structural costs as the
//!   paper's).
//!
//! # Example
//!
//! ```
//! use tz_hal::{Platform, PlatformConfig};
//! use optee_sim::TrustedOs;
//!
//! let platform = Platform::new(PlatformConfig::default());
//! tz_hal::boot::install_genuine_chain(&platform).unwrap();
//! let os = TrustedOs::boot(platform).unwrap();
//! assert!(os.alloc_executable(4096).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod ta;
pub mod time;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tz_hal::{Platform, World};
use watz_crypto::fortuna::Fortuna;

pub use ta::{SignedTa, TaAuthority, TaError};

/// The paper's patched per-TA heap ceiling: "we modified \[OP-TEE\] to allow
/// up to 27 MB. Pushing further the memory limits leads to OP-TEE
/// malfunctions." (§V)
pub const TA_HEAP_CAP: usize = 27 * 1024 * 1024;

/// Errors from trusted OS services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// `TEE_ERROR_OUT_OF_MEMORY`: the requested allocation exceeds the
    /// remaining TA heap or the global cap.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// The OS was asked to do something requiring a booted secure world.
    NotBooted,
    /// TA verification failed.
    Ta(TaError),
    /// Networking failure (connection refused, peer gone).
    Net(String),
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "TEE_ERROR_OUT_OF_MEMORY: requested {requested} bytes, {available} available"
            ),
            TeeError::NotBooted => write!(f, "secure world not booted"),
            TeeError::Ta(e) => write!(f, "trusted application error: {e}"),
            TeeError::Net(msg) => write!(f, "supplicant network error: {msg}"),
        }
    }
}

impl std::error::Error for TeeError {}

impl From<TaError> for TeeError {
    fn from(e: TaError) -> Self {
        TeeError::Ta(e)
    }
}

/// A booted trusted OS instance. Cloning shares the same OS.
#[derive(Debug, Clone)]
pub struct TrustedOs {
    inner: Arc<OsInner>,
}

#[derive(Debug)]
struct OsInner {
    platform: Platform,
    ta_authority: TaAuthority,
    network: Arc<net::Network>,
    /// Seed for the kernel attestation service, derived from the secure
    /// MKVB. Private: user space (TAs) can never read it.
    kernel_attestation_seed: [u8; 32],
    exec_pages_allocated: AtomicUsize,
}

impl TrustedOs {
    /// Boots the trusted OS on a secure-booted platform.
    ///
    /// Derives the kernel attestation seed from the secure-world MKVB via
    /// `huk_subkey_derive`, exactly as the paper's modified OP-TEE does.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::NotBooted`] if the platform has not completed a
    /// verified secure boot — without it the MKVB (and therefore any
    /// attestation key) is unavailable.
    pub fn boot(platform: Platform) -> Result<Self, TeeError> {
        let mkvb = platform
            .caam()
            .mkvb(World::Secure)
            .map_err(|_| TeeError::NotBooted)?;
        let kernel_attestation_seed = tz_hal::rot::huk_subkey_derive(&mkvb, "attestation");
        Ok(TrustedOs {
            inner: Arc::new(OsInner {
                platform,
                ta_authority: TaAuthority::new(b"op-tee vendor signing key"),
                network: Arc::new(net::Network::new()),
                kernel_attestation_seed,
                exec_pages_allocated: AtomicUsize::new(0),
            }),
        })
    }

    /// The underlying platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.inner.platform
    }

    /// The TA signing authority (for provisioning test TAs).
    #[must_use]
    pub fn ta_authority(&self) -> &TaAuthority {
        &self.inner.ta_authority
    }

    /// Loads (verifies) a signed trusted application.
    ///
    /// Stock OP-TEE refuses unsigned TAs — this is the restriction that
    /// motivates WaTZ's Wasm sandbox (§II: "every TA \[must\] be signed to be
    /// trusted and executable in the trusted world").
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Ta`] if the signature does not verify.
    pub fn load_ta(&self, ta: &SignedTa) -> Result<ta::LoadedTa, TeeError> {
        let loaded = self.inner.ta_authority.verify(ta)?;
        Ok(loaded)
    }

    /// Allocates executable pages for AOT code.
    ///
    /// Stock OP-TEE "cannot modify the pages' protection to mark them as
    /// executable"; the WaTZ authors added a syscall for it (§V). We model
    /// the capability and account the pages.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfMemory`] past the 27 MB ceiling.
    pub fn alloc_executable(&self, len: usize) -> Result<ExecPages, TeeError> {
        let prev = self
            .inner
            .exec_pages_allocated
            .fetch_add(len, Ordering::SeqCst);
        if prev + len > TA_HEAP_CAP {
            self.inner
                .exec_pages_allocated
                .fetch_sub(len, Ordering::SeqCst);
            return Err(TeeError::OutOfMemory {
                requested: len,
                available: TA_HEAP_CAP.saturating_sub(prev),
            });
        }
        Ok(ExecPages {
            os: self.clone(),
            len,
        })
    }

    /// Total executable bytes currently allocated.
    #[must_use]
    pub fn exec_bytes_allocated(&self) -> usize {
        self.inner.exec_pages_allocated.load(Ordering::SeqCst)
    }

    /// Creates a heap accountant for one TA, capped at `heap_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfMemory`] if `heap_size` exceeds the 27 MB
    /// OS-wide ceiling.
    pub fn create_ta_heap(&self, heap_size: usize) -> Result<TaHeap, TeeError> {
        if heap_size > TA_HEAP_CAP {
            return Err(TeeError::OutOfMemory {
                requested: heap_size,
                available: TA_HEAP_CAP,
            });
        }
        Ok(TaHeap {
            cap: heap_size,
            used: AtomicUsize::new(0),
        })
    }

    /// The supplicant-backed loopback network.
    #[must_use]
    pub fn network(&self) -> &net::Network {
        &self.inner.network
    }

    /// The network as a shareable handle, without holding the whole OS.
    ///
    /// Multi-device simulations shard fleets across several `TrustedOs`
    /// instances; device client threads only need the shard's network, and
    /// this accessor lets them carry exactly that.
    #[must_use]
    pub fn shared_network(&self) -> Arc<net::Network> {
        Arc::clone(&self.inner.network)
    }

    /// Runs `f` with the kernel attestation seed.
    ///
    /// **Kernel-internal**: only the attestation service (a kernel module in
    /// the paper's design) may call this; the WaTZ runtime and hosted Wasm
    /// applications interact with evidence, never with this seed.
    pub fn with_kernel_seed<R>(&self, f: impl FnOnce(&[u8; 32]) -> R) -> R {
        f(&self.inner.kernel_attestation_seed)
    }

    /// A deterministic per-device PRNG stream for a given purpose label.
    #[must_use]
    pub fn kernel_prng(&self, purpose: &str) -> Fortuna {
        let mut seed = self.inner.kernel_attestation_seed.to_vec();
        seed.extend_from_slice(purpose.as_bytes());
        Fortuna::from_seed(&seed)
    }
}

/// RAII handle for executable pages; releases the accounting on drop.
#[derive(Debug)]
pub struct ExecPages {
    os: TrustedOs,
    len: usize,
}

impl ExecPages {
    /// The allocation size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the allocation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ExecPages {
    fn drop(&mut self) {
        self.os
            .inner
            .exec_pages_allocated
            .fetch_sub(self.len, Ordering::SeqCst);
    }
}

/// Heap accounting for one trusted application.
///
/// TAs declare heap and stack sizes at compile time (§VI-A); the WaTZ
/// runtime charges the Wasm application's linear memory and bytecode copies
/// against this budget.
#[derive(Debug)]
pub struct TaHeap {
    cap: usize,
    used: AtomicUsize,
}

impl TaHeap {
    /// Charges `len` bytes against the TA heap.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::OutOfMemory`] when the budget is exhausted —
    /// the same failure that forced the paper to scale SQLite's dataset to
    /// 60 % and PolyBench to the medium dataset.
    pub fn charge(&self, len: usize) -> Result<(), TeeError> {
        let prev = self.used.fetch_add(len, Ordering::SeqCst);
        if prev + len > self.cap {
            self.used.fetch_sub(len, Ordering::SeqCst);
            return Err(TeeError::OutOfMemory {
                requested: len,
                available: self.cap.saturating_sub(prev),
            });
        }
        Ok(())
    }

    /// Releases `len` bytes back to the budget.
    pub fn release(&self, len: usize) {
        let current = self.used.load(Ordering::SeqCst);
        self.used.fetch_sub(len.min(current), Ordering::SeqCst);
    }

    /// Bytes currently in use.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used.load(Ordering::SeqCst)
    }

    /// The configured cap.
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tz_hal::PlatformConfig;

    fn booted_os() -> TrustedOs {
        let platform = Platform::new(PlatformConfig::default());
        tz_hal::boot::install_genuine_chain(&platform).unwrap();
        TrustedOs::boot(platform).unwrap()
    }

    #[test]
    fn boot_requires_secure_boot() {
        let platform = Platform::new(PlatformConfig::default());
        assert_eq!(TrustedOs::boot(platform).unwrap_err(), TeeError::NotBooted);
    }

    #[test]
    fn kernel_seed_is_stable_across_reboots() {
        // Same device seed => same attestation seed (deterministic keys).
        let seed_of = |device: &[u8]| {
            let platform = Platform::new(PlatformConfig {
                device_seed: device.to_vec(),
                ..PlatformConfig::default()
            });
            tz_hal::boot::install_genuine_chain(&platform).unwrap();
            TrustedOs::boot(platform).unwrap().with_kernel_seed(|s| *s)
        };
        assert_eq!(seed_of(b"device-1"), seed_of(b"device-1"));
        assert_ne!(seed_of(b"device-1"), seed_of(b"device-2"));
    }

    #[test]
    fn ta_heap_enforces_cap() {
        let os = booted_os();
        let heap = os.create_ta_heap(1024).unwrap();
        heap.charge(1000).unwrap();
        assert!(heap.charge(100).is_err());
        heap.release(500);
        heap.charge(100).unwrap();
        assert_eq!(heap.used(), 600);
    }

    #[test]
    fn ta_heap_cannot_exceed_27mb() {
        let os = booted_os();
        assert!(os.create_ta_heap(TA_HEAP_CAP).is_ok());
        assert!(os.create_ta_heap(TA_HEAP_CAP + 1).is_err());
    }

    #[test]
    fn exec_pages_accounted_and_released() {
        let os = booted_os();
        let pages = os.alloc_executable(1 << 20).unwrap();
        assert_eq!(os.exec_bytes_allocated(), 1 << 20);
        drop(pages);
        assert_eq!(os.exec_bytes_allocated(), 0);
    }

    #[test]
    fn exec_pages_capped() {
        let os = booted_os();
        let _a = os.alloc_executable(TA_HEAP_CAP).unwrap();
        assert!(os.alloc_executable(1).is_err());
    }
}

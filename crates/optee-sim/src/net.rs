//! The supplicant-mediated loopback network.
//!
//! The GP sockets API in OP-TEE is implemented by bouncing traffic through
//! the normal-world `tee-supplicant` daemon over a small shared-memory
//! buffer (§V). The verifier additionally needs a normal-world *listener*
//! because the GP API cannot accept incoming connections.
//!
//! This module models that plumbing as an in-process message network:
//! message-oriented, byte-copying (every message is copied in and out, like
//! the shared buffer), and blocking with a timeout so misbehaving peers
//! surface as errors instead of hangs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::TeeError;

/// Default receive timeout.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a polling server blocks in one `accept_timeout` call before
/// re-checking its shutdown flag. Shared by [`watz_runtime`]'s
/// `VerifierServer` and the `watz-fleet` acceptor so every server polls at
/// the same cadence (callers may still override it per service).
pub const DEFAULT_ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Default accept backlog of [`Network::listen`]: how many established but
/// not-yet-accepted connections a listener buffers before further
/// [`Network::connect`] calls block. Sized for fleet-scale connect storms
/// (hundreds of devices dialling one verifier at once) — a backlog of 16,
/// as previously hard-coded, made a 96-device storm serialize on the
/// acceptor and polluted client-observed latency percentiles.
pub const DEFAULT_ACCEPT_BACKLOG: usize = 1024;

type Channel = (Sender<Vec<u8>>, Receiver<Vec<u8>>);

/// xorshift64: the repo-standard deterministic PRNG (no external crates).
/// `state` must be non-zero.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// splitmix64 finalizer: stretches a structured seed (plan seed XOR
/// connection id) into a well-mixed xorshift state.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a probability in `[0.0, 1.0]` to a threshold comparable against
/// the top 32 bits of an xorshift draw. `1.0` maps to `2^32`, which every
/// 32-bit draw is below, so a rate of exactly 1.0 always fires.
fn fault_threshold(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * 4_294_967_296.0) as u64
}

/// The class of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was silently discarded; the sender saw `Ok`.
    Drop,
    /// Delivery was delayed (the sending thread slept, modelling a slow
    /// supplicant buffer) but the payload arrived intact.
    Delay,
    /// One or more payload bytes were flipped in flight.
    Corrupt,
    /// The message was delivered twice.
    Duplicate,
    /// The endpoint was killed mid-handshake: the send failed and every
    /// later operation on this end reports a disconnect.
    Disconnect,
}

/// Which half of the connection performed the faulted send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDir {
    /// The dialling side's send (supplicant → verifier).
    ClientToServer,
    /// The accepting side's send (verifier → supplicant).
    ServerToClient,
}

/// One injected fault, recorded in the network-wide fault log so tests can
/// assert exactly what the plan did to each connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Connection index, in dial order since the plan was installed.
    pub conn: u64,
    /// Direction of the faulted send.
    pub dir: FaultDir,
    /// Send-operation index on that endpoint (0 = first send).
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// A seeded, deterministic fault-injection plan.
///
/// Installed per-[`Network`] with [`Network::install_fault_plan`]; every
/// connection dialled *after* the install carries two fault hooks (one per
/// direction), each with its own xorshift stream derived from
/// `(plan seed, connection index, direction)`. Fault decisions therefore
/// depend only on the seed, the connection's dial order, and the message
/// sequence on that endpoint — never on thread timing — so a failing chaos
/// run is reproducible from its seed alone.
///
/// All faults are applied at the `send` boundary (an injected disconnect
/// also poisons the endpoint's receive side). With no plan installed,
/// connections carry no hook and the send/recv paths cost one `Option`
/// check — zero overhead for every existing benchmark.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_t: u64,
    delay_t: u64,
    max_delay: Duration,
    corrupt_t: u64,
    corrupt_bytes: usize,
    duplicate_t: u64,
    disconnect_t: u64,
}

impl FaultPlan {
    /// A plan that injects nothing; chain rate builders to arm faults.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_t: 0,
            delay_t: 0,
            max_delay: Duration::ZERO,
            corrupt_t: 0,
            corrupt_bytes: 1,
            duplicate_t: 0,
            disconnect_t: 0,
        }
    }

    /// The seed the plan was built with (printed by soak tests on failure).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability per send that the message is silently discarded.
    #[must_use]
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_t = fault_threshold(rate);
        self
    }

    /// Probability per send of a deterministic delay, uniform in
    /// `[0, max_delay]`. The delay blocks the sending thread.
    #[must_use]
    pub fn delay_rate(mut self, rate: f64, max_delay: Duration) -> Self {
        self.delay_t = fault_threshold(rate);
        self.max_delay = max_delay;
        self
    }

    /// Probability per send that `bytes` payload bytes are flipped (each
    /// XORed with a non-zero mask, so the payload always differs).
    #[must_use]
    pub fn corrupt_rate(mut self, rate: f64, bytes: usize) -> Self {
        self.corrupt_t = fault_threshold(rate);
        self.corrupt_bytes = bytes.max(1);
        self
    }

    /// Probability per send that the message is delivered twice.
    #[must_use]
    pub fn duplicate_rate(mut self, rate: f64) -> Self {
        self.duplicate_t = fault_threshold(rate);
        self
    }

    /// Probability per send that the endpoint is killed mid-handshake:
    /// the send fails with [`TeeError::Net`] and every later send/recv on
    /// this end reports a disconnect.
    #[must_use]
    pub fn disconnect_rate(mut self, rate: f64) -> Self {
        self.disconnect_t = fault_threshold(rate);
        self
    }
}

/// xorshift state + send counter for one faulted endpoint.
#[derive(Debug)]
struct FaultRng {
    state: u64,
    seq: u64,
}

/// Per-endpoint fault machinery, attached to a [`Connection`] at dial time
/// when a plan is installed.
#[derive(Debug)]
struct FaultHook {
    plan: FaultPlan,
    conn: u64,
    dir: FaultDir,
    rng: Mutex<FaultRng>,
    dead: AtomicBool,
    log: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultHook {
    fn new(plan: &FaultPlan, conn: u64, dir: FaultDir, log: Arc<Mutex<Vec<FaultEvent>>>) -> Self {
        let lane = conn
            .wrapping_mul(2)
            .wrapping_add(matches!(dir, FaultDir::ServerToClient) as u64);
        FaultHook {
            plan: plan.clone(),
            conn,
            dir,
            rng: Mutex::new(FaultRng {
                state: mix64(plan.seed ^ mix64(lane)) | 1,
                seq: 0,
            }),
            dead: AtomicBool::new(false),
            log,
        }
    }

    fn record(&self, seq: u64, kind: FaultKind) {
        self.log.lock().push(FaultEvent {
            conn: self.conn,
            dir: self.dir,
            seq,
            kind,
        });
    }
}

/// Fault-plan install state: the plan plus the dial-order counter that
/// assigns connection indices.
#[derive(Debug)]
struct FaultInstall {
    plan: FaultPlan,
    next_conn: u64,
}

/// The loopback network shared by every party on a device (and, in tests,
/// between "devices" that share a `Network`).
#[derive(Debug)]
pub struct Network {
    listeners: Mutex<HashMap<u16, Sender<Connection>>>,
    fault: Mutex<Option<FaultInstall>>,
    fault_log: Arc<Mutex<Vec<FaultEvent>>>,
}

impl Network {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Network {
            listeners: Mutex::new(HashMap::new()),
            fault: Mutex::new(None),
            fault_log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Installs a fault plan. Connections dialled after this call carry
    /// fault hooks; connections that already exist are unaffected (their
    /// hooks, if any, came from the previously installed plan). The
    /// connection-index counter restarts at 0 on every install.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(FaultInstall { plan, next_conn: 0 });
    }

    /// Removes the installed fault plan. Connections dialled afterwards
    /// are clean; already-dialled connections keep their hooks.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// A snapshot of every fault injected since the log was last drained.
    #[must_use]
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.fault_log.lock().clone()
    }

    /// Drains and returns the fault log.
    #[must_use]
    pub fn take_fault_log(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.fault_log.lock())
    }

    /// Binds a listener on `port` with the default accept backlog
    /// ([`DEFAULT_ACCEPT_BACKLOG`]).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if the port is already bound.
    pub fn listen(&self, port: u16) -> Result<Listener, TeeError> {
        self.listen_with_backlog(port, DEFAULT_ACCEPT_BACKLOG)
    }

    /// Binds a listener on `port` buffering at most `backlog` established
    /// but not-yet-accepted connections; while the backlog is full,
    /// further [`Network::connect`] calls block until the listener
    /// accepts (the loopback analogue of a full SYN queue).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if the port is already bound.
    pub fn listen_with_backlog(&self, port: u16, backlog: usize) -> Result<Listener, TeeError> {
        let mut listeners = self.listeners.lock();
        if listeners.contains_key(&port) {
            return Err(TeeError::Net(format!("port {port} already bound")));
        }
        let (tx, rx) = bounded(backlog.max(1));
        listeners.insert(port, tx);
        Ok(Listener { accept_rx: rx })
    }

    /// Unbinds the listener on `port`.
    pub fn unbind(&self, port: u16) {
        self.listeners.lock().remove(&port);
    }

    /// True if a listener is currently bound on `port`.
    #[must_use]
    pub fn is_bound(&self, port: u16) -> bool {
        self.listeners.lock().contains_key(&port)
    }

    /// The ports with bound listeners (sorted; diagnostics and shard
    /// bookkeeping).
    #[must_use]
    pub fn bound_ports(&self) -> Vec<u16> {
        let mut ports: Vec<u16> = self.listeners.lock().keys().copied().collect();
        ports.sort_unstable();
        ports
    }

    /// Connects to the listener on `port`.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if nothing is listening.
    pub fn connect(&self, port: u16) -> Result<Connection, TeeError> {
        let accept_tx = {
            let listeners = self.listeners.lock();
            listeners
                .get(&port)
                .cloned()
                .ok_or_else(|| TeeError::Net(format!("connection refused on port {port}")))?
        };
        let (client_hook, server_hook) = {
            let mut fault = self.fault.lock();
            match fault.as_mut() {
                None => (None, None),
                Some(install) => {
                    let conn = install.next_conn;
                    install.next_conn += 1;
                    (
                        Some(Box::new(FaultHook::new(
                            &install.plan,
                            conn,
                            FaultDir::ClientToServer,
                            Arc::clone(&self.fault_log),
                        ))),
                        Some(Box::new(FaultHook::new(
                            &install.plan,
                            conn,
                            FaultDir::ServerToClient,
                            Arc::clone(&self.fault_log),
                        ))),
                    )
                }
            }
        };
        let (c2s_tx, c2s_rx): Channel = bounded(64);
        let (s2c_tx, s2c_rx): Channel = bounded(64);
        let server_side = Connection {
            tx: s2c_tx,
            rx: c2s_rx,
            faults: server_hook,
        };
        accept_tx
            .send(server_side)
            .map_err(|_| TeeError::Net(format!("listener on port {port} is gone")))?;
        Ok(Connection {
            tx: c2s_tx,
            rx: s2c_rx,
            faults: client_hook,
        })
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

/// A bound listener.
#[derive(Debug)]
pub struct Listener {
    accept_rx: Receiver<Connection>,
}

impl Listener {
    /// Accepts the next incoming connection (blocking, with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] on timeout.
    pub fn accept(&self) -> Result<Connection, TeeError> {
        self.accept_timeout(RECV_TIMEOUT)
    }

    /// Accepts with a caller-chosen timeout (used by polling servers).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] on timeout or when the port has been
    /// unbound, with distinguishable messages; use
    /// [`Listener::accept_detailed`] to branch on the cause without
    /// string matching.
    pub fn accept_timeout(&self, timeout: Duration) -> Result<Connection, TeeError> {
        self.accept_detailed(timeout).map_err(|e| match e {
            RecvError::TimedOut => TeeError::Net("accept timed out".into()),
            RecvError::Disconnected => TeeError::Net("listener closed (port unbound)".into()),
        })
    }

    /// Accepts with a timeout, distinguishing "nobody dialled in time"
    /// from "the port was unbound under us" — the latter is an
    /// event-driven server's shutdown signal, so it can block on a long
    /// accept instead of polling a stop flag.
    ///
    /// # Errors
    ///
    /// [`RecvError::TimedOut`] when the timeout elapses;
    /// [`RecvError::Disconnected`] once the port is unbound (buffered
    /// connections are still delivered first).
    pub fn accept_detailed(&self, timeout: Duration) -> Result<Connection, RecvError> {
        use crossbeam::channel::RecvTimeoutError;
        self.accept_rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::TimedOut,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }
}

/// One end of an established connection (message-oriented).
#[derive(Debug)]
pub struct Connection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Fault hook from the plan installed when this connection was
    /// dialled; `None` (the common case) costs one branch per operation.
    faults: Option<Box<FaultHook>>,
}

impl Connection {
    /// Sends one message (copied, like the supplicant's shared buffer).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if the peer hung up (or an injected
    /// disconnect killed this endpoint).
    pub fn send(&self, data: &[u8]) -> Result<(), TeeError> {
        match &self.faults {
            None => self
                .tx
                .send(data.to_vec())
                .map_err(|_| TeeError::Net("peer disconnected".into())),
            Some(hook) => self.send_faulty(hook, data),
        }
    }

    /// The faulted send path: draws one decision per fault class in a
    /// fixed order (disconnect, drop, corrupt, duplicate, delay) so the
    /// schedule depends only on `(seed, connection, seq)`, then applies
    /// whatever fired. Corruption mutates a copy; the caller's buffer is
    /// never touched.
    fn send_faulty(&self, hook: &FaultHook, data: &[u8]) -> Result<(), TeeError> {
        if hook.dead.load(Ordering::Relaxed) {
            return Err(TeeError::Net("peer disconnected".into()));
        }
        let plan = &hook.plan;
        let mut g = hook.rng.lock();
        let seq = g.seq;
        g.seq += 1;
        let (disconnect, drop_it, corrupt, duplicate, delay) = {
            let mut fire = |threshold: u64| (xorshift64(&mut g.state) >> 32) < threshold;
            (
                fire(plan.disconnect_t),
                fire(plan.drop_t),
                fire(plan.corrupt_t),
                fire(plan.duplicate_t),
                fire(plan.delay_t),
            )
        };
        if disconnect {
            drop(g);
            hook.dead.store(true, Ordering::Relaxed);
            hook.record(seq, FaultKind::Disconnect);
            return Err(TeeError::Net("peer disconnected".into()));
        }
        if drop_it {
            drop(g);
            hook.record(seq, FaultKind::Drop);
            return Ok(());
        }
        let mut payload = data.to_vec();
        if corrupt && !payload.is_empty() {
            for _ in 0..plan.corrupt_bytes {
                let r = xorshift64(&mut g.state);
                let pos = (r as usize) % payload.len();
                // OR 1 keeps the mask non-zero, so the byte always changes.
                let mask = (((r >> 32) & 0xFF) as u8) | 1;
                payload[pos] ^= mask;
            }
        }
        let delay_for = delay.then(|| {
            let frac = ((xorshift64(&mut g.state) >> 40) as f64) / ((1u64 << 24) as f64);
            plan.max_delay.mul_f64(frac)
        });
        drop(g);
        if corrupt && !payload.is_empty() {
            hook.record(seq, FaultKind::Corrupt);
        }
        if let Some(d) = delay_for {
            hook.record(seq, FaultKind::Delay);
            std::thread::sleep(d);
        }
        self.tx
            .send(payload.clone())
            .map_err(|_| TeeError::Net("peer disconnected".into()))?;
        if duplicate {
            hook.record(seq, FaultKind::Duplicate);
            // Peer may legitimately vanish between the copies.
            let _ = self.tx.send(payload);
        }
        Ok(())
    }

    /// True once an injected disconnect has killed this endpoint.
    fn fault_killed(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|h| h.dead.load(Ordering::Relaxed))
    }

    /// Receives one message (blocking, with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] on timeout or hangup, with
    /// distinguishable messages (`"receive timed out"` vs
    /// `"peer disconnected"`); use [`Connection::recv_detailed`] to
    /// branch on the cause without string matching.
    pub fn recv(&self) -> Result<Vec<u8>, TeeError> {
        self.recv_detailed(RECV_TIMEOUT).map_err(|e| match e {
            RecvError::TimedOut => TeeError::Net("receive timed out".into()),
            RecvError::Disconnected => TeeError::Net("peer disconnected".into()),
        })
    }

    /// Receives one message with a timeout, distinguishing a quiet peer
    /// from a gone one — the blocking counterpart of
    /// [`Connection::try_recv_detailed`]. Buffered messages are delivered
    /// before a hangup is reported.
    ///
    /// # Errors
    ///
    /// [`RecvError::TimedOut`] when the timeout elapses with the peer
    /// still connected; [`RecvError::Disconnected`] once the peer dropped
    /// its end and the buffer is drained.
    pub fn recv_detailed(&self, timeout: Duration) -> Result<Vec<u8>, RecvError> {
        use crossbeam::channel::RecvTimeoutError;
        if self.fault_killed() {
            return Err(RecvError::Disconnected);
        }
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::TimedOut,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// The underlying receive channel, for registration in a
    /// [`crossbeam::channel::Select`]: event-driven servers add every
    /// session's receiver (plus their own admission channels) to one
    /// select and sleep until a real message, hangup, or deadline —
    /// instead of busy-polling [`Connection::try_recv_detailed`].
    #[must_use]
    pub fn receiver(&self) -> &Receiver<Vec<u8>> {
        &self.rx
    }

    /// Non-blocking receive attempt.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::Net`] if no message is ready.
    pub fn try_recv(&self) -> Result<Vec<u8>, TeeError> {
        if self.fault_killed() {
            return Err(TeeError::Net("peer disconnected".into()));
        }
        self.rx
            .try_recv()
            .map_err(|_| TeeError::Net("no message ready".into()))
    }

    /// Non-blocking receive that distinguishes an idle peer from a gone
    /// one, so polling servers can evict dead connections immediately
    /// instead of waiting out their session deadline.
    ///
    /// Buffered messages are still delivered before
    /// [`TryRecv::Disconnected`] is reported.
    pub fn try_recv_detailed(&self) -> TryRecv {
        use crossbeam::channel::TryRecvError;
        if self.fault_killed() {
            return TryRecv::Disconnected;
        }
        match self.rx.try_recv() {
            Ok(data) => TryRecv::Message(data),
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Disconnected,
        }
    }
}

/// Why a blocking receive/accept returned without data — the timeout/
/// hangup distinction [`TryRecv`] draws for the non-blocking path,
/// extended to [`Connection::recv_detailed`] and
/// [`Listener::accept_detailed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The timeout elapsed; the peer (or port) is still up.
    TimedOut,
    /// The peer hung up (or the listening port was unbound) and all
    /// buffered data has been delivered.
    Disconnected,
}

/// Outcome of [`Connection::try_recv_detailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryRecv {
    /// A message was ready.
    Message(Vec<u8>),
    /// No message ready; the peer is still connected.
    Empty,
    /// The peer dropped its end (any buffered messages were already
    /// delivered).
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_send_recv() {
        let net = Network::new();
        let listener = net.listen(7000).unwrap();
        let client = net.connect(7000).unwrap();
        let server = listener.accept().unwrap();
        client.send(b"msg0").unwrap();
        assert_eq!(server.recv().unwrap(), b"msg0");
        server.send(b"msg1").unwrap();
        assert_eq!(client.recv().unwrap(), b"msg1");
    }

    #[test]
    fn connection_refused() {
        let net = Network::new();
        assert!(net.connect(9999).is_err());
    }

    #[test]
    fn double_bind_rejected() {
        let net = Network::new();
        let _a = net.listen(7001).unwrap();
        assert!(net.listen(7001).is_err());
    }

    #[test]
    fn unbind_frees_port() {
        let net = Network::new();
        let _a = net.listen(7002).unwrap();
        net.unbind(7002);
        assert!(net.listen(7002).is_ok());
    }

    #[test]
    fn multiple_connections_to_one_listener() {
        let net = Network::new();
        let listener = net.listen(7003).unwrap();
        let c1 = net.connect(7003).unwrap();
        let c2 = net.connect(7003).unwrap();
        let s1 = listener.accept().unwrap();
        let s2 = listener.accept().unwrap();
        c1.send(b"one").unwrap();
        c2.send(b"two").unwrap();
        assert_eq!(s1.recv().unwrap(), b"one");
        assert_eq!(s2.recv().unwrap(), b"two");
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = Network::new();
        let listener = net.listen(7004).unwrap();
        let client = net.connect(7004).unwrap();
        let server = listener.accept().unwrap();
        assert!(server.try_recv().is_err());
        client.send(b"x").unwrap();
        assert_eq!(server.try_recv().unwrap(), b"x");
    }

    #[test]
    fn connect_storm_does_not_block_without_acceptor() {
        // Regression for the hard-coded bounded(16) accept backlog: a
        // 96-device connect storm must complete while nobody accepts —
        // otherwise admission serializes inside connect() and the wait
        // pollutes client-observed latency percentiles. Run the storm on
        // a helper thread so a regression fails the assertion instead of
        // hanging the suite.
        let net = std::sync::Arc::new(Network::new());
        let listener = net.listen(7006).unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let stormer = {
            let net = std::sync::Arc::clone(&net);
            std::thread::spawn(move || {
                let conns: Vec<Connection> = (0..96).map(|_| net.connect(7006).unwrap()).collect();
                done_tx.send(conns.len()).unwrap();
            })
        };
        assert_eq!(
            done_rx.recv_timeout(Duration::from_secs(5)),
            Ok(96),
            "default backlog must absorb a fleet-scale connect storm mid-drain"
        );
        stormer.join().unwrap();
        for _ in 0..96 {
            listener.accept().unwrap();
        }
    }

    #[test]
    fn tiny_backlog_blocks_connects_until_accepted() {
        // listen_with_backlog caps the pending-connection buffer; a
        // third dial blocks until the acceptor drains, then completes.
        let net = std::sync::Arc::new(Network::new());
        let listener = net.listen_with_backlog(7007, 2).unwrap();
        let storming = {
            let net = std::sync::Arc::clone(&net);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    net.connect(7007).unwrap();
                }
            })
        };
        for _ in 0..4 {
            listener.accept().unwrap();
        }
        storming.join().unwrap();
    }

    #[test]
    fn recv_detailed_distinguishes_timeout_from_hangup() {
        let net = Network::new();
        let listener = net.listen(7008).unwrap();
        let client = net.connect(7008).unwrap();
        let server = listener.accept().unwrap();
        assert_eq!(
            server.recv_detailed(Duration::from_millis(10)),
            Err(RecvError::TimedOut),
            "quiet but connected peer is a timeout"
        );
        client.send(b"bye").unwrap();
        drop(client);
        assert_eq!(
            server.recv_detailed(Duration::from_millis(10)),
            Ok(b"bye".to_vec()),
            "buffered data drains before the hangup"
        );
        assert_eq!(
            server.recv_detailed(Duration::from_millis(10)),
            Err(RecvError::Disconnected)
        );
        // The legacy string-typed path stays distinguishable too.
        match server.recv() {
            Err(TeeError::Net(msg)) => assert_eq!(msg, "peer disconnected"),
            other => panic!("expected disconnect error, got {other:?}"),
        }
    }

    #[test]
    fn accept_detailed_reports_unbind_as_disconnect() {
        let net = Network::new();
        let listener = net.listen(7009).unwrap();
        let _pending = net.connect(7009).unwrap();
        net.unbind(7009);
        // The buffered connection is still delivered...
        assert!(listener.accept_detailed(Duration::from_millis(10)).is_ok());
        // ...then the unbind surfaces as a disconnect, not a timeout.
        assert!(matches!(
            listener.accept_detailed(Duration::from_millis(10)),
            Err(RecvError::Disconnected)
        ));
    }

    #[test]
    fn connection_receiver_registers_in_a_select() {
        use crossbeam::channel::Select;
        let net = Network::new();
        let listener = net.listen(7010).unwrap();
        let client = net.connect(7010).unwrap();
        let server = listener.accept().unwrap();
        let mut sel = Select::new();
        let idx = sel.recv(server.receiver());
        assert!(
            sel.ready_timeout(Duration::from_millis(10)).is_err(),
            "nothing sent yet"
        );
        client.send(b"wake").unwrap();
        assert_eq!(sel.ready_timeout(Duration::from_secs(1)), Ok(idx));
        assert_eq!(server.try_recv().unwrap(), b"wake");
    }

    fn faulted_pair(net: &Network, port: u16) -> (Connection, Connection) {
        let listener = net.listen(port).unwrap();
        let client = net.connect(port).unwrap();
        let server = listener.accept().unwrap();
        net.unbind(port);
        (client, server)
    }

    #[test]
    fn fault_plan_absent_means_no_hooks_and_empty_log() {
        let net = Network::new();
        let (client, server) = faulted_pair(&net, 7100);
        assert!(client.faults.is_none() && server.faults.is_none());
        client.send(b"clean").unwrap();
        assert_eq!(server.recv().unwrap(), b"clean");
        assert!(net.fault_log().is_empty());
    }

    #[test]
    fn drop_fault_is_silent_for_sender_and_logged() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(1).drop_rate(1.0));
        let (client, server) = faulted_pair(&net, 7101);
        client.send(b"lost").unwrap();
        assert_eq!(
            server.recv_detailed(Duration::from_millis(20)),
            Err(RecvError::TimedOut),
            "dropped frame must never arrive"
        );
        let log = net.fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0],
            FaultEvent {
                conn: 0,
                dir: FaultDir::ClientToServer,
                seq: 0,
                kind: FaultKind::Drop
            }
        );
    }

    #[test]
    fn corrupt_fault_flips_bytes_but_preserves_length() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(2).corrupt_rate(1.0, 3));
        let (client, server) = faulted_pair(&net, 7102);
        let sent = [0u8; 32];
        client.send(&sent).unwrap();
        let got = server.recv().unwrap();
        assert_eq!(got.len(), sent.len());
        assert_ne!(got, sent, "corruption must change the payload");
        assert!(net
            .fault_log()
            .iter()
            .any(|e| e.kind == FaultKind::Corrupt && e.conn == 0));
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(3).duplicate_rate(1.0));
        let (client, server) = faulted_pair(&net, 7103);
        client.send(b"twin").unwrap();
        assert_eq!(server.recv().unwrap(), b"twin");
        assert_eq!(server.recv().unwrap(), b"twin");
        assert_eq!(net.fault_log()[0].kind, FaultKind::Duplicate);
    }

    #[test]
    fn delay_fault_delivers_late_but_intact() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(4).delay_rate(1.0, Duration::from_millis(10)));
        let (client, server) = faulted_pair(&net, 7104);
        client.send(b"slow").unwrap();
        assert_eq!(server.recv().unwrap(), b"slow");
        assert_eq!(net.fault_log()[0].kind, FaultKind::Delay);
    }

    #[test]
    fn disconnect_fault_kills_the_endpoint_both_ways() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(5).disconnect_rate(1.0));
        let (client, server) = faulted_pair(&net, 7105);
        assert!(client.send(b"doomed").is_err(), "send fails at the kill");
        assert_eq!(
            client.recv_detailed(Duration::from_millis(10)),
            Err(RecvError::Disconnected),
            "a killed endpoint cannot receive either"
        );
        assert_eq!(client.try_recv_detailed(), TryRecv::Disconnected);
        // The peer sees a normal hangup once the killed side is dropped.
        drop(client);
        assert_eq!(
            server.recv_detailed(Duration::from_millis(100)),
            Err(RecvError::Disconnected)
        );
        let log = net.fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].kind, FaultKind::Disconnect);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let net = Network::new();
            net.install_fault_plan(
                FaultPlan::new(seed)
                    .drop_rate(0.3)
                    .corrupt_rate(0.3, 2)
                    .duplicate_rate(0.2),
            );
            for port in 0..4u16 {
                let (client, server) = faulted_pair(&net, 7110 + port);
                for i in 0..8u8 {
                    client.send(&[i; 16]).unwrap();
                    server.send(&[i ^ 0xFF; 16]).unwrap();
                }
            }
            net.take_fault_log()
        };
        let a = run(0xC0FFEE);
        let b = run(0xC0FFEE);
        assert!(!a.is_empty(), "moderate rates over 64 sends must fire");
        assert_eq!(a, b, "same seed, same dial order => identical schedule");
        assert_ne!(a, run(0xBEEF), "a different seed reshuffles the plan");
    }

    #[test]
    fn clear_fault_plan_leaves_new_connections_clean() {
        let net = Network::new();
        net.install_fault_plan(FaultPlan::new(6).drop_rate(1.0));
        let (faulted, _server) = faulted_pair(&net, 7120);
        net.clear_fault_plan();
        let (clean_client, clean_server) = faulted_pair(&net, 7121);
        clean_client.send(b"through").unwrap();
        assert_eq!(clean_server.recv().unwrap(), b"through");
        // The already-dialled connection keeps its hook.
        faulted.send(b"gone").unwrap();
        assert_eq!(net.fault_log().len(), 1);
    }

    #[test]
    fn try_recv_detailed_distinguishes_idle_from_disconnected() {
        let net = Network::new();
        let listener = net.listen(7005).unwrap();
        let client = net.connect(7005).unwrap();
        let server = listener.accept().unwrap();
        assert_eq!(server.try_recv_detailed(), TryRecv::Empty);
        client.send(b"last words").unwrap();
        drop(client);
        // Buffered data drains before the hangup is reported.
        assert_eq!(
            server.try_recv_detailed(),
            TryRecv::Message(b"last words".to_vec())
        );
        assert_eq!(server.try_recv_detailed(), TryRecv::Disconnected);
    }
}
